#!/usr/bin/env python3
"""Runtime reconfiguration of security policies (the paper's perspectives).

The paper's conclusion announces: "We also plan to integrate reconfiguration
of security services (i.e. modification of security policies) to counter some
attacks against the system."  This example exercises that extension:

1. cpu1 is allowed read/write access to the shared BRAM mailbox,
2. a burst of violations from cpu1 (it has been hijacked) makes the security
   manager quarantine it automatically -- all further traffic from cpu1 is
   dropped at its own Local Firewall,
3. the operator re-provisions cpu1 and the manager releases the quarantine,
   but also *reconfigures* the policy so cpu1 is now read-only on the mailbox,
4. the reaction latency (cycles between detection and countermeasure) is
   reported, illustrating the "react as fast as possible" requirement.

Run with:  python examples/policy_reconfiguration.py
"""

from repro import build_reference_platform, secure_reference_platform
from repro.api import InMemorySink, attach_instrumentation, EventBus
from repro.core.manager import ReactionPolicy
from repro.core.secure import SecurityConfiguration, default_policies
from repro.soc.transaction import BusOperation, BusTransaction, TransactionStatus


def issue(system, master, txn):
    system.master_ports[master].issue(txn, lambda t: None)
    system.run()
    return txn


def write(system, master, address, data):
    return issue(system, master, BusTransaction(
        master=master, operation=BusOperation.WRITE, address=address,
        width=4, burst_length=len(data) // 4, data=data))


def read(system, master, address):
    return issue(system, master, BusTransaction(
        master=master, operation=BusOperation.READ, address=address, width=4))


def main() -> None:
    system = build_reference_platform()
    security = secure_reference_platform(
        system,
        SecurityConfiguration(
            ddr_secure_size=2048,
            ddr_cipher_only_size=0,
            reaction=ReactionPolicy(quarantine_after=3),
        ),
    )
    # Subscribe an in-memory sink: alerts, quarantines and policy rewrites
    # arrive as structured events instead of being dug out of the monitor.
    events = InMemorySink()
    attach_instrumentation(system, security, EventBus([events]))
    cfg = system.config
    manager = security.manager
    mailbox = cfg.bram_base + 0x1000

    # 1. Normal operation: cpu1 writes the mailbox.
    txn = write(system, "cpu1", mailbox, b"\x01\x02\x03\x04")
    print("normal mailbox write by cpu1 :", txn.status.value)

    # 2. cpu1 is hijacked: it repeatedly probes the IP's key registers with
    #    byte accesses (format violation) -- three strikes and it is out.
    print("\n-- cpu1 starts misbehaving --")
    for attempt in range(3):
        probe = BusTransaction(master="cpu1", operation=BusOperation.WRITE,
                               address=cfg.ip_regs_base, width=1, data=b"\xff")
        issue(system, "cpu1", probe)
        print(f"  malicious access #{attempt + 1}: {probe.status.value}")
    firewall = security.master_firewalls["cpu1"]
    print("cpu1 quarantined            :", firewall.quarantined)
    print("reaction latency (cycles)   :", manager.reaction_latency())

    # Even formerly-legitimate traffic is now stopped at cpu1's interface.
    txn = write(system, "cpu1", mailbox, b"\x05\x06\x07\x08")
    print("mailbox write while quarantined:", txn.status.value)
    assert txn.status is TransactionStatus.BLOCKED_AT_MASTER

    # 3. Operator re-provisions cpu1: released, but demoted to read-only.
    print("\n-- operator re-provisions cpu1 --")
    manager.release("cpu1")
    readonly = default_policies()["internal_readonly"]
    manager.reconfigure_policy("lf_cpu1", cfg.bram_base, readonly)
    txn_read = read(system, "cpu1", mailbox)
    txn_write = write(system, "cpu1", mailbox, b"\x09\x0a\x0b\x0c")
    print("mailbox read after release  :", txn_read.status.value)
    print("mailbox write after demotion:", txn_write.status.value)
    assert txn_read.status is TransactionStatus.COMPLETED
    assert txn_write.status is TransactionStatus.BLOCKED_AT_MASTER

    # 4. Full audit trail, straight from the instrumentation event bus.
    print("\nsecurity events (reaction + reconfiguration stream):")
    for event in events.events:
        if event.kind.startswith("security.rea") or event.kind == "security.reconfiguration":
            data = event.data
            print(f"  cycle {event.cycle:>6}: {data.get('reaction', event.kind):<20} "
                  f"target={data.get('target', data.get('master', '?'))} {data.get('detail', '')}")
    print("\nevent counts:", {k: v for k, v in sorted(events.counts.items())})
    print("alerts by violation type:", security.monitor.summary()["by_violation"])


if __name__ == "__main__":
    main()
