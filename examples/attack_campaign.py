#!/usr/bin/env python3
"""Attack campaign: the full detection matrix of the threat model.

Runs every attack of the paper's threat model (section III) against the
unprotected platform and against the platform with the distributed firewalls,
then prints the resulting detection/prevention matrix:

* spoofing, replay and relocation of external-memory content,
* a hijacked processor probing the dedicated IP's key registers,
* a hijacked processor issuing a malformed (wrong data format) write,
* a hijacked DMA engine exfiltrating secrets to unprotected memory,
* a denial-of-service flood from a hijacked processor.

The campaign is sharded across worker processes by the parallel
CampaignRunner; results are identical for any worker count.

Run with:  python examples/attack_campaign.py [--workers N | --serial]
"""

import argparse

from repro.attacks import (
    CampaignRunner,
    DoSFloodAttack,
    ExfiltrationAttack,
    HijackedIPAttack,
    RelocationAttack,
    ReplayAttack,
    SensitiveRegisterProbe,
    SpoofingAttack,
)
from repro.core.secure import SecurityConfiguration
from repro.analysis.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: one per attack, capped)")
    parser.add_argument("--serial", action="store_true",
                        help="run everything in-process")
    args = parser.parse_args()

    runner = CampaignRunner(
        [
            SpoofingAttack(),
            ReplayAttack(),
            RelocationAttack(),
            SensitiveRegisterProbe(),
            HijackedIPAttack(),
            ExfiltrationAttack(),
            DoSFloodAttack(n_requests=100),
        ],
        security_config=SecurityConfiguration(
            ddr_secure_size=4096,
            ddr_cipher_only_size=4096,
            flood_threshold=20,
        ),
        n_workers=1 if args.serial else args.workers,
    )
    report = runner.run()

    rows = [
        [
            row["attack"],
            row["unprotected"],
            row["protected"],
            row["detected"],
            row["contained_at_if"],
            row["detection_cycle"],
        ]
        for row in report.as_table_rows()
    ]
    print(
        format_table(
            ["attack", "unprotected platform", "protected platform",
             "detected", "stopped at interface", "detection cycle"],
            rows,
            title="Attack campaign -- distributed firewalls vs the paper's threat model",
        )
    )
    print()
    summary = report.summary()
    print(f"attacks run        : {summary['attacks']}")
    print(f"prevented          : {summary['prevented']} "
          f"({100 * summary['prevention_rate']:.0f}%)")
    print(f"detected           : {summary['detected']} "
          f"({100 * summary['detection_rate']:.0f}%)")
    print(f"workers            : {report.metrics.get('n_workers', 1)} "
          f"({report.metrics.get('wall_seconds', 0.0):.2f}s wall)")
    if report.monitor_totals:
        print("alerts by violation:",
              ", ".join(f"{k}={v}" for k, v in sorted(report.monitor_totals.items())))


if __name__ == "__main__":
    main()
