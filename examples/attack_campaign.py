#!/usr/bin/env python3
"""Attack campaign: the full detection matrix of the threat model.

Runs every attack of the paper's threat model (section III) against the
unprotected platform and against the platform with the distributed firewalls,
then prints the resulting detection/prevention matrix:

* spoofing, replay and relocation of external-memory content,
* a hijacked processor probing the dedicated IP's key registers,
* a hijacked processor issuing a malformed (wrong data format) write,
* a hijacked DMA engine exfiltrating secrets to unprotected memory,
* a denial-of-service flood from a hijacked processor.

The whole pipeline runs through the unified ``Experiment`` façade: the
``paper_baseline`` scenario's attack mix is sharded across worker processes
by the parallel campaign runner (results are identical for any worker
count), and the shard-merged instrumentation counters come back in the same
uniform result record.

Run with:  python examples/attack_campaign.py [--workers N | --serial]
Equivalent CLI:  python -m repro campaign paper_baseline [--workers N]
"""

import argparse

from repro.api import Experiment, StatsSink
from repro.analysis.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: one per attack, capped)")
    parser.add_argument("--serial", action="store_true",
                        help="run everything in-process")
    args = parser.parse_args()

    result = (
        Experiment.from_scenario("paper_baseline")
        .with_workload(None)                      # campaign only, no workload phase
        .campaign(n_workers=1 if args.serial else args.workers)
        .with_sink(StatsSink())                   # shard-merged event counters
        .run()
    )
    campaign = result.campaign

    rows = [
        [
            row["attack"],
            row["unprotected"],
            row["protected"],
            row["detected"],
            row["contained_at_if"],
            row["detection_cycle"],
        ]
        for row in campaign["rows"]
    ]
    print(
        format_table(
            ["attack", "unprotected platform", "protected platform",
             "detected", "stopped at interface", "detection cycle"],
            rows,
            title="Attack campaign -- distributed firewalls vs the paper's threat model",
        )
    )
    print()
    summary = campaign["summary"]
    metrics = campaign["metrics"]
    print(f"attacks run        : {summary['attacks']}")
    print(f"prevented          : {summary['prevented']} "
          f"({100 * summary['prevention_rate']:.0f}%)")
    print(f"detected           : {summary['detected']} "
          f"({100 * summary['detection_rate']:.0f}%)")
    print(f"workers            : {metrics.get('n_workers', 1)} "
          f"({metrics.get('wall_seconds', 0.0):.2f}s wall)")
    if campaign["monitor_totals"]:
        print("alerts by violation:",
              ", ".join(f"{k}={v}" for k, v in sorted(campaign["monitor_totals"].items())))
    if campaign["event_totals"]:
        print("events (all shards):",
              ", ".join(f"{k}={v}" for k, v in sorted(campaign["event_totals"].items())))


if __name__ == "__main__":
    main()
