#!/usr/bin/env python3
"""Scenario matrix: sweep the registry of SoC topologies.

Runs every registered scenario (or a chosen one) through the unified
``Experiment`` pipeline: builds the topology, attaches the firewalls, drives
the workload mix, runs the attack mix on protected and unprotected builds,
and prints one summary row per scenario.  With ``--differential`` each
scenario additionally runs twice — fast paths enabled vs. reference
implementations forced — and the structural fingerprints (alerts, cycle
counts, ciphertexts) are compared.

Run with:
    python examples/scenario_matrix.py                 # full registry
    python examples/scenario_matrix.py --list          # names + descriptions
    python examples/scenario_matrix.py --scenario crypto_heavy
    python examples/scenario_matrix.py --differential  # golden-model check

Equivalent CLI:  python -m repro list / python -m repro run <scenario>
"""

import argparse
import sys
import time

from repro.analysis.tables import format_table
from repro.api import Experiment
from repro.scenarios import assert_equivalent, differential_pair, get_scenario, list_scenarios


def run_one(name: str) -> dict:
    """Run one scenario end to end; returns its summary row."""
    started = time.perf_counter()
    result = Experiment.from_scenario(name).run()
    campaign = result.campaign or {"summary": {"attacks": 0, "prevented": 0, "detected": 0}}
    summary = campaign["summary"]
    spec = get_scenario(name)
    return {
        "scenario": name,
        "masters": len(spec.topology.masters),
        "slaves": len(spec.topology.slaves),
        "enforcement": result.enforcement,
        "cycles": result.workload["final_cycle"],
        "workload_alerts": result.alerts["total"] if result.alerts else 0,
        "attacks": summary["attacks"],
        "prevented": summary["prevented"],
        "detected": summary["detected"],
        "seconds": time.perf_counter() - started,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--list", action="store_true", help="list scenarios and exit")
    parser.add_argument("--scenario", default=None, help="run a single scenario by name")
    parser.add_argument("--differential", action="store_true",
                        help="also run each scenario fast-vs-reference and compare")
    args = parser.parse_args()

    if args.list:
        for name in list_scenarios():
            print(f"{name:32s} {get_scenario(name).description}")
        return 0

    names = [args.scenario] if args.scenario else list_scenarios()
    rows = []
    failures = 0
    for name in names:
        row = run_one(name)
        if args.differential:
            fast, reference = differential_pair(lambda n=name: get_scenario(n))
            try:
                assert_equivalent(fast, reference)
                row["differential"] = "identical"
            except AssertionError as exc:
                failures += 1
                row["differential"] = "DIVERGED"
                print(f"!! {name} diverged:\n{exc}", file=sys.stderr)
        rows.append(row)

    headers = ["scenario", "masters", "slaves", "enforcement", "cycles",
               "workload alerts", "attacks", "prevented", "detected"]
    table_rows = [
        [r["scenario"], r["masters"], r["slaves"], r["enforcement"], r["cycles"],
         r["workload_alerts"], r["attacks"], r["prevented"], r["detected"]]
        for r in rows
    ]
    if args.differential:
        headers.append("fast vs reference")
        for table_row, row in zip(table_rows, rows):
            table_row.append(row["differential"])
    print(format_table(headers, table_rows,
                       title="Scenario matrix -- distributed firewalls across topologies"))
    print(f"\n{len(rows)} scenario(s) run"
          + (f", {failures} differential failure(s)" if args.differential else ""))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
