#!/usr/bin/env python3
"""Scenario matrix: sweep the registry of SoC topologies.

Runs every registered scenario (or a chosen one) end to end: builds the
topology, attaches the firewalls, drives the workload mix, runs the attack
mix on protected and unprotected builds, and prints one summary row per
scenario.  With ``--differential`` each scenario additionally runs twice —
fast paths enabled vs. reference implementations forced — and the structural
fingerprints (alerts, cycle counts, ciphertexts) are compared.

Run with:
    python examples/scenario_matrix.py                 # full registry
    python examples/scenario_matrix.py --list          # names + descriptions
    python examples/scenario_matrix.py --scenario crypto_heavy
    python examples/scenario_matrix.py --differential  # golden-model check
"""

import argparse
import sys
import time

from repro.analysis.tables import format_table
from repro.scenarios import (
    ScenarioBuilder,
    assert_equivalent,
    differential_pair,
    get_scenario,
    list_scenarios,
)


def run_one(name: str) -> dict:
    """Build and drive one scenario; returns its summary row."""
    spec = get_scenario(name)
    builder = ScenarioBuilder(spec)

    built = builder.build(protected=True)
    started = time.perf_counter()
    cycles = built.run_workload()
    alerts = len(built.monitor.alerts) if built.monitor else 0

    prevented = detected = 0
    attacks = built.attacks()
    for attack in attacks:
        plain = builder.build(protected=False)
        unprotected = attack.run(plain.system, None)
        protected = builder.build(protected=True)
        result = attack.run(protected.system, protected.security)
        if unprotected.achieved_goal and not result.achieved_goal:
            prevented += 1
        if result.detected:
            detected += 1

    topology = spec.topology
    return {
        "scenario": name,
        "masters": len(topology.masters),
        "slaves": len(topology.slaves),
        "enforcement": spec.enforcement,
        "cycles": cycles,
        "workload_alerts": alerts,
        "attacks": len(attacks),
        "prevented": prevented,
        "detected": detected,
        "seconds": time.perf_counter() - started,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--list", action="store_true", help="list scenarios and exit")
    parser.add_argument("--scenario", default=None, help="run a single scenario by name")
    parser.add_argument("--differential", action="store_true",
                        help="also run each scenario fast-vs-reference and compare")
    args = parser.parse_args()

    if args.list:
        for name in list_scenarios():
            print(f"{name:32s} {get_scenario(name).description}")
        return 0

    names = [args.scenario] if args.scenario else list_scenarios()
    rows = []
    failures = 0
    for name in names:
        row = run_one(name)
        if args.differential:
            fast, reference = differential_pair(lambda n=name: get_scenario(n))
            try:
                assert_equivalent(fast, reference)
                row["differential"] = "identical"
            except AssertionError as exc:
                failures += 1
                row["differential"] = "DIVERGED"
                print(f"!! {name} diverged:\n{exc}", file=sys.stderr)
        rows.append(row)

    headers = ["scenario", "masters", "slaves", "enforcement", "cycles",
               "workload alerts", "attacks", "prevented", "detected"]
    table_rows = [
        [r["scenario"], r["masters"], r["slaves"], r["enforcement"], r["cycles"],
         r["workload_alerts"], r["attacks"], r["prevented"], r["detected"]]
        for r in rows
    ]
    if args.differential:
        headers.append("fast vs reference")
        for table_row, row in zip(table_rows, rows):
            table_row.append(row["differential"])
    print(format_table(headers, table_rows,
                       title="Scenario matrix -- distributed firewalls across topologies"))
    print(f"\n{len(rows)} scenario(s) run"
          + (f", {failures} differential failure(s)" if args.differential else ""))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
