#!/usr/bin/env python3
"""Walkthrough: grid sweeps, the persistent result store, comparison tables.

Runs a small scenario x seed grid into an on-disk :class:`ResultStore`,
reruns it to show the cache being served, then joins the stored results into
the cross-scenario comparison tables (the same layer ``python -m repro
paper`` renders its artifacts through).

Usage::

    python examples/sweep_and_compare.py [--store DIR]
"""

from __future__ import annotations

import argparse
import tempfile

from repro.analysis.compare import comparison_report
from repro.sweep import ResultStore, SweepRunner, SweepSpec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="result store directory (default: a fresh temp dir)")
    args = parser.parse_args()
    store_dir = args.store or tempfile.mkdtemp(prefix="repro-sweep-")

    spec = SweepSpec(
        scenarios=("minimal_1x1", "two_segment_dma_isolation"),
        seeds=(0, 1),
    )
    store = ResultStore(store_dir)

    print(f"== cold sweep into {store_dir} ==")
    cold = SweepRunner(spec, store).run()
    print(f"computed={len(cold.computed)} cached={len(cold.cached)} "
          f"digest={cold.store_digest[:16]}")

    print("\n== same grid again: served from the store ==")
    warm = SweepRunner(spec, store).run()
    print(f"computed={len(warm.computed)} cached={len(warm.cached)} "
          f"digest={warm.store_digest[:16]}")
    assert not warm.computed and warm.store_digest == cold.store_digest

    print("\n== comparison tables over the stored results ==\n")
    entries = [store.get(key) for key in warm.keys.values()]
    print(comparison_report(entries))


if __name__ == "__main__":
    main()
