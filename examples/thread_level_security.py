#!/usr/bin/env python3
"""Thread-specific security levels (the paper's final perspective).

"In this work, policies are defined using the address spaces, it can be
interesting to study the adaptation to thread-specific security where each
thread has its own security level." (paper, conclusion)

This example builds a small platform where cpu0 runs two threads:

* thread 7 — the trusted key-management thread (clearance 2),
* thread 8 — an untrusted application thread (clearance 0),

and a thread-aware Local Firewall that requires clearance 2 for the key
vault region of the BRAM.  The same address-based policy covers both threads;
only the clearance differs — and only the trusted thread's accesses go
through.  At the end the directory demotes the trusted thread (e.g. after a
detected compromise) and its next access is blocked too.

Run with:  python examples/thread_level_security.py
"""

from repro.api import EventBus, InMemorySink
from repro.core import (
    ConfigurationMemory,
    SecurityMonitor,
    SecurityPolicy,
    ThreadAwareLocalFirewall,
    ThreadSecurityDirectory,
)
from repro.soc.address_map import AddressMap
from repro.soc.bus import SystemBus
from repro.soc.kernel import Simulator
from repro.soc.memory import BlockRAM
from repro.soc.ports import MasterPort, SlavePort
from repro.soc.processor import MemoryOperation, Processor, ProcessorProgram

KEY_VAULT_BASE = 0x2000
PUBLIC_BASE = 0x0000
REGION = 0x2000


def main() -> None:
    sim = Simulator()
    # Even a hand-assembled platform gets instrumentation for free: attach an
    # event bus to the kernel and every component publishes through it.
    events = InMemorySink()
    sim.event_bus = EventBus([events])
    amap = AddressMap()
    amap.add_region("bram", 0x0, 0x8000, slave="bram")
    bus = SystemBus(sim, address_map=amap)
    bram = BlockRAM(sim, "bram", base=0x0, size=0x8000)
    bus.connect_slave(SlavePort(sim, "bram_port", bram))

    monitor = SecurityMonitor()
    monitor.event_bus = sim.event_bus
    rules = ConfigurationMemory("cfg_cpu0", capacity=4)
    rules.add(PUBLIC_BASE, REGION, SecurityPolicy(spi=1), label="public")
    rules.add(KEY_VAULT_BASE, REGION, SecurityPolicy(spi=2), label="key_vault")

    directory = ThreadSecurityDirectory(default_clearance=0)
    directory.set_clearance(7, 2)   # key-management thread
    directory.set_clearance(8, 0)   # application thread

    firewall = ThreadAwareLocalFirewall(
        sim, "tlf_cpu0", rules, directory,
        clearance_requirements={KEY_VAULT_BASE: 2},
        monitor=monitor,
    )
    port = MasterPort(sim, "cpu0_port", filters=[firewall])
    bus.connect_master(port)

    program = ProcessorProgram([
        # trusted thread provisions a key into the vault and reads it back
        MemoryOperation.write(KEY_VAULT_BASE, b"\x10\x32\x54\x76", thread_id=7),
        MemoryOperation.read(KEY_VAULT_BASE, thread_id=7),
        # untrusted thread works in the public window...
        MemoryOperation.write(PUBLIC_BASE + 0x40, b"\xaa\xbb\xcc\xdd", thread_id=8),
        # ...but also tries to read the vault
        MemoryOperation.read(KEY_VAULT_BASE, thread_id=8),
    ], name="two_threads")
    cpu0 = Processor(sim, "cpu0", port, program)
    cpu0.start()
    sim.run()

    labels = ["trusted write to vault", "trusted read of vault",
              "untrusted write to public", "untrusted read of vault"]
    for label, txn in zip(labels, cpu0.transactions):
        print(f"{label:<28}: {txn.status.value}")
    print("alerts so far               :", monitor.count())

    # The security manager later demotes the key thread (compromise suspected).
    print("\n-- thread 7 demoted to clearance 0 --")
    directory.set_clearance(7, 0)
    from repro.soc.transaction import BusOperation, BusTransaction

    txn = BusTransaction(master="cpu0", operation=BusOperation.READ,
                         address=KEY_VAULT_BASE, width=4)
    txn.annotations["thread_id"] = 7
    port.issue(txn, lambda t: None)
    sim.run()
    print("demoted thread reads vault  :", txn.status.value)
    print("total alerts                :", monitor.count())
    print("firewall summary            :", firewall.summary())
    blocked = events.of_kind("txn.blocked")
    print("event-bus view              :", dict(sorted(events.counts.items())))
    print("blocked at interface        :",
          [f"cycle {e.cycle} {e.data['master']}@{e.data['address']:#x}" for e in blocked])


if __name__ == "__main__":
    main()
