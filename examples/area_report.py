#!/usr/bin/env python3
"""Architecture and cost report: regenerate Figure 1 and Table I.

Prints:

* the structural description of the protected platform (which interface
  carries which firewall, and the memory map) -- the paper's Figure 1,
* the regenerated Table I from the calibrated area model, next to the paper's
  reported numbers,
* how the area model extrapolates when the platform grows (more processors,
  more security rules) -- the discussion the paper defers to future work.

Run with:  python examples/area_report.py
"""

from repro import build_reference_platform, secure_reference_platform
from repro.analysis.report import ArchitectureReport, render_table1
from repro.analysis.tables import format_table
from repro.core.secure import SecurityConfiguration
from repro.metrics.area import AreaModel, PAPER_TABLE1, generate_table1


def main() -> None:
    # -- Figure 1: the secured platform's topology -----------------------------
    system = build_reference_platform()
    secure_reference_platform(system, SecurityConfiguration(ddr_secure_size=2048, ddr_cipher_only_size=2048))
    report = ArchitectureReport(system.describe_topology())
    print(report.render())
    print()
    print(f"interfaces carrying a firewall: {report.firewall_count()}")
    print()

    # -- Table I: the calibrated area model ------------------------------------
    print(render_table1(generate_table1()))
    print()
    paper = PAPER_TABLE1["generic_with_firewalls"]
    print("paper-reported protected platform:",
          f"{paper.slice_registers:,} regs / {paper.slice_luts:,} LUTs / "
          f"{paper.lut_ff_pairs:,} LUT-FF pairs / {int(paper.brams)} BRAMs")
    model = AreaModel()
    print(f"crypto cores' share of the LCF    : {100 * model.lcf_component_share():.1f}% "
          "(paper: 'about 90%')")
    print()

    # -- extrapolation: platform size and policy aggressiveness ----------------
    rows = []
    for n_cpus in (3, 4, 6, 8):
        n_firewalls = n_cpus + 2  # one LF per CPU + BRAM + dedicated IP
        area = model.platform_with_firewalls(n_local_firewalls=n_firewalls)
        overhead = area.overhead_vs(model.platform_without_firewalls())
        rows.append([
            f"{n_cpus} CPUs ({n_firewalls} LFs + LCF)",
            int(area.slice_registers), int(area.slice_luts),
            f"+{100 * overhead['slice_luts']:.1f}%",
        ])
    print(format_table(
        ["platform", "slice regs", "slice LUTs", "LUT overhead vs baseline"],
        rows,
        title="Extrapolation: area vs number of processors",
    ))


if __name__ == "__main__":
    main()
