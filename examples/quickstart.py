#!/usr/bin/env python3
"""Quickstart: build the paper's platform, protect it, run traffic, attack it.

This walks through the public API in five steps:

1. build the protected reference platform (3 MicroBlaze-like CPUs, BRAM,
   external DDR, one dedicated IP on a shared bus -- the paper's Figure 1,
   with Local Firewalls on every interface and a Local Ciphering Firewall on
   the external memory),
2. run legitimate traffic and observe that it completes with zero alerts
   while the external memory only ever holds ciphertext,
3. let a hijacked IP issue an unauthorized access and watch it being blocked
   *at its own interface*, before it reaches the shared bus,
4. print the security monitor's summary,
5. run the same claim as a one-liner through the unified ``Experiment``
   façade -- the scenario-to-report pipeline everything else builds on.

Run with:  python examples/quickstart.py
"""

from repro import build_reference_platform, secure_reference_platform
from repro.api import Experiment
from repro.core.secure import SecurityConfiguration
from repro.soc.processor import MemoryOperation, ProcessorProgram
from repro.soc.transaction import BusOperation, BusTransaction, TransactionStatus


def main() -> None:
    # ------------------------------------------------------------------ 1
    system = build_reference_platform()
    security = secure_reference_platform(
        system,
        SecurityConfiguration(ddr_secure_size=4096, ddr_cipher_only_size=4096),
    )
    print("Platform built:", ", ".join(system.processors), "+ dma, bram, ddr, ip0")
    print("Firewalls attached:", ", ".join(fw.name for fw in security.all_firewalls))
    print()

    # ------------------------------------------------------------------ 2
    cfg = system.config
    secret = b"user PIN = 4242!"
    program = ProcessorProgram(
        [
            # Internal traffic: BRAM and the dedicated IP's registers.
            MemoryOperation.write(cfg.bram_base + 0x100, b"\x11\x22\x33\x44"),
            MemoryOperation.read(cfg.bram_base + 0x100),
            MemoryOperation.write(cfg.ip_regs_base + 0x10, (7).to_bytes(4, "little")),
            # External traffic: lands in the ciphered + authenticated window.
            MemoryOperation.write(cfg.ddr_base + 0x40, secret),
            MemoryOperation.read(cfg.ddr_base + 0x40, width=4, burst_length=4),
        ],
        name="legitimate",
    )
    system.processors["cpu0"].load_program(program)
    system.processors["cpu0"].start()
    system.run()

    cpu0 = system.processors["cpu0"]
    readback = cpu0.transactions[-1].data
    raw_in_ddr = system.ddr.peek(cfg.ddr_base + 0x40, len(secret))
    print("cpu0 finished in", cpu0.execution_cycles, "cycles")
    print("  secret written to external memory :", secret)
    print("  what cpu0 reads back              :", readback)
    print("  what the DDR chip actually stores :", raw_in_ddr.hex())
    print("  alerts raised by legitimate traffic:", security.monitor.count())
    assert readback == secret and raw_in_ddr != secret
    print()

    # ------------------------------------------------------------------ 3
    # A hijacked DMA engine tries to read the dedicated IP's key registers.
    probe = BusTransaction(
        master="dma", operation=BusOperation.READ, address=cfg.ip_regs_base, width=4
    )
    system.master_ports["dma"].issue(probe, lambda txn: None)
    system.run()
    print("hijacked DMA probe of the IP key registers:")
    print("  status             :", probe.status.value)
    print("  reached the bus?   :", "dma" in system.bus.monitor.per_master)
    print("  reason             :", probe.annotations.get("block_reason"))
    assert probe.status is TransactionStatus.BLOCKED_AT_MASTER
    print()

    # ------------------------------------------------------------------ 4
    print("security monitor summary:")
    for key, value in security.monitor.summary().items():
        print(f"  {key}: {value}")
    print()

    # ------------------------------------------------------------------ 5
    # The same platform, workload and attack mix as a registered scenario,
    # through the unified pipeline: one call from scenario name to report.
    result = Experiment.from_scenario("paper_baseline").run()
    campaign = result.campaign["summary"]
    print("Experiment('paper_baseline').run():")
    print(f"  workload final cycle : {result.workload['final_cycle']}")
    print(f"  workload alerts      : {result.alerts['total']}")
    print(f"  attacks prevented    : {campaign['prevented']}/{campaign['attacks']}")
    print(f"  attacks detected     : {campaign['detected']}/{campaign['attacks']}")
    assert campaign["detected"] == campaign["attacks"]


if __name__ == "__main__":
    main()
