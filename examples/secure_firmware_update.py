#!/usr/bin/env python3
"""Secure firmware update: stream an image into protected external memory.

The scenario the paper's threat model worries about most is code or data in
the *external* memory being tampered with and then executed/consumed by one of
the processors.  This example:

1. streams a firmware image into the ciphered + authenticated DDR window
   through the Local Ciphering Firewall,
2. verifies the processor reads back exactly what it wrote, while the DDR
   chip itself only ever stores ciphertext,
3. simulates an attacker on the external bus who patches the stored image
   (spoofing) and shows that the next read is rejected with an integrity
   error instead of delivering the attacker's code,
4. simulates a replay of the original (stale) image after a legitimate
   update, which is likewise rejected thanks to the timestamp tags.

Run with:  python examples/secure_firmware_update.py
"""

from repro import build_reference_platform, secure_reference_platform
from repro.core.secure import SecurityConfiguration
from repro.soc.transaction import BusOperation, BusTransaction, TransactionStatus
from repro.workloads.patterns import firmware_update_program


def issue(system, master, txn):
    """Issue one transaction and run the simulator until it completes."""
    system.master_ports[master].issue(txn, lambda t: None)
    system.run()
    return txn


def read_word(system, address, size=16):
    return issue(
        system,
        "cpu0",
        BusTransaction(master="cpu0", operation=BusOperation.READ, address=address,
                       width=4, burst_length=size // 4),
    )


def main() -> None:
    system = build_reference_platform()
    security = secure_reference_platform(
        system, SecurityConfiguration(ddr_secure_size=4096, ddr_cipher_only_size=0)
    )
    cfg = system.config

    # 1. Stream the image and read it back for verification.
    program, image = firmware_update_program(cfg, image_size=1024, chunk_size=16)
    system.processors["cpu0"].load_program(program)
    system.processors["cpu0"].start()
    system.run()

    cpu0 = system.processors["cpu0"]
    readback = b"".join(t.data for t in cpu0.transactions if t.is_read)
    stored = system.ddr.peek(cfg.ddr_base, len(image))
    print(f"firmware image size          : {len(image)} bytes")
    print(f"read-back matches image      : {readback == image}")
    print(f"DDR stores plaintext image?  : {stored == image}")
    print(f"alerts during the update     : {security.monitor.count()}")
    assert readback == image and stored != image

    # 2. Spoofing: the attacker patches the stored firmware directly.
    print("\n-- attacker patches 16 bytes of the stored firmware (spoofing) --")
    system.ddr.poke(cfg.ddr_base + 0x80, b"\xde\xad\xbe\xef" * 4)
    txn = read_word(system, cfg.ddr_base + 0x80)
    print(f"victim read status           : {txn.status.value}")
    print(f"integrity alerts             : "
          f"{security.monitor.summary()['by_violation'].get('integrity_failure', 0)}")
    assert txn.status is TransactionStatus.INTEGRITY_ERROR

    # 3. Replay: attacker restores the original image over a newer version.
    print("\n-- legitimate update of one block, then attacker replays the old one --")
    block_address = cfg.ddr_base + 0x100
    stale_ciphertext = system.ddr.peek(block_address, 32)
    update = BusTransaction(master="cpu0", operation=BusOperation.WRITE,
                            address=block_address, width=4, burst_length=8,
                            data=b"PATCHED-FIRMWARE-BLOCK-v2.0.1!!!")
    issue(system, "cpu0", update)
    system.ddr.poke(block_address, stale_ciphertext)   # replay the old ciphertext
    txn = read_word(system, block_address, 32)
    print(f"victim read status           : {txn.status.value}")
    assert txn.status is TransactionStatus.INTEGRITY_ERROR

    print("\ntotal alerts:", security.monitor.count())
    print("detection summary:", security.monitor.summary()["by_violation"])


if __name__ == "__main__":
    main()
