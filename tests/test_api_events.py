"""Event-bus tests: determinism, JSONL schema, byte-identity, shard merge.

Covers the instrumentation redesign's contract:

* the event stream is deterministic under identical seeds,
* the JSONL trace round-trips through ``json`` with a stable schema drawn
  from the closed ``EVENT_KINDS`` vocabulary,
* the zero-sink path is byte-identical to no instrumentation at all (reusing
  the differential harness's fingerprint comparison),
* the campaign runner's shard-merged sink counters equal a serial run.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    EVENT_KINDS,
    EventBus,
    Experiment,
    InMemorySink,
    JsonlTraceSink,
    StatsSink,
    attach_instrumentation,
)
from repro.attacks.runner import CampaignRunner
from repro.core.secure import SecurityConfiguration, secure_reference_platform
from repro.scenarios import get_scenario
from repro.scenarios.differential import diff_fingerprints
from repro.soc.system import build_reference_platform
from repro.soc.transaction import BusOperation, BusTransaction, TransactionStatus


def _stream_fingerprint(sink: InMemorySink):
    """Event stream minus the process-global txn_id counter."""
    out = []
    for event in sink.events:
        data = {k: v for k, v in event.data.items() if k != "txn_id"}
        out.append((event.kind, event.cycle, event.source, tuple(sorted(data.items()))))
    return out


class TestDeterminism:
    def test_identical_runs_identical_event_streams(self):
        streams = []
        for _ in range(2):
            sink = InMemorySink()
            Experiment.from_scenario("minimal_1x1").with_sink(sink).no_attacks().run()
            streams.append(_stream_fingerprint(sink))
        assert streams[0], "workload phase emitted no events"
        assert streams[0] == streams[1]

    def test_streams_cover_core_vocabulary(self):
        sink = InMemorySink()
        Experiment.from_scenario("paper_baseline").with_sink(sink).no_attacks().run()
        kinds = set(sink.counts)
        assert {"txn.issued", "txn.completed", "bus.granted",
                "firewall.decision", "sim.run"} <= kinds
        assert kinds <= EVENT_KINDS


class TestJsonlRoundTrip:
    def test_trace_schema(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path))
        Experiment.from_scenario("minimal_1x1").with_sink(sink).no_attacks().run()

        lines = path.read_text().splitlines()
        assert lines and len(lines) == sink.events_written
        for line in lines:
            event = json.loads(line)
            assert set(event) == {"kind", "cycle", "source", "data"}
            assert event["kind"] in EVENT_KINDS
            assert isinstance(event["cycle"], int)
            assert isinstance(event["source"], str)
            assert isinstance(event["data"], dict)

    def test_path_sink_is_durable_without_close(self, tmp_path):
        """A killed run must leave a trace complete up to its last event —
        path-opened sinks flush per line, so lines land without close()."""
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path))
        Experiment.from_scenario("minimal_1x1").with_sink(sink).no_attacks().run()
        # Deliberately no sink.close(): simulates a crashed/killed process.
        lines = path.read_text().splitlines()
        assert len(lines) == sink.events_written > 0
        for line in lines:
            json.loads(line)  # no truncated trailing line either
        sink.close()

    def test_append_mode_does_not_truncate_prior_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        first = JsonlTraceSink(str(path))
        Experiment.from_scenario("minimal_1x1").with_sink(first).no_attacks().run()
        first.close()
        before = path.read_text().splitlines()

        reopened = JsonlTraceSink(str(path), append=True)
        Experiment.from_scenario("minimal_1x1").with_sink(reopened).no_attacks().run()
        reopened.close()
        after = path.read_text().splitlines()
        assert after[: len(before)] == before
        assert len(after) == len(before) + reopened.events_written

    def test_stream_sink_line_flush_opt_in(self):
        import io

        class CountingFlush(io.StringIO):
            flushes = 0

            def flush(self):
                type(self).flushes += 1
                return super().flush()

        stream = CountingFlush()
        sink = JsonlTraceSink(stream, line_flush=True)
        Experiment.from_scenario("minimal_1x1").with_sink(sink).no_attacks().run()
        assert CountingFlush.flushes >= sink.events_written > 0

    def test_trace_to_existing_stream(self):
        import io

        stream = io.StringIO()
        sink = JsonlTraceSink(stream)
        Experiment.from_scenario("minimal_1x1").with_sink(sink).no_attacks().run()
        lines = stream.getvalue().splitlines()
        assert len(lines) == sink.events_written > 0
        # Caller-owned streams stay open after close().
        assert not stream.closed

    def test_trace_matches_in_memory_stream(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace = JsonlTraceSink(str(path))
        memory = InMemorySink()
        (
            Experiment.from_scenario("minimal_1x1")
            .with_sink(trace)
            .with_sink(memory)
            .no_attacks()
            .run()
        )
        parsed = [json.loads(line) for line in path.read_text().splitlines()]
        assert parsed == [event.to_dict() for event in memory.events]

    def test_experiment_rerun_keeps_trace_sink_usable(self, tmp_path):
        # run() must not close caller-owned sinks: the fluent builder can be
        # run again (and the trace file keeps accumulating).
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path))
        experiment = (
            Experiment.from_scenario("minimal_1x1").with_sink(sink).no_attacks()
        )
        first = experiment.run()
        written_after_first = sink.events_written
        second = experiment.run()
        assert second.workload == first.workload
        assert sink.events_written == 2 * written_after_first
        sink.close()
        assert len(path.read_text().splitlines()) == sink.events_written


def _scrub(result_dict):
    """Strip the fields that legitimately differ between instrumented and
    uninstrumented runs (wall-clock timings, sink metadata, event counters);
    everything left must be bit-identical."""
    scrubbed = json.loads(json.dumps(result_dict))  # deep copy
    scrubbed.pop("meta", None)
    scrubbed.pop("events", None)
    campaign = scrubbed.get("campaign")
    if campaign:
        campaign.pop("metrics", None)
        campaign.pop("event_totals", None)
    return scrubbed


class TestZeroSinkByteIdentity:
    @pytest.mark.parametrize("scenario", ["minimal_1x1", "two_segment_dma_isolation"])
    def test_zero_sink_identical_to_uninstrumented(self, scenario):
        plain = Experiment.from_scenario(scenario).run()
        zero_sink = Experiment.from_scenario(scenario).instrumented().run()
        diffs = diff_fingerprints(_scrub(plain.to_dict()), _scrub(zero_sink.to_dict()))
        assert not diffs, "zero-sink run diverged:\n  " + "\n  ".join(diffs)

    def test_multiple_sinks_do_not_double_count_result_events(self):
        single = (
            Experiment.from_scenario("minimal_1x1")
            .with_sink(StatsSink())
            .no_attacks()
            .run()
        )
        double = (
            Experiment.from_scenario("minimal_1x1")
            .with_sink(StatsSink())
            .with_sink(InMemorySink())
            .no_attacks()
            .run()
        )
        # One run = one event stream, regardless of how many sinks watched it.
        assert double.events == single.events

    def test_counting_sink_identical_to_uninstrumented(self):
        plain = Experiment.from_scenario("minimal_1x1").run()
        counted = Experiment.from_scenario("minimal_1x1").with_sink(StatsSink()).run()
        diffs = diff_fingerprints(_scrub(plain.to_dict()), _scrub(counted.to_dict()))
        assert not diffs, "counting-sink run diverged:\n  " + "\n  ".join(diffs)
        assert counted.events and counted.events["txn.issued"] > 0

    def test_kernel_event_count_unchanged_by_instrumentation(self):
        plain = Experiment.from_scenario("minimal_1x1").no_attacks().run()
        traced = (
            Experiment.from_scenario("minimal_1x1")
            .with_sink(InMemorySink())
            .no_attacks()
            .run()
        )
        # Emission is synchronous: it must never schedule kernel events.
        assert plain.workload["events_processed"] == traced.workload["events_processed"]


class TestCampaignShardMerge:
    def test_sharded_sink_counters_equal_serial(self):
        spec = get_scenario("paper_baseline")

        def run(workers):
            return CampaignRunner.from_spec(
                spec, n_workers=workers, collect_events=True
            ).run()

        serial = run(1)
        sharded = run(4)
        assert serial.event_totals, "collect_events produced no counters"
        assert serial.event_totals == sharded.event_totals
        assert serial.monitor_totals == sharded.monitor_totals
        assert [r.attack for r in serial.rows] == [r.attack for r in sharded.rows]

    def test_event_totals_empty_without_collect(self):
        spec = get_scenario("minimal_1x1")
        report = CampaignRunner.from_spec(spec, n_workers=1).run()
        assert report.event_totals == {}


class TestDirectWiring:
    """The bus works on hand-assembled platforms, not only through Experiment."""

    def test_alert_and_containment_events(self):
        system = build_reference_platform()
        security = secure_reference_platform(system, SecurityConfiguration())
        sink = InMemorySink()
        attach_instrumentation(system, security, EventBus([sink]))

        # cpu2 is not in ip_masters: its LF has no rule for the IP registers.
        probe = BusTransaction(
            master="cpu2", operation=BusOperation.READ,
            address=system.config.ip_regs_base, width=4,
        )
        system.master_ports["cpu2"].issue(probe, lambda t: None)
        system.run()

        assert probe.status is TransactionStatus.BLOCKED_AT_MASTER
        denied = [e for e in sink.of_kind("firewall.decision") if not e.data["allowed"]]
        assert len(denied) == 1 and denied[0].source == "lf_cpu2"
        alerts = sink.of_kind("security.alert")
        assert len(alerts) == 1 and alerts[0].data["violation"] == "policy_miss"
        blocked = sink.of_kind("txn.blocked")
        assert len(blocked) == 1 and blocked[0].data["master"] == "cpu2"
        # The denied transaction never reached the bus: no grant observed.
        assert sink.of_kind("bus.granted") == []

    def test_count_fast_path_matches_full_sink(self):
        def counts_with(sink_factory):
            system = build_reference_platform()
            security = secure_reference_platform(system, SecurityConfiguration())
            sink = sink_factory()
            attach_instrumentation(system, security, EventBus([sink]))
            txn = BusTransaction(
                master="cpu0", operation=BusOperation.WRITE,
                address=system.config.bram_base, width=4, data=b"\x00" * 4,
            )
            system.master_ports["cpu0"].issue(txn, lambda t: None)
            system.run()
            return dict(sink.counts)

        # The payload-free counting lane and the full-event lane must agree
        # on what was emitted.
        assert counts_with(StatsSink) == counts_with(InMemorySink)
