"""Engine identity under fuzz stimuli.

The engine-differential gate drives every registered scenario's *workload*
through both engines; this file extends the same fingerprint-identity
contract to *fuzz-shaped* stimuli: adversarial, protocol-aware transaction
sequences replayed after the workload.  Every committed corpus case and a
seeded sample of generated cases must leave bit-identical observables under
the object and vector engines.
"""

from __future__ import annotations

import pytest

from repro.fuzz import FuzzCase, SequenceGenerator, load_cases, replay_case
from repro.fuzz.planted import planted_backdoor_spec
from repro.scenarios import get_scenario
from repro.scenarios.differential import diff_fingerprints

CORPUS_ENTRIES = load_cases("tests/corpus/planted_backdoor.json")

#: Scenario/seed pairs for the generated smoke sample: the stateful packs
#: (where the protocol devices live) plus one bridged fabric.
SMOKE_TARGETS = [
    ("firmware_update_bay", 7),
    ("secure_boot_bay", 7),
    ("two_segment_dma_isolation", 7),
]


def _spec_for(name: str):
    if name == "planted_backdoor":
        return planted_backdoor_spec()
    return get_scenario(name)


def _assert_engine_identity(spec, case: FuzzCase) -> None:
    replay_object = replay_case(spec, case, "object")
    replay_vector = replay_case(spec, case, "vector")
    assert replay_vector["engine_used"] == "vector", replay_vector["fallback_reason"]
    diffs = diff_fingerprints(
        replay_object["fingerprint"], replay_vector["fingerprint"]
    )
    assert not diffs, (
        f"{spec.name} case {case.digest()} diverged under the vector engine:\n  "
        + "\n  ".join(diffs)
    )
    assert replay_object["steps"] == replay_vector["steps"]


@pytest.mark.parametrize(
    "entry", CORPUS_ENTRIES,
    ids=[e["case"]["scenario"] for e in CORPUS_ENTRIES],
)
def test_committed_corpus_cases_are_engine_identical(entry):
    case = FuzzCase.from_dict(entry["case"])
    _assert_engine_identity(_spec_for(case.scenario), case)


@pytest.mark.parametrize("name,seed", SMOKE_TARGETS, ids=[t[0] for t in SMOKE_TARGETS])
def test_generated_cases_are_engine_identical(name, seed):
    spec = get_scenario(name)
    generator = SequenceGenerator(spec, seed)
    for _ in range(4):
        _assert_engine_identity(spec, generator.generate(8))
