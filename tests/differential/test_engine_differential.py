"""Differential harness for the vectorized batch engine.

The vector engine's contract is *fingerprint identity*: for every registered
scenario — flat segments and bridged-segment fabrics alike — draining the
workload through the batch engine must produce exactly the observables the
object path produces: same alert stream (cycle, firewall, master, violation,
address — in order), same event and cycle counts, same memory images, same
firewall verdict counters, same bridge containment/posted-failure statistics,
same reaction log.  Platforms the engine cannot mirror (payload-recording
sinks, custom ports) must *decline* with a recorded reason and leave the
object path to run, never approximate.
"""

from __future__ import annotations

import pytest

from repro.api.events import EventBus, InMemorySink, StatsSink, attach_instrumentation
from repro.scenarios import registry
from repro.scenarios.builder import ScenarioBuilder
from repro.scenarios.differential import _variant_fingerprint, diff_fingerprints

ALL_SCENARIOS = registry.list_scenarios()

#: Scenarios on a bridged-segment fabric: the engine must engage *and*
#: report the fabric shape it mirrored.
FABRIC_SCENARIOS = {
    "two_segment_dma_isolation",
    "bridge_firewalled_centralized",
    "deep_hierarchy_3seg",
    "cross_segment_attack_storm",
    "secure_boot_bay",
}


def _fingerprint(spec, protected: bool, engine: str):
    built = ScenarioBuilder(spec).build(protected, _warn=False)
    final = built.run_workload(engine=engine)
    return _variant_fingerprint(built, final), built.engine_report


@pytest.mark.parametrize("protected", [True, False], ids=["protected", "unprotected"])
@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_vector_engine_is_fingerprint_identical(name, protected):
    spec = registry.get_scenario(name)
    fp_object, _ = _fingerprint(spec, protected, "object")
    fp_vector, report = _fingerprint(spec, protected, "vector")

    diffs = diff_fingerprints(fp_object, fp_vector)
    assert not diffs, (
        f"{name} (protected={protected}) diverged under the vector engine:\n  "
        + "\n  ".join(diffs)
    )

    assert report is not None, "vector runs must leave an engine report"
    assert report.requested == "vector"
    # Every registered scenario runs natively — no run-level fallbacks left.
    assert report.used == "vector", report.fallback_reason
    assert report.fallback_reason is None
    assert report.events > 0
    assert len(report.batches) > 0
    if name in FABRIC_SCENARIOS:
        fabric = report.extra.get("fabric")
        assert fabric is not None, "fabric runs must report their shape"
        assert fabric["segments"] >= 2
        assert fabric["bridges"] >= 1
    else:
        assert "fabric" not in report.extra


def test_registry_covers_both_fabric_shapes():
    """The identity claim is only meaningful if the registry exercises both
    flat segments and bridged fabrics through the engaged path."""
    names = set(ALL_SCENARIOS)
    assert FABRIC_SCENARIOS <= names
    assert names - FABRIC_SCENARIOS, "expected at least one flat scenario"


def test_auto_mode_engages_on_hierarchical_fabrics():
    spec = registry.get_scenario("deep_hierarchy_3seg")
    fp_object, _ = _fingerprint(spec, True, "object")
    fp_auto, report = _fingerprint(spec, True, "auto")
    assert not diff_fingerprints(fp_object, fp_auto)
    assert report is not None and report.requested == "auto"
    assert report.used == "vector" and report.fallback_reason is None


@pytest.mark.parametrize("name", sorted(FABRIC_SCENARIOS) + ["attack_heavy"])
def test_counting_instrumentation_is_count_identical(name):
    """A counting-only event bus no longer forces the object path: settled
    batch counts must equal the object path's per-event emission counts."""
    spec = registry.get_scenario(name)

    def run(engine):
        built = ScenarioBuilder(spec).build(True, _warn=False)
        sink = StatsSink()
        attach_instrumentation(built.system, built.security, EventBus([sink]))
        built.run_workload(engine=engine)
        return sink.counts, built.engine_report

    counts_object, _ = run("object")
    counts_vector, report = run("vector")
    assert report.used == "vector", report.fallback_reason
    assert counts_object == counts_vector
    assert counts_object.get("txn.issued", 0) > 0
    assert counts_object.get("sim.run", 0) >= 1


def test_payload_sinks_still_fall_back():
    """Sinks that record full events need the object path's emission order."""
    spec = registry.get_scenario("two_segment_dma_isolation")
    built = ScenarioBuilder(spec).build(True, _warn=False)
    attach_instrumentation(built.system, built.security, EventBus([InMemorySink()]))
    built.run_workload(engine="vector")
    report = built.engine_report
    assert report.used == "object"
    assert "payload sinks" in report.fallback_reason


def test_split_transaction_slaves_still_fall_back():
    """A slave port flying the split-transaction flag is outside the engine's
    mirrored subset: the run must decline with the pinned reason and the
    object path must produce the same observables it always does."""

    def run(engine):
        built = ScenarioBuilder(registry.get_scenario("paper_baseline")).build(
            True, _warn=False
        )
        name = built.system.bus.slave_names[0]
        built.system.bus.slave_port(name).split_transactions = True
        final = built.run_workload(engine=engine)
        return _variant_fingerprint(built, final), built.engine_report, name

    fp_object, _, _ = run("object")
    fp_vector, report, name = run("vector")
    assert report.used == "object"
    assert report.fallback_reason == f"slave endpoint {name} uses split transactions"
    assert not diff_fingerprints(fp_object, fp_vector)


def test_completion_hooks_still_fall_back():
    """Processor completion hooks observe per-transaction ordering the batch
    engine does not replay; the run must decline with the pinned reason and
    stay observationally identical on the object path."""

    def run(engine):
        built = ScenarioBuilder(registry.get_scenario("paper_baseline")).build(
            True, _warn=False
        )
        proc = next(iter(built.system.processors.values()))
        calls = []
        proc.on_finished = lambda p: calls.append((p.name, p.finished_at))
        final = built.run_workload(engine=engine)
        return _variant_fingerprint(built, final), built.engine_report, proc.name, calls

    fp_object, _, _, calls_object = run("object")
    fp_vector, report, name, calls_vector = run("vector")
    assert report.used == "object"
    assert report.fallback_reason == f"processor {name} has a completion hook"
    assert not diff_fingerprints(fp_object, fp_vector)
    assert calls_object and calls_object == calls_vector


def test_replay_actually_happens_on_steady_workloads():
    """The engine must not degenerate into per-transaction real calls: on the
    paper baseline the interned policy tables carry most of the stream."""
    spec = registry.get_scenario("paper_baseline")
    _, report = _fingerprint(spec, True, "vector")
    assert report.used == "vector"
    assert report.replayed > report.real_calls
    assert report.unique_shapes > 0


def test_fabric_replay_engages_on_bridge_chains():
    """Bridge-placed chains must profile/replay too, not fall back to real
    calls per transaction."""
    spec = registry.get_scenario("bridge_firewalled_centralized")
    _, report = _fingerprint(spec, True, "vector")
    assert report.used == "vector"
    assert report.replayed > 0
