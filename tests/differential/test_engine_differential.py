"""Differential harness for the vectorized batch engine.

The vector engine's contract is *fingerprint identity*: for every registered
scenario, draining the workload through the batch engine must produce exactly
the observables the object path produces — same alert stream (cycle, firewall,
master, violation, address — in order), same event and cycle counts, same
memory images, same firewall verdict counters, same reaction log.  Scenarios
the engine cannot mirror (bridged segments, custom ports) must *decline* with
a recorded reason and leave the object path to run, never approximate.
"""

from __future__ import annotations

import pytest

from repro.scenarios import registry
from repro.scenarios.builder import ScenarioBuilder
from repro.scenarios.differential import _variant_fingerprint, diff_fingerprints

ALL_SCENARIOS = registry.list_scenarios()

#: Scenarios on a single flat bus segment: the engine must actually engage.
FLAT_SCENARIOS = {
    "minimal_1x1",
    "paper_baseline",
    "many_master_contention",
    "sparse_protection",
    "dense_protection",
    "reconfiguration_under_load",
    "attack_heavy",
    "crypto_heavy",
    "centralized_baseline_mirror",
}


def _fingerprint(spec, protected: bool, engine: str):
    built = ScenarioBuilder(spec).build(protected, _warn=False)
    final = built.run_workload(engine=engine)
    return _variant_fingerprint(built, final), built.engine_report


@pytest.mark.parametrize("protected", [True, False], ids=["protected", "unprotected"])
@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_vector_engine_is_fingerprint_identical(name, protected):
    spec = registry.get_scenario(name)
    fp_object, _ = _fingerprint(spec, protected, "object")
    fp_vector, report = _fingerprint(spec, protected, "vector")

    diffs = diff_fingerprints(fp_object, fp_vector)
    assert not diffs, (
        f"{name} (protected={protected}) diverged under the vector engine:\n  "
        + "\n  ".join(diffs)
    )

    assert report is not None, "vector runs must leave an engine report"
    assert report.requested == "vector"
    if name in FLAT_SCENARIOS:
        assert report.used == "vector", report.fallback_reason
        assert report.events > 0
        assert len(report.batches) > 0
    else:
        # Hierarchical fabrics are outside the mirrored subset: the engine
        # must decline the whole run with a reason, not approximate it.
        assert report.used == "object"
        assert report.fallback_reason
        assert "hierarchical" in report.fallback_reason


def test_registry_covers_both_fabric_shapes():
    """The identity claim is only meaningful if the registry exercises both
    the engaged path and the declined path."""
    names = set(ALL_SCENARIOS)
    assert FLAT_SCENARIOS <= names
    assert names - FLAT_SCENARIOS, "expected at least one hierarchical scenario"


def test_auto_mode_falls_back_silently_on_hierarchical_fabrics():
    spec = registry.get_scenario("deep_hierarchy_3seg")
    fp_object, _ = _fingerprint(spec, True, "object")
    fp_auto, report = _fingerprint(spec, True, "auto")
    assert not diff_fingerprints(fp_object, fp_auto)
    assert report is not None and report.requested == "auto"
    assert report.used == "object" and report.fallback_reason


def test_replay_actually_happens_on_steady_workloads():
    """The engine must not degenerate into per-transaction real calls: on the
    paper baseline the interned policy tables carry most of the stream."""
    spec = registry.get_scenario("paper_baseline")
    _, report = _fingerprint(spec, True, "vector")
    assert report.used == "vector"
    assert report.replayed > report.real_calls
    assert report.unique_shapes > 0
