"""Fabric property tests: cross-bridge batches vs. reconfigurations and the
posted-write buffer.

Two hazards are unique to the bridged-segment mirror:

* a mid-stream reconfiguration can land while cross-bridge transactions are
  split across both segments' arbitration queues and the bridge FIFO — the
  engine's interned verdict tables must invalidate at the exact cycle on
  *every* chain the stream crosses (master, bridge, remote slave), or the
  tail of the stream is judged by stale rules on one hop;
* the bounded posted-write buffer changes *scheduling shape* under load:
  writes that miss the buffer fall back to non-posted forwarding (stalling
  the issuer), later transactions queue behind pending posted clones, and a
  clone denied downstream after its ack surfaces as a posted-write failure.
  The mirror must reproduce the exact admission order, fallback ordering and
  failure statistics.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.core.local_firewall import LocalFirewall
from repro.core.policy import ConfigurationMemory, ReadWriteAccess, SecurityPolicy
from repro.engine import drive_workload
from repro.scenarios import registry
from repro.scenarios.builder import ScenarioBuilder
from repro.scenarios.differential import _variant_fingerprint, diff_fingerprints
from repro.scenarios.spec import ReconfigSpec
from repro.soc.fabric import InterconnectFabric
from repro.soc.kernel import Simulator
from repro.soc.memory import BlockRAM
from repro.soc.processor import MemoryOperation, ProcessorProgram
from repro.soc.system import SoCConfig, SoCSystem
from repro.soc.transaction import TransactionStatus

_BRAM_BASE = 0x0000_0000
_DDR_BASE = 0x9000_0000


def _randomized_fabric_spec(seed: int):
    """two_segment_dma_isolation with shuffled workload and reconfig draws.

    Both reconfigured rules cover *cross-bridge* regions: ``lf_cpu1`` guards
    cpu1 (seg_cpu) whose DDR accesses cross the posted bridge, and ``lf_dma``
    guards the DMA (seg_io) whose BRAM accesses cross it the other way.
    """
    rng = random.Random(0xFAB ^ (seed * 6151))
    base = registry.get_scenario("two_segment_dma_isolation")
    workload = replace(
        base.workload,
        n_operations=rng.choice([25, 40, 80, 120]),
        external_share=rng.choice([0.3, 0.5, 0.8]),
        write_fraction=rng.choice([0.3, 0.5, 0.7]),
        compute_burst_cycles=rng.choice([0, 4, 9]),
        seed=rng.randrange(1, 10_000),
        stagger=rng.choice([1, 3, 7]),
    )
    reconfigs = (
        ReconfigSpec(
            at_cycle=rng.randrange(1, 5000), firewall="lf_cpu1",
            rule_base=_DDR_BASE,
            action=rng.choice(["make_readonly", "remove_rule"]),
        ),
        ReconfigSpec(
            at_cycle=rng.randrange(1, 5000), firewall="lf_dma",
            rule_base=_BRAM_BASE,
            action=rng.choice(["make_readonly", "remove_rule"]),
        ),
    )
    return replace(base, workload=workload, reconfigs=reconfigs)


def _run(spec, engine: str):
    built = ScenarioBuilder(spec).build(True, _warn=False)
    final = built.run_workload(engine=engine)
    return _variant_fingerprint(built, final), built.engine_report


@pytest.mark.parametrize("seed", range(8))
def test_cross_bridge_reconfiguration_interleaving_matches_object_path(seed):
    spec = _randomized_fabric_spec(seed)
    fp_object, _ = _run(spec, "object")
    fp_vector, report = _run(spec, "vector")

    assert report is not None and report.used == "vector", report.fallback_reason

    assert fp_vector["alerts"] == fp_object["alerts"]
    diffs = diff_fingerprints(fp_object, fp_vector)
    assert not diffs, (
        f"seed {seed} diverged (reconfigs at "
        f"{[e.at_cycle for e in spec.reconfigs]}):\n  " + "\n  ".join(diffs)
    )


# ---------------------------------------------------------------------------
# Posted-write buffer overflow
# ---------------------------------------------------------------------------

_REMOTE_BASE = 0x1000
_RO_BASE = 0x1800  # read-only window on the remote BRAM: writes die downstream


def _posted_overflow_platform() -> SoCSystem:
    """One CPU behind a depth-1 posted bridge, remote BRAM half read-only.

    Buffer depth 1 with a slow downstream leg forces every shape the satellite
    asks for: posted admissions, posted stalls (non-posted fallback), reads
    ordered behind pending clones, and clones denied *after* their ack by the
    slave-side firewall (posted-write failures).
    """
    sim = Simulator()
    fabric = InterconnectFabric(sim)
    fabric.add_segment("seg0")
    fabric.add_segment("seg1")
    fabric.add_bridge("br0", "seg0", "seg1", forward_latency=3,
                      posted_writes=True, buffer_depth=1)
    fabric.add_region("bram0", 0x0000, 0x1000, slave="bram0", segment="seg0")
    fabric.add_region("bram1", _REMOTE_BASE, 0x1000, slave="bram1", segment="seg1")
    fabric.finalize()

    system = SoCSystem(sim, fabric, SoCConfig(n_processors=1, with_dma=False))
    system.add_memory(BlockRAM(sim, "bram0", base=0x0000, size=0x1000), segment="seg0")
    remote = system.add_memory(
        BlockRAM(sim, "bram1", base=_REMOTE_BASE, size=0x1000), segment="seg1"
    )
    memory = ConfigurationMemory("cfg_bram1", capacity=4)
    memory.add(_REMOTE_BASE, 0x800, SecurityPolicy(spi=1), label="rw_half")
    memory.add(_RO_BASE, 0x800, SecurityPolicy(spi=2, rwa=ReadWriteAccess.READ_ONLY),
               label="ro_half")
    remote.attach_filter(LocalFirewall(sim, "lf_bram1", memory))

    cpu = system.add_processor("cpu0", segment="seg0")
    ops = []
    # Deterministic prefix: each read-only-half write finds the buffer empty,
    # posts, is acknowledged — and its clone is then denied downstream (the
    # posted-write hazard).  The compute gap lets the buffer drain so every
    # prefix write is admitted as posted rather than ordered.
    for i in range(3):
        ops.append(MemoryOperation.write(_RO_BASE + 0x100 * i, b"\xa5" * 4))
        ops.append(MemoryOperation.compute(300))
    rng = random.Random(20110)
    for i in range(30):
        payload = bytes([i & 0xFF] * 4)
        roll = rng.random()
        if roll < 0.5:
            # Writable half: posts while the buffer has room, stalls after.
            ops.append(MemoryOperation.write(_REMOTE_BASE + 8 * i, payload))
        elif roll < 0.7:
            # Read-only half: the ack lands, then the clone dies downstream.
            ops.append(MemoryOperation.write(_RO_BASE + 8 * i, payload))
        else:
            # Reads must queue behind pending posted clones, never overtake.
            ops.append(MemoryOperation.read(_REMOTE_BASE + 8 * i))
    cpu.load_program(ProcessorProgram(operations=ops, name="posted_storm"))
    return system


def _run_posted_overflow(engine: str):
    system = _posted_overflow_platform()
    system.start_all()
    report = None
    if engine == "vector":
        final, report = drive_workload(system, requested="vector")
        assert final is not None, report.fallback_reason
    else:
        final = system.run()
    cpu = system.processors["cpu0"]
    bridge = system.bus.bridges["br0"]
    observables = {
        "final": final,
        "events": system.sim.events_processed,
        "bridge": dict(bridge.stats),
        "statuses": [t.status for t in cpu.transactions],
        "blocked": [
            (t.address, t.status, t.annotations.get("block_reason"))
            for t in cpu.blocked_transactions
        ],
        "cpu": dict(cpu.stats),
        "port": dict(cpu.port.stats),
        "segments": {
            name: dict(seg.stats) for name, seg in system.bus.segments.items()
        },
        "memory": system.memories["bram1"].peek(_REMOTE_BASE, 0x1000),
    }
    return observables, report


def test_posted_buffer_overflow_vector_matches_object():
    obj, _ = _run_posted_overflow("object")
    vec, report = _run_posted_overflow("vector")

    # The scenario must actually exercise every posted-path shape.
    stats = obj["bridge"]
    assert stats["posted_writes"] > 0
    assert stats["posted_stalls"] > 0, "buffer never overflowed"
    assert stats["ordered_behind_posted"] > 0
    assert stats["posted_write_failures"] > 0, "no clone was denied downstream"
    assert stats["posted_completed"] == stats["posted_writes"]

    assert report is not None and report.used == "vector"
    assert vec == obj

    # Non-posted fallback ordering: denied writes that missed the buffer (and
    # denied clones' origins) terminate in program order at the master.
    blocked_addresses = [addr for addr, _, _ in obj["blocked"]]
    assert all(addr >= _RO_BASE for addr in blocked_addresses)
    assert any(s is TransactionStatus.BLOCKED_AT_SLAVE for s in obj["statuses"])
