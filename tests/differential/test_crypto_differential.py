"""Seeded randomized differential tests for the dual crypto implementations.

Complements the scenario-level harness with direct, randomized checks:

* AES-128: the T-table fast path vs. the byte-wise FIPS-197 reference, over
  random keys and blocks, both directions, plus the global backend switch;
* SHA-256: the hashlib backend vs. the from-scratch implementation, over
  random lengths straddling every Merkle–Damgård padding boundary;
* CTR mode: LRU-cached vs. uncached keystreams at and around the cache-limit
  boundary, where eviction starts.
"""

from __future__ import annotations

import random

from repro.crypto.aes import AES128
from repro.crypto.aes import fast_backend_enabled as aes_fast_enabled
from repro.crypto.aes import use_reference_backend as aes_use_reference
from repro.crypto.modes import CTRMode
from repro.crypto.sha256 import SHA256, sha256
from repro.crypto.sha256 import use_reference_backend as sha_use_reference


class TestAESDifferential:
    def test_random_keys_and_blocks_both_directions(self):
        rng = random.Random(0xD1FF_AE5)
        for _ in range(200):
            key = rng.randbytes(16)
            block = rng.randbytes(16)
            cipher = AES128(key)
            assert cipher.encrypt_block(block) == cipher.encrypt_block_reference(block)
            assert cipher.decrypt_block(block) == cipher.decrypt_block_reference(block)

    def test_backend_switch_routes_block_calls_to_the_reference(self):
        rng = random.Random(0xAE5_0002)
        cipher = AES128(rng.randbytes(16))
        block = rng.randbytes(16)
        fast = cipher.encrypt_block(block)
        aes_use_reference(True)
        try:
            assert not aes_fast_enabled()
            # Same call site, reference rounds, identical bytes.
            assert cipher.encrypt_block(block) == fast
            assert cipher.decrypt_block(fast) == block
        finally:
            aes_use_reference(False)
        assert aes_fast_enabled()
        assert cipher.encrypt_block(block) == fast

    def test_roundtrip_across_mixed_backends(self):
        rng = random.Random(0xAE5_0003)
        for _ in range(20):
            key = rng.randbytes(16)
            block = rng.randbytes(16)
            cipher = AES128(key)
            ciphertext = cipher.encrypt_block(block)
            aes_use_reference(True)
            try:
                assert cipher.decrypt_block(ciphertext) == block
            finally:
                aes_use_reference(False)


class TestSha256Differential:
    # Lengths straddling the padding boundaries (55/56, 63/64) plus a spread
    # of random multi-block sizes.
    BOUNDARY_LENGTHS = (0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129)

    def test_random_messages_across_padding_boundaries(self):
        rng = random.Random(0x5AA5)
        lengths = list(self.BOUNDARY_LENGTHS) + [rng.randrange(1, 4096) for _ in range(30)]
        for length in lengths:
            data = rng.randbytes(length)
            fast = sha256(data)
            sha_use_reference(True)
            try:
                assert sha256(data) == fast
            finally:
                sha_use_reference(False)
            assert SHA256(data).digest() == fast

    def test_incremental_updates_match_one_shot(self):
        rng = random.Random(0x5AA6)
        for _ in range(20):
            chunks = [rng.randbytes(rng.randrange(0, 200)) for _ in range(rng.randrange(1, 8))]
            data = b"".join(chunks)
            hasher = SHA256()
            for chunk in chunks:
                hasher.update(chunk)
            assert hasher.digest() == sha256(data)


class TestCTRKeystreamDifferential:
    def test_random_payloads_cached_vs_uncached(self):
        rng = random.Random(0xC7C7)
        key = rng.randbytes(16)
        cached = CTRMode(AES128(key), cache_blocks=True)
        uncached = CTRMode(AES128(key), cache_blocks=False)
        for _ in range(50):
            nonce = rng.randbytes(8)
            payload = rng.randbytes(rng.randrange(1, 300))
            counter = rng.randrange(0, 1 << 32)
            assert cached.encrypt(payload, nonce, counter) == uncached.encrypt(
                payload, nonce, counter
            )
        assert cached.cache_hits + cached.cache_misses > 0
        assert uncached.cache_hits == uncached.cache_misses == 0

    def test_streams_identical_across_the_lru_eviction_boundary(self):
        """Walk the counter straight through CACHE_LIMIT distinct blocks, then
        revisit early counters (already evicted) — bytes must still match the
        uncached reference on both sides of the boundary."""
        key = bytes(range(16))
        cached = CTRMode(AES128(key), cache_blocks=True)
        uncached = CTRMode(AES128(key), cache_blocks=False)
        nonce = b"\xa5" * 8
        limit = CTRMode.CACHE_LIMIT

        for counter in (0, 1, limit - 1, limit, limit + 1, limit + 7):
            assert cached.keystream(nonce, 16, initial_counter=counter) == uncached.keystream(
                nonce, 16, initial_counter=counter
            )

        # Fill past the limit so early entries are evicted...
        span = cached.keystream(nonce, 16 * (limit + 16), initial_counter=0)
        assert len(cached._keystream_cache) <= limit
        # ...then revisit the evicted head: recomputed, still identical.
        head = cached.keystream(nonce, 16, initial_counter=0)
        assert head == uncached.keystream(nonce, 16, initial_counter=0)
        assert span[:16] == head

    def test_boundary_payload_sizes_around_block_edges(self):
        key = b"\x42" * 16
        cached = CTRMode(AES128(key))
        uncached = CTRMode(AES128(key), cache_blocks=False)
        nonce = b"\x00" * 8
        rng = random.Random(7)
        for size in (1, 15, 16, 17, 31, 32, 33, 255, 256, 257):
            payload = rng.randbytes(size)
            assert cached.encrypt(payload, nonce) == uncached.encrypt(payload, nonce)
            assert cached.decrypt(cached.encrypt(payload, nonce), nonce) == payload
