"""Mid-stream reconfiguration must invalidate every memoised verdict.

The Configuration Memory's ``generation`` counter is the single invalidation
signal for the Security Builder decision cache and the LCF's region memo.
These regressions drive live traffic through a secured platform, rewrite the
Configuration Memory mid-stream, and assert the *very next* transaction is
judged by the new rule — on cached and uncached builds alike.
"""

from __future__ import annotations

from repro.core.policy import ReadWriteAccess
from repro.core.secure import SecurityConfiguration, secure_platform
from repro.soc.system import build_reference_platform
from repro.soc.transaction import BusOperation, BusTransaction, TransactionStatus


def _secured():
    system = build_reference_platform()
    security = secure_platform(
        system,
        SecurityConfiguration(ddr_secure_size=1024, ddr_cipher_only_size=1024),
    )
    return system, security


def _issue_write(system, master: str, address: int) -> BusTransaction:
    txn = BusTransaction(
        master=master, operation=BusOperation.WRITE, address=address,
        width=4, data=b"\x11\x22\x33\x44",
    )
    port = system.master_ports[master]
    port.issue(txn, lambda _t: None)
    system.run()
    return txn


class TestGenerationCounterInvalidation:
    def test_master_firewall_sees_new_rule_on_next_transaction(self):
        system, security = _secured()
        firewall = security.master_firewalls["cpu0"]
        memory = firewall.config_memory
        bram_base = system.config.bram_base

        # Warm the decision cache with an allowed write.
        assert _issue_write(system, "cpu0", bram_base).status is TransactionStatus.COMPLETED
        assert _issue_write(system, "cpu0", bram_base).status is TransactionStatus.COMPLETED
        assert firewall.security_builder.cache_hits >= 1

        # Mid-stream reconfiguration: the BRAM window becomes read-only.
        generation_before = memory.generation
        rule = next(r for r in memory.rules if r.base == bram_base)
        assert security.manager.reconfigure_policy(
            "lf_cpu0", bram_base, rule.policy.with_updates(rwa=ReadWriteAccess.READ_ONLY)
        )
        assert memory.generation == generation_before + 1

        # The very next transaction must be judged by the new rule.
        blocked = _issue_write(system, "cpu0", bram_base)
        assert blocked.status is TransactionStatus.BLOCKED_AT_MASTER
        alerts = security.monitor.alerts
        assert alerts and alerts[-1].violation.value == "unauthorized_write"

    def test_rule_removal_reverts_to_default_deny_immediately(self):
        system, security = _secured()
        firewall = security.master_firewalls["cpu1"]
        memory = firewall.config_memory
        ddr_base = system.config.ddr_base

        assert _issue_write(system, "cpu1", ddr_base + 0x4000).status is TransactionStatus.COMPLETED
        generation_before = memory.generation
        assert memory.remove(ddr_base)
        assert memory.generation == generation_before + 1

        blocked = _issue_write(system, "cpu1", ddr_base + 0x4000)
        assert blocked.status is TransactionStatus.BLOCKED_AT_MASTER
        assert security.monitor.alerts[-1].violation.value == "policy_miss"

    def test_lcf_region_memo_tracks_generation(self):
        system, security = _secured()
        lcf = security.ciphering_firewall
        ddr_base = system.config.ddr_base

        # Warm the region memo through a protected write (request + response
        # paths both consult region_for).
        assert _issue_write(system, "cpu0", ddr_base).status is TransactionStatus.COMPLETED
        assert lcf.region_for(ddr_base, 4) is not None
        generation = lcf.config_memory.generation
        assert lcf._region_cache_generation == generation

        # Any rule change must drop the memo on the next lookup.
        plain_rule = next(r for r in lcf.config_memory.rules if r.label == "ddr_plain")
        assert lcf.config_memory.remove(plain_rule.base)
        assert lcf.region_for(ddr_base, 4) is not None  # still protected
        assert lcf._region_cache_generation == lcf.config_memory.generation
        assert lcf._region_cache_generation != generation

    def test_cached_and_uncached_builds_agree_across_reconfiguration(self):
        """End-to-end: the same traffic + mid-stream reconfiguration produces
        identical statuses and alert streams with decision caches on and off."""
        outcomes = []
        for cache_decisions in (True, False):
            system, security = _secured()
            for firewall in security.all_firewalls:
                firewall.security_builder.cache_enabled = (
                    cache_decisions and firewall.security_builder.cache_enabled
                )
            bram_base = system.config.bram_base
            statuses = [
                _issue_write(system, "cpu0", bram_base).status.value,
                _issue_write(system, "cpu0", bram_base + 8).status.value,
            ]
            rule = next(r for r in security.master_firewalls["cpu0"].config_memory.rules
                        if r.base == bram_base)
            security.manager.reconfigure_policy(
                "lf_cpu0", bram_base, rule.policy.with_updates(rwa=ReadWriteAccess.READ_ONLY)
            )
            statuses.append(_issue_write(system, "cpu0", bram_base).status.value)
            alerts = [
                (a.cycle, a.firewall, a.violation.value, a.address)
                for a in security.monitor.alerts
            ]
            outcomes.append((statuses, alerts))
        assert outcomes[0] == outcomes[1]
