"""Golden-model differential harness over the whole scenario registry.

Every registered scenario runs twice — fast paths enabled (the default) and
reference paths forced (:func:`repro.scenarios.reference_mode`) — and the two
structural fingerprints must match exactly: same alert streams, same cycle
counts, same raw memory images (i.e. same ciphertexts in the protected
external memory), same firewall verdict counters and same per-attack
outcomes, on both the protected and the unprotected builds.
"""

from __future__ import annotations

import pytest

from repro.crypto.aes import fast_backend_enabled as aes_fast_enabled
from repro.crypto.sha256 import fast_backend_enabled as sha_fast_enabled
from repro.scenarios import (
    assert_equivalent,
    differential_pair,
    get_scenario,
    list_scenarios,
    reference_mode,
    run_scenario,
)

ALL_SCENARIOS = list_scenarios()


def test_registry_holds_canonical_scenarios():
    assert len(ALL_SCENARIOS) >= 8
    for expected in (
        "minimal_1x1",
        "paper_baseline",
        "many_master_contention",
        "sparse_protection",
        "dense_protection",
        "reconfiguration_under_load",
        "attack_heavy",
        "crypto_heavy",
        "centralized_baseline_mirror",
    ):
        assert expected in ALL_SCENARIOS


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_fast_and_reference_runs_are_identical(name):
    fast, reference = differential_pair(lambda: get_scenario(name))
    assert_equivalent(fast, reference)


def test_reference_mode_restores_fast_paths():
    assert aes_fast_enabled() and sha_fast_enabled()
    with reference_mode():
        assert not aes_fast_enabled() and not sha_fast_enabled()
    assert aes_fast_enabled() and sha_fast_enabled()


def test_fingerprint_covers_the_interesting_observables():
    fingerprint = run_scenario(get_scenario("minimal_1x1"))
    protected = fingerprint["protected"]
    assert protected["workload_cycles"] > 0
    assert "bram" in protected["memories"]
    assert protected["firewalls"], "protected run must fingerprint its firewalls"
    assert fingerprint["unprotected"]["firewalls"] == {}
    assert len(protected["attacks"]) == 1


def test_reconfiguration_scenario_alerts_only_after_the_swap():
    """The reconfiguration-under-load scenario must produce alerts, all of
    them after the first reconfiguration fires (cycle 600)."""
    fingerprint = run_scenario(get_scenario("reconfiguration_under_load"))
    alerts = fingerprint["protected"]["alerts"]
    assert alerts, "reconfiguration scenario must trip the new read-only rule"
    assert all(cycle >= 600 for cycle, *_ in alerts)
    # The unprotected build has no firewalls, hence no alerts.
    assert fingerprint["unprotected"]["alerts"] == []
