"""Property test: batch boundaries versus mid-stream reconfigurations.

The vector engine replays interned policy-decision profiles; a mid-stream
reconfiguration (rule flip or removal) must invalidate those tables at the
exact cycle the object path's decision caches miss, so the *tail* of the
stream is judged by the new rules and every alert lands at the same cycle in
the same order.  This test sweeps seeded random placements of the
reconfiguration cycles against random workload sizes — moving the swap point
across batch rows, compute bursts and arbitration boundaries — and requires
fingerprint identity (alert ordering included) on every draw.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.scenarios import registry
from repro.scenarios.builder import ScenarioBuilder
from repro.scenarios.differential import _variant_fingerprint, diff_fingerprints


def _randomized_spec(seed: int):
    rng = random.Random(0x5EED ^ (seed * 7919))
    base = registry.get_scenario("reconfiguration_under_load")
    workload = replace(
        base.workload,
        n_operations=rng.choice([23, 40, 77, 120, 150]),
        write_fraction=rng.choice([0.3, 0.5, 0.7]),
        compute_burst_cycles=rng.choice([0, 5, 10]),
        seed=rng.randrange(1, 10_000),
        stagger=rng.choice([1, 3, 7, 13]),
    )
    # Shuffle the swap points across the run (including very early and very
    # late cycles, so some draws reconfigure before the first grant and some
    # after the last batch row retires).
    reconfigs = tuple(
        replace(event, at_cycle=rng.randrange(1, 6000)) for event in base.reconfigs
    )
    return replace(base, workload=workload, reconfigs=reconfigs)


def _run(spec, engine: str):
    built = ScenarioBuilder(spec).build(True, _warn=False)
    final = built.run_workload(engine=engine)
    return _variant_fingerprint(built, final), built.engine_report


@pytest.mark.parametrize("seed", range(8))
def test_reconfiguration_interleaving_matches_object_path(seed):
    spec = _randomized_spec(seed)
    fp_object, _ = _run(spec, "object")
    fp_vector, report = _run(spec, "vector")

    # The property is only exercised if the engine actually engaged.
    assert report is not None and report.used == "vector", report.fallback_reason

    # Alert stream first (the sharpest observable: cycle, firewall, master,
    # violation, address — in emission order), then the full fingerprint.
    assert fp_vector["alerts"] == fp_object["alerts"]
    diffs = diff_fingerprints(fp_object, fp_vector)
    assert not diffs, (
        f"seed {seed} diverged (reconfigs at "
        f"{[e.at_cycle for e in spec.reconfigs]}):\n  " + "\n  ".join(diffs)
    )
