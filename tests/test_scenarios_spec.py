"""Unit tests for the declarative scenario layer (spec validation + builder).

The differential suite exercises whole scenarios end to end; these tests pin
the contract of the declarative layer itself: validation rejects malformed
topologies, the builder derives the right plan from a spec, and the registry
hands out fresh specs.
"""

from __future__ import annotations

import pytest

from repro.core.secure import SecuredPlatform
from repro.scenarios import (
    AttackSpec,
    MasterSpec,
    ScenarioBuilder,
    ScenarioSpec,
    SlaveSpec,
    TopologySpec,
    WindowSpec,
    WorkloadSpec,
    get_scenario,
    instantiate_attacks,
    list_scenarios,
)


def _tiny_topology(**scenario_kwargs) -> ScenarioSpec:
    return ScenarioSpec(
        name="tiny",
        description="test",
        topology=TopologySpec(
            masters=(MasterSpec("cpu0"),),
            slaves=(SlaveSpec("bram", "bram", base=0x0, size=4096),),
        ),
        **scenario_kwargs,
    )


class TestSpecValidation:
    def test_window_rejects_unknown_protection_and_bad_size(self):
        with pytest.raises(ValueError):
            WindowSpec("fortified", 1024)
        with pytest.raises(ValueError):
            WindowSpec("secure", 0)

    def test_slave_rejects_unknown_kind_and_oversized_windows(self):
        with pytest.raises(ValueError):
            SlaveSpec("x", "flash", base=0, size=1024)
        with pytest.raises(ValueError):
            SlaveSpec("ddr", "ddr", base=0, size=1024,
                      windows=(WindowSpec("secure", 2048),))
        with pytest.raises(ValueError):
            SlaveSpec("bram", "bram", base=0, size=1024,
                      windows=(WindowSpec("secure", 512),))

    def test_ip_slave_size_derived_from_registers(self):
        ip = SlaveSpec("ip0", "ip", base=0x4000_0000, n_registers=16)
        assert ip.size == 64
        assert ip.region_name == "ip0_regs"

    def test_topology_rejects_duplicates_overlaps_and_no_cpu(self):
        with pytest.raises(ValueError, match="unique"):
            TopologySpec(
                masters=(MasterSpec("cpu0"), MasterSpec("cpu0")),
                slaves=(SlaveSpec("bram", "bram", base=0, size=1024),),
            ).validate()
        with pytest.raises(ValueError, match="overlap"):
            TopologySpec(
                masters=(MasterSpec("cpu0"),),
                slaves=(
                    SlaveSpec("bram", "bram", base=0, size=4096),
                    SlaveSpec("bram1", "bram", base=2048, size=4096),
                ),
            ).validate()
        with pytest.raises(ValueError, match="cpu"):
            TopologySpec(
                masters=(MasterSpec("dma", kind="dma"),),
                slaves=(SlaveSpec("bram", "bram", base=0, size=1024),),
            ).validate()

    def test_master_referencing_unknown_slave_is_rejected(self):
        with pytest.raises(ValueError, match="unknown slave 'brams'"):
            TopologySpec(
                masters=(MasterSpec("cpu0", accessible=("brams",)),),
                slaves=(SlaveSpec("bram", "bram", base=0, size=1024),),
            ).validate()
        with pytest.raises(ValueError, match="unknown slave 'ip9'"):
            TopologySpec(
                masters=(MasterSpec("cpu0", readonly=("ip9",)),),
                slaves=(SlaveSpec("bram", "bram", base=0, size=1024),),
            ).validate()

    def test_reconfig_targeting_unknown_firewall_is_rejected(self):
        from repro.scenarios import ReconfigSpec

        spec = _tiny_topology(
            reconfigs=(ReconfigSpec(at_cycle=10, firewall="lf_cpu9", rule_base=0x0),),
        )
        with pytest.raises(ValueError, match="unknown firewall 'lf_cpu9'"):
            spec.validate()

    def test_scenario_rejects_unknown_enforcement(self):
        spec = _tiny_topology()
        spec.enforcement = "blockchain"
        with pytest.raises(ValueError):
            spec.validate()

    def test_centralized_needs_the_reference_trio(self):
        spec = _tiny_topology(enforcement="centralized")
        with pytest.raises(ValueError, match="centralized"):
            spec.validate()

    def test_master_accessibility(self):
        narrow = MasterSpec("cpu0", accessible=("bram",))
        assert narrow.can_access("bram") and not narrow.can_access("ddr")
        wide = MasterSpec("cpu1")
        assert wide.can_access("anything")


class TestBuilder:
    def test_unknown_attack_kind_is_rejected(self):
        spec = _tiny_topology(attacks=(AttackSpec("rowhammer"),))
        with pytest.raises(ValueError, match="rowhammer"):
            instantiate_attacks(spec)

    def test_readonly_master_gets_readonly_rule(self):
        spec = ScenarioSpec(
            name="ro",
            description="readonly master",
            topology=TopologySpec(
                masters=(MasterSpec("cpu0", readonly=("bram",)),),
                slaves=(SlaveSpec("bram", "bram", base=0x0, size=4096),),
            ),
        )
        built = ScenarioBuilder(spec).build(protected=True)
        assert isinstance(built.security, SecuredPlatform)
        memory = built.security.master_firewalls["cpu0"].config_memory
        (rule,) = memory.rules
        assert not rule.policy.rwa.allows_write()

    def test_readonly_applies_to_ip_slaves_too(self):
        spec = ScenarioSpec(
            name="ro_ip",
            description="read-only IP master",
            topology=TopologySpec(
                masters=(MasterSpec("cpu0", readonly=("ip0",)),),
                slaves=(
                    SlaveSpec("bram", "bram", base=0x0, size=4096),
                    SlaveSpec("ip0", "ip", base=0x4000_0000, n_registers=8),
                ),
            ),
        )
        built = ScenarioBuilder(spec).build(protected=True)
        memory = built.security.master_firewalls["cpu0"].config_memory
        ip_rule = next(r for r in memory.rules if r.label == "ip0_regs")
        assert not ip_rule.policy.rwa.allows_write()
        assert ip_rule.policy.allowed_formats == frozenset({4})

    def test_reconfiguration_with_bad_rule_base_fails_loudly(self):
        from repro.scenarios import ReconfigSpec

        spec = _tiny_topology(
            workload=WorkloadSpec(n_operations=20, external_share=0.0,
                                  ip_share_of_internal=0.0, seed=3),
            reconfigs=(ReconfigSpec(at_cycle=10, firewall="lf_cpu0",
                                    rule_base=0xDEAD), ),
        )
        built = ScenarioBuilder(spec).build(protected=True)
        with pytest.raises(ValueError, match="no rule at 0xdead"):
            built.run_workload()

    def test_inaccessible_slave_has_no_rule(self):
        spec = ScenarioSpec(
            name="fenced",
            description="cpu1 cannot reach the ip",
            topology=TopologySpec(
                masters=(
                    MasterSpec("cpu0"),
                    MasterSpec("cpu1", accessible=("bram",)),
                ),
                slaves=(
                    SlaveSpec("bram", "bram", base=0x0, size=4096),
                    SlaveSpec("ip0", "ip", base=0x4000_0000, n_registers=8),
                ),
            ),
        )
        built = ScenarioBuilder(spec).build(protected=True)
        assert len(built.security.master_firewalls["cpu0"].config_memory) == 2
        assert len(built.security.master_firewalls["cpu1"].config_memory) == 1

    def test_ddr_windows_become_lcf_rules_and_keys(self):
        spec = ScenarioSpec(
            name="windows",
            description="secure + cipher_only + implicit plain",
            topology=TopologySpec(
                masters=(MasterSpec("cpu0"),),
                slaves=(
                    SlaveSpec("ddr", "ddr", base=0x9000_0000, size=8192,
                              windows=(WindowSpec("secure", 1024),
                                       WindowSpec("cipher_only", 1024))),
                ),
            ),
        )
        built = ScenarioBuilder(spec).build(protected=True)
        lcf = built.security.ciphering_firewalls["ddr"]
        labels = [rule.label for rule in lcf.config_memory.rules]
        assert labels == ["ddr_secure", "ddr_cipher_only", "ddr_plain"]
        assert len(lcf.protected_regions) == 2
        # One key per ciphered window, installed and locked.
        assert built.security.key_store.locked

    def test_unprotected_build_has_no_filters(self):
        built = ScenarioBuilder(_tiny_topology()).build(protected=False)
        assert built.security is None
        assert all(not p.filters for p in built.system.master_ports.values())
        assert all(not p.filters for p in built.system.slave_ports.values())

    def test_workload_only_scenario_runs_to_completion(self):
        spec = _tiny_topology(
            workload=WorkloadSpec(n_operations=30, external_share=0.0,
                                  ip_share_of_internal=0.0, seed=5),
        )
        built = ScenarioBuilder(spec).build(protected=True)
        cycles = built.run_workload()
        assert cycles > 0
        assert built.system.all_done()


class TestRegistry:
    def test_get_scenario_returns_fresh_specs(self):
        first = get_scenario("paper_baseline")
        second = get_scenario("paper_baseline")
        assert first is not second

    def test_unknown_scenario_raises_with_candidates(self):
        with pytest.raises(KeyError, match="paper_baseline"):
            get_scenario("nope")

    def test_every_registered_spec_validates(self):
        for name in list_scenarios():
            get_scenario(name).validate()
