"""Experiment façade, result schema, deprecation shims and CLI tests."""

from __future__ import annotations

import json
import warnings

import pytest

from repro import _deprecation
from repro.api import Experiment, ExperimentResult, RESULT_SCHEMA_VERSION
from repro.api.cli import main as cli_main
from repro.attacks.runner import CampaignRunner
from repro.core.secure import (
    SecurityConfiguration,
    secure_platform,
    secure_reference_platform,
)
from repro.scenarios import ScenarioBuilder, get_scenario, list_scenarios
from repro.soc.system import build_reference_platform

#: The stable top-level key set of ``ExperimentResult.to_dict()``.
RESULT_KEYS = {
    "schema_version", "scenario", "description", "protected", "enforcement",
    "placement", "seed", "reference", "workload", "alerts", "reactions",
    "security", "latency", "area", "campaign", "events", "memories", "meta",
}


class TestExperimentPipeline:
    @pytest.mark.parametrize("name", list_scenarios())
    def test_run_works_for_every_registered_scenario(self, name):
        result = Experiment.from_scenario(name).run()
        assert isinstance(result, ExperimentResult)
        assert result.scenario == name
        assert set(result.to_dict()) == RESULT_KEYS
        assert result.workload["final_cycle"] >= 0
        assert result.memories, "memory digests missing"
        spec = get_scenario(name)
        if spec.attacks:
            assert result.campaign["summary"]["attacks"] == len(spec.attacks)
        else:
            assert result.campaign is None
        # JSON-serializable end to end.
        json.loads(result.to_json())

    def test_unprotected_run_has_no_security_sections(self):
        result = Experiment.from_scenario("minimal_1x1").protected(False).run()
        assert result.alerts is None
        assert result.security is None
        assert result.reactions is None
        # The campaign still scores both variants.
        assert result.campaign["summary"]["attacks"] == 1

    def test_with_attacks_overrides_mix(self):
        from repro.scenarios.spec import AttackSpec

        result = (
            Experiment.from_scenario("minimal_1x1")
            .with_attacks(AttackSpec("dos_flood", {"hijacked_master": "cpu0", "n_requests": 30}),
                          AttackSpec("dos_flood", {"hijacked_master": "cpu0", "n_requests": 60}))
            .run()
        )
        assert result.campaign["summary"]["attacks"] == 2

    def test_no_attacks_skips_campaign(self):
        result = Experiment.from_scenario("minimal_1x1").no_attacks().run()
        assert result.campaign is None

    def test_reference_mode_matches_fast_mode(self):
        fast = Experiment.from_scenario("minimal_1x1").run()
        reference = Experiment.from_scenario("minimal_1x1").reference().run()
        assert fast.memories == reference.memories
        assert fast.alerts == reference.alerts
        assert fast.workload["final_cycle"] == reference.workload["final_cycle"]
        assert reference.reference is True

    def test_sharded_campaign_matches_serial(self):
        serial = Experiment.from_scenario("paper_baseline").with_workload(None).run()
        sharded = (
            Experiment.from_scenario("paper_baseline").with_workload(None).campaign(3).run()
        )
        assert serial.campaign["rows"] == sharded.campaign["rows"]
        assert serial.campaign["monitor_totals"] == sharded.campaign["monitor_totals"]

    def test_schema_version_recorded(self):
        result = Experiment.from_scenario("minimal_1x1").no_attacks().run()
        assert result.to_dict()["schema_version"] == RESULT_SCHEMA_VERSION

    def test_scenarios_listing_matches_registry(self):
        assert Experiment.scenarios() == list_scenarios()

    def test_run_experiment_convenience_wrapper(self):
        from repro.api import StatsSink, run_experiment

        sink = StatsSink()
        result = run_experiment("minimal_1x1", seed=7, sinks=[sink])
        assert result.seed == 7
        assert result.events == sink.counts and sink.total() > 0

    def test_top_level_lazy_export(self):
        import repro

        assert repro.Experiment is Experiment
        with pytest.raises(AttributeError):
            repro.does_not_exist


class TestEngineSelection:
    """`with_engine` threads the batch engine through the façade: results are
    identical to the object path, and the meta block records what ran."""

    def test_vector_engine_result_matches_object_path(self):
        from repro.sweep.store import canonical_result

        def scrubbed(mode):
            result = (
                Experiment.from_scenario("minimal_1x1").with_engine(mode).run()
            )
            payload = canonical_result(result.to_dict())
            payload["meta"] = None  # provenance (incl. engine report) differs
            return payload, result.meta["engine"]

        obj, obj_engine = scrubbed("object")
        vec, vec_engine = scrubbed("vector")
        assert obj == vec
        assert obj_engine["used"] == "object"
        assert vec_engine["used"] == "vector"
        assert vec_engine["replayed"] is not None

    def test_auto_engine_engages_on_hierarchical_fabrics(self):
        result = (
            Experiment.from_scenario("deep_hierarchy_3seg")
            .no_attacks()
            .with_engine("auto")
            .run()
        )
        engine = result.meta["engine"]
        assert engine["requested"] == "auto"
        assert engine["used"] == "vector"
        assert engine["fallback_reason"] is None
        assert engine["extra"]["fabric"] == {"segments": 3, "bridges": 2}

    def test_render_experiment_surfaces_engine_and_fallback(self):
        from repro.analysis.report import render_experiment

        result = (
            Experiment.from_scenario("minimal_1x1")
            .no_attacks()
            .with_engine("vector")
            .run()
        )
        payload = result.to_dict()
        assert "engine     : vector (requested vector)" in render_experiment(payload)

        payload["meta"]["engine"] = {
            "requested": "vector",
            "used": "object",
            "fallback_reason": "instrumentation event bus with payload sinks attached",
        }
        rendered = render_experiment(payload)
        assert "engine     : object (requested vector)" in rendered
        assert "fell back: instrumentation event bus" in rendered

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            Experiment.from_scenario("minimal_1x1").with_engine("warp")

    def test_cli_engine_flag_reaches_the_meta_block(self, capsys):
        assert cli_main(
            ["run", "minimal_1x1", "--no-attacks", "--engine", "vector", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["engine"]["used"] == "vector"


class TestSummaryPlacement:
    """SecuredPlatform.summary() must cover bridge firewalls and placement."""

    def test_summary_includes_bridge_firewalls_and_placement(self):
        built = Experiment.from_spec(get_scenario("deep_hierarchy_3seg")).build()
        summary = built.security.summary()
        assert summary["placement"] == "both"
        assert summary["bridge_firewalls"] == ["br01", "br12"]
        assert summary["firewall_counts"]["bridge"] == 2
        # Bridge firewalls appear in the per-firewall breakdown too.
        assert {"lf_br01", "lf_br12"} <= set(summary["firewalls"])

    def test_flat_platform_summary_reports_leaf_placement(self):
        system = build_reference_platform()
        security = secure_reference_platform(system, SecurityConfiguration())
        summary = security.summary()
        assert summary["placement"] == "leaf"
        assert summary["bridge_firewalls"] == []
        assert summary["firewall_counts"]["bridge"] == 0
        assert summary["firewall_counts"]["master"] == len(system.master_ports)

    def test_experiment_result_surfaces_same_fields(self):
        result = Experiment.from_scenario("deep_hierarchy_3seg").no_attacks().run()
        assert result.placement == "both"
        assert result.security["placement"] == "both"
        assert result.security["bridge_firewalls"] == ["br01", "br12"]
        split = {row["placement"]: row for row in result.latency["placement_split"]}
        assert split["bridge"]["firewalls"] == 2
        assert split["leaf_master"]["evaluations"] > 0


class TestDeprecationShims:
    def _catch(self):
        ctx = warnings.catch_warnings(record=True)
        caught = ctx.__enter__()
        warnings.simplefilter("always")
        return ctx, caught

    def test_secure_platform_warns_once_and_matches_new_path(self):
        _deprecation.reset()
        ctx, caught = self._catch()
        try:
            old_system = build_reference_platform()
            old_security = secure_platform(old_system, SecurityConfiguration())
            first = [w for w in caught if issubclass(w.category, DeprecationWarning)]
            assert len(first) == 1 and "secure_platform" in str(first[0].message)

            # Second call: silent (once per process).
            secure_platform(build_reference_platform(), SecurityConfiguration())
            assert len([w for w in caught if issubclass(w.category, DeprecationWarning)]) == 1
        finally:
            ctx.__exit__(None, None, None)

        new_system = build_reference_platform()
        new_security = secure_reference_platform(new_system, SecurityConfiguration())
        assert old_security.summary() == new_security.summary()
        assert [f.name for f in old_security.all_firewalls] == [
            f.name for f in new_security.all_firewalls
        ]

    def test_scenario_builder_build_warns_once_and_matches_facade(self):
        _deprecation.reset()
        spec = get_scenario("minimal_1x1")
        ctx, caught = self._catch()
        try:
            direct = ScenarioBuilder(spec).build()
            relevant = [w for w in caught if issubclass(w.category, DeprecationWarning)]
            assert len(relevant) == 1 and "ScenarioBuilder.build" in str(relevant[0].message)
            ScenarioBuilder(spec).build()
            assert len([w for w in caught if issubclass(w.category, DeprecationWarning)]) == 1
        finally:
            ctx.__exit__(None, None, None)

        facade = Experiment.from_spec(get_scenario("minimal_1x1")).build()
        assert direct.system.describe_topology() == facade.system.describe_topology()
        assert direct.security.summary() == facade.security.summary()

    def test_from_scenario_warns_once_and_matches_facade(self):
        _deprecation.reset()
        ctx, caught = self._catch()
        try:
            old_report = CampaignRunner.from_scenario("minimal_1x1", n_workers=1).run()
            relevant = [w for w in caught if issubclass(w.category, DeprecationWarning)]
            assert len(relevant) == 1 and "from_scenario" in str(relevant[0].message)
            CampaignRunner.from_scenario("minimal_1x1", n_workers=1)
            assert len([w for w in caught if issubclass(w.category, DeprecationWarning)]) == 1
        finally:
            ctx.__exit__(None, None, None)

        new_result = (
            Experiment.from_scenario("minimal_1x1").with_workload(None).campaign(1).run()
        )
        new_rows = new_result.campaign["rows"]
        old_rows = [
            {
                "attack": row.attack,
                "unprotected": row.unprotected.outcome.value,
                "protected": row.protected.outcome.value,
                "detected": "yes" if row.detected else "no",
            }
            for row in old_report.rows
        ]
        assert [
            {k: row[k] for k in ("attack", "unprotected", "protected", "detected")}
            for row in new_rows
        ] == old_rows
        assert old_report.monitor_totals == new_result.campaign["monitor_totals"]


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in list_scenarios():
            assert name in out

    def test_list_json(self, capsys):
        assert cli_main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in payload} == set(list_scenarios())

    def test_run_json_schema(self, capsys):
        assert cli_main(["run", "paper_baseline", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == RESULT_KEYS
        assert payload["scenario"] == "paper_baseline"
        assert payload["campaign"]["summary"]["attacks"] == 7

    def test_run_human_report(self, capsys):
        assert cli_main(["run", "minimal_1x1", "--no-attacks"]) == 0
        out = capsys.readouterr().out
        assert "Experiment: minimal_1x1" in out
        assert "workload" in out

    def test_run_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert cli_main(["run", "minimal_1x1", "--trace", str(trace)]) == 0
        lines = trace.read_text().splitlines()
        assert lines
        json.loads(lines[0])

    def test_campaign(self, capsys):
        assert cli_main(["campaign", "minimal_1x1"]) == 0
        out = capsys.readouterr().out
        assert "dos_flood" in out

    def test_campaign_json(self, capsys):
        assert cli_main(["campaign", "minimal_1x1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["attacks"] == 1
