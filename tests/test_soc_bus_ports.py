"""Tests for ports, filter chains, the system bus and arbitration."""

import pytest

from repro.soc.address_map import AddressMap
from repro.soc.bus import FixedPriorityArbiter, RoundRobinArbiter, SystemBus
from repro.soc.kernel import Simulator
from repro.soc.memory import BlockRAM
from repro.soc.ports import (
    FilterResult,
    MasterPort,
    PassthroughFilter,
    SlavePort,
    TransactionFilter,
)
from repro.soc.transaction import BusOperation, BusTransaction, TransactionStatus


class DenyWritesFilter(TransactionFilter):
    """Test filter denying every write with a fixed latency."""

    name = "deny_writes"

    def __init__(self, latency=5):
        self.latency = latency

    def filter_request(self, txn):
        if txn.is_write:
            return FilterResult.deny("writes forbidden", latency=self.latency, stage=self.name)
        return FilterResult.allow(latency=self.latency, stage=self.name)


class UppercaseDataFilter(TransactionFilter):
    """Test filter transforming write payloads (models the ciphering path)."""

    name = "uppercase"

    def filter_request(self, txn):
        if txn.is_write and txn.data is not None:
            return FilterResult.allow(stage=self.name, transformed_data=txn.data.upper())
        return FilterResult.allow(stage=self.name)


def build_single_master_platform(filters=None, slave_filters=None):
    sim = Simulator()
    amap = AddressMap()
    amap.add_region("mem", 0x0, 0x1000, slave="mem")
    bus = SystemBus(sim, address_map=amap)
    memory = BlockRAM(sim, "mem", base=0x0, size=0x1000)
    slave_port = SlavePort(sim, "mem_port", memory, filters=slave_filters)
    bus.connect_slave(slave_port)
    master_port = MasterPort(sim, "cpu_port", filters=filters)
    bus.connect_master(master_port)
    return sim, bus, memory, master_port, slave_port


def issue_and_run(sim, port, txn):
    results = []
    port.issue(txn, results.append)
    sim.run()
    assert len(results) == 1
    return results[0]


class TestMasterPortFilters:
    def test_unfiltered_write_and_read(self):
        sim, bus, memory, port, _ = build_single_master_platform()
        write = BusTransaction(master="cpu", operation=BusOperation.WRITE,
                               address=0x10, data=b"\x01\x02\x03\x04")
        result = issue_and_run(sim, port, write)
        assert result.status is TransactionStatus.COMPLETED
        assert memory.peek(0x10, 4) == b"\x01\x02\x03\x04"

        read = BusTransaction(master="cpu", operation=BusOperation.READ, address=0x10)
        result = issue_and_run(sim, port, read)
        assert result.data == b"\x01\x02\x03\x04"

    def test_deny_filter_blocks_at_master_and_never_reaches_bus(self):
        sim, bus, memory, port, _ = build_single_master_platform(filters=[DenyWritesFilter()])
        write = BusTransaction(master="cpu", operation=BusOperation.WRITE,
                               address=0x10, data=b"\xff" * 4)
        result = issue_and_run(sim, port, write)
        assert result.status is TransactionStatus.BLOCKED_AT_MASTER
        assert bus.monitor.count() == 0
        assert memory.peek(0x10, 4) == bytes(4)
        assert "writes forbidden" in result.annotations["block_reason"]

    def test_deny_filter_still_allows_reads(self):
        sim, _, memory, port, _ = build_single_master_platform(filters=[DenyWritesFilter()])
        memory.poke(0x20, b"\xaa" * 4)
        read = BusTransaction(master="cpu", operation=BusOperation.READ, address=0x20)
        result = issue_and_run(sim, port, read)
        assert result.status is TransactionStatus.COMPLETED
        assert result.data == b"\xaa" * 4

    def test_filter_latency_is_charged(self):
        sim, _, _, port, _ = build_single_master_platform(filters=[PassthroughFilter(latency=9)])
        read = BusTransaction(master="cpu", operation=BusOperation.READ, address=0x0)
        result = issue_and_run(sim, port, read)
        # Request and response both traverse the filter: 2 x 9 cycles.
        assert result.latency_breakdown["passthrough"] == 18
        assert result.total_latency >= 18

    def test_filter_chain_short_circuits(self):
        counting = PassthroughFilter(latency=1)
        sim, _, _, port, _ = build_single_master_platform(
            filters=[DenyWritesFilter(latency=2), counting]
        )
        write = BusTransaction(master="cpu", operation=BusOperation.WRITE,
                               address=0x0, data=bytes(4))
        result = issue_and_run(sim, port, write)
        assert result.status is TransactionStatus.BLOCKED_AT_MASTER
        # The passthrough stage never ran on the request path.
        assert "passthrough" not in result.latency_breakdown

    def test_master_port_requires_bus(self):
        sim = Simulator()
        port = MasterPort(sim, "orphan")
        txn = BusTransaction(master="x", operation=BusOperation.READ, address=0)
        with pytest.raises(RuntimeError):
            port.issue(txn, lambda t: None)

    def test_stats_counters(self):
        sim, _, _, port, _ = build_single_master_platform(filters=[DenyWritesFilter()])
        issue_and_run(sim, port, BusTransaction(master="cpu", operation=BusOperation.READ, address=0))
        issue_and_run(sim, port, BusTransaction(master="cpu", operation=BusOperation.WRITE,
                                                address=0, data=bytes(4)))
        assert port.stats["issued"] == 2
        assert port.stats["completed"] == 1
        assert port.stats["blocked_requests"] == 1


class TestSlavePortFilters:
    def test_slave_filter_transforms_written_data(self):
        sim, _, memory, port, _ = build_single_master_platform(
            slave_filters=[UppercaseDataFilter()]
        )
        write = BusTransaction(master="cpu", operation=BusOperation.WRITE,
                               address=0x30, data=b"abcd")
        issue_and_run(sim, port, write)
        assert memory.peek(0x30, 4) == b"ABCD"

    def test_slave_filter_deny_blocks_at_slave(self):
        sim, bus, memory, port, _ = build_single_master_platform(
            slave_filters=[DenyWritesFilter()]
        )
        write = BusTransaction(master="cpu", operation=BusOperation.WRITE,
                               address=0x30, data=b"abcd")
        result = issue_and_run(sim, port, write)
        assert result.status is TransactionStatus.BLOCKED_AT_SLAVE
        assert memory.peek(0x30, 4) == bytes(4)
        # The transaction did reach the bus (it was blocked later).
        assert bus.monitor.count() == 1


class TestBusRouting:
    def test_decode_error(self):
        sim, _, _, port, _ = build_single_master_platform()
        bad = BusTransaction(master="cpu", operation=BusOperation.READ, address=0x8000_0000)
        result = issue_and_run(sim, port, bad)
        assert result.status is TransactionStatus.DECODE_ERROR

    def test_monitor_records_master_and_slave(self):
        sim, bus, _, port, _ = build_single_master_platform()
        issue_and_run(sim, port, BusTransaction(master="cpu", operation=BusOperation.READ, address=0x0))
        assert bus.monitor.per_master == {"cpu": 1}
        assert bus.monitor.per_slave == {"mem": 1}
        assert len(bus.monitor.transactions_of("cpu")) == 1

    def test_burst_transfer_cycles(self):
        sim, _, _, port, _ = build_single_master_platform()
        burst = BusTransaction(master="cpu", operation=BusOperation.READ, address=0x0,
                               width=4, burst_length=8)
        result = issue_and_run(sim, port, burst)
        # address phase (1) + 8 data beats.
        assert result.latency_breakdown["bus"] == 9

    def test_duplicate_connections_rejected(self):
        sim, bus, memory, port, slave_port = build_single_master_platform()
        with pytest.raises(ValueError):
            bus.connect_master(port)
        with pytest.raises(ValueError):
            bus.connect_slave(slave_port)


class TestArbitration:
    def build_two_master_platform(self, arbiter):
        sim = Simulator()
        amap = AddressMap()
        amap.add_region("mem", 0x0, 0x1000, slave="mem")
        bus = SystemBus(sim, address_map=amap, arbiter=arbiter)
        memory = BlockRAM(sim, "mem", base=0x0, size=0x1000, read_latency=5)
        bus.connect_slave(SlavePort(sim, "mem_port", memory))
        ports = {}
        for name in ("alpha", "beta"):
            port = MasterPort(sim, f"{name}_port")
            bus.connect_master(port)
            ports[name] = port
        return sim, bus, ports

    def _issue_pair(self, sim, ports, order):
        completions = []
        for name in order:
            txn = BusTransaction(master=name, operation=BusOperation.READ, address=0x0)
            ports[name].issue(txn, lambda t, n=name: completions.append((n, sim.now)))
        sim.run()
        return completions

    def test_round_robin_alternates(self):
        sim, bus, ports = self.build_two_master_platform(RoundRobinArbiter())
        completions = []
        for i in range(4):
            for name in ("alpha", "beta"):
                txn = BusTransaction(master=name, operation=BusOperation.READ, address=0x0)
                ports[name].issue(txn, lambda t, n=name: completions.append(n))
        sim.run()
        assert completions.count("alpha") == 4
        assert completions.count("beta") == 4
        # Round robin interleaves rather than serving one master's whole queue.
        assert completions[:2] in (["alpha", "beta"], ["beta", "alpha"])

    def test_fixed_priority_prefers_listed_master(self):
        arbiter = FixedPriorityArbiter(priority=["alpha", "beta"])
        sim, bus, ports = self.build_two_master_platform(arbiter)
        completions = []
        # Queue three requests from each master before any is served; with
        # fixed priority, every alpha request completes before any beta one
        # (except the very first grant which races the queueing).
        for _ in range(3):
            for name in ("beta", "alpha"):
                txn = BusTransaction(master=name, operation=BusOperation.READ, address=0x0)
                ports[name].issue(txn, lambda t, n=name: completions.append(n))
        sim.run()
        assert len(completions) == 6
        # The last grants must all be beta: alpha drains first under priority.
        assert completions[-2:] == ["beta", "beta"]

    def test_pending_count(self):
        sim, bus, ports = self.build_two_master_platform(RoundRobinArbiter())
        for _ in range(3):
            txn = BusTransaction(master="alpha", operation=BusOperation.READ, address=0x0)
            ports["alpha"].issue(txn, lambda t: None)
        # Before running, requests are queued at the port or bus level.
        sim.run()
        assert bus.pending_count() == 0
        assert bus.stats["granted"] == 3


class TestDecodeCacheLRU:
    """Regression tests for the bounded-LRU decode memo of AddressMap."""

    def _map_with_regions(self, n=4):
        amap = AddressMap()
        for index in range(n):
            amap.add_region(f"r{index}", 0x1000 * index, 0x1000, slave=f"s{index}")
        return amap

    def test_adding_a_region_invalidates_stale_answers(self):
        amap = AddressMap()
        amap.add_region("low", 0x0, 0x1000, slave="old")
        assert amap.decode(0x10).slave == "old"  # now memoised
        amap.add_region("high", 0x1000, 0x1000, slave="new")
        assert amap.decode(0x1010).slave == "new"
        # The memo was dropped on add; the old answer is recomputed, not stale.
        assert amap.decode(0x10).slave == "old"

    def test_remapping_a_region_invalidates_stale_answers(self):
        amap = AddressMap()
        amap.add_region("window", 0x0, 0x1000, slave="first_owner")
        assert amap.decode(0x20).slave == "first_owner"  # memoised
        removed = amap.remove_region("window")
        assert removed.slave == "first_owner"
        amap.add_region("window", 0x0, 0x1000, slave="second_owner")
        # A stale memo would still answer "first_owner" here.
        assert amap.decode(0x20).slave == "second_owner"
        assert "window" in amap and len(amap) == 1

    def test_remove_unknown_region_raises(self):
        amap = self._map_with_regions()
        with pytest.raises(KeyError, match="ghost"):
            amap.remove_region("ghost")

    def test_removed_region_no_longer_decodes(self):
        amap = self._map_with_regions(2)
        amap.decode(0x1000)
        amap.remove_region("r1")
        from repro.soc.address_map import DecodeError
        with pytest.raises(DecodeError):
            amap.decode(0x1000)

    def test_eviction_is_lru_not_wholesale(self, monkeypatch):
        amap = self._map_with_regions(1)
        monkeypatch.setattr(AddressMap, "DECODE_CACHE_LIMIT", 4)
        for address in (0x0, 0x4, 0x8, 0xC):
            amap.decode(address)
        assert len(amap._decode_cache) == 4
        # Touch 0x0 so it becomes most-recently-used, then overflow the memo.
        amap.decode(0x0)
        amap.decode(0x10)
        cached = set(amap._decode_cache)
        assert len(cached) == 4, "one entry evicted, not a wholesale clear"
        assert (0x4, 1) not in cached, "the least-recently-used entry is evicted"
        assert (0x0, 1) in cached, "the recently-touched entry survives"
        assert (0x10, 1) in cached

    def test_cache_never_exceeds_limit_under_sweep(self, monkeypatch):
        amap = self._map_with_regions(4)
        monkeypatch.setattr(AddressMap, "DECODE_CACHE_LIMIT", 16)
        for address in range(0, 0x4000, 4):
            amap.decode(address)
        assert len(amap._decode_cache) == 16
