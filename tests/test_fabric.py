"""Tests for the hierarchical interconnect fabric.

Covers the Interconnect contract, multi-hop routing, bridge forwarding
(posted and non-posted), firewall placement at bridges, the fabric-aware
scenario specs/builder and the per-hop latency attribution.
"""

import pytest

from repro.core.policy import ConfigurationMemory
from repro.core.local_firewall import LocalFirewall
from repro.core.secure import BridgeFirewallPlan, SecurityPlan
from repro.metrics.latency import aggregate_hop_latency, per_hop_latency, placement_split
from repro.scenarios import (
    BridgeSpec,
    MasterSpec,
    ScenarioBuilder,
    ScenarioSpec,
    SegmentSpec,
    SlaveSpec,
    TopologySpec,
    get_scenario,
)
from repro.soc.bus import SystemBus
from repro.soc.fabric import Interconnect, InterconnectFabric, RoutingError
from repro.soc.kernel import Simulator
from repro.soc.memory import BlockRAM
from repro.soc.ports import MasterPort, SlavePort
from repro.soc.transaction import BusOperation, BusTransaction, TransactionStatus


def build_chain_fabric(n_segments=3, posted=False, buffer_depth=4, forward_latency=2):
    """seg0 - br0 - seg1 - br1 - seg2 ... with one BRAM per segment."""
    sim = Simulator()
    fabric = InterconnectFabric(sim)
    for i in range(n_segments):
        fabric.add_segment(f"seg{i}")
    for i in range(n_segments - 1):
        fabric.add_bridge(
            f"br{i}", f"seg{i}", f"seg{i+1}",
            forward_latency=forward_latency, posted_writes=posted, buffer_depth=buffer_depth,
        )
    memories = []
    for i in range(n_segments):
        fabric.add_region(f"bram{i}", 0x1000 * i, 0x1000, slave=f"bram{i}", segment=f"seg{i}")
    fabric.finalize()
    for i in range(n_segments):
        memory = BlockRAM(sim, f"bram{i}", base=0x1000 * i, size=0x1000)
        fabric.connect_slave(SlavePort(sim, f"bram{i}_port", memory), segment=f"seg{i}")
        memories.append(memory)
    port = MasterPort(sim, "cpu0_port")
    fabric.connect_master(port, segment="seg0")
    return sim, fabric, memories, port


def issue_and_run(sim, port, txn):
    results = []
    port.issue(txn, results.append)
    sim.run()
    assert len(results) == 1
    return results[0]


class TestInterconnectContract:
    def test_flat_bus_and_fabric_both_implement_interconnect(self):
        sim = Simulator()
        assert isinstance(SystemBus(sim), Interconnect)
        fabric = InterconnectFabric(sim)
        assert isinstance(fabric, Interconnect)
        assert isinstance(fabric.add_segment("seg0"), Interconnect)

    def test_flat_bus_rejects_foreign_segment(self):
        sim = Simulator()
        bus = SystemBus(sim)
        with pytest.raises(ValueError, match="single segment"):
            bus.connect_master(MasterPort(sim, "cpu_port"), segment="other")
        # Its own name (and None) are accepted.
        bus.connect_master(MasterPort(sim, "cpu0_port"), segment="system_bus")
        bus.connect_master(MasterPort(sim, "cpu1_port"))

    def test_fabric_aggregates_names_and_pending(self):
        sim, fabric, _, _ = build_chain_fabric()
        assert fabric.master_names == ["cpu0_port"]
        assert fabric.slave_names == ["bram0", "bram1", "bram2"]
        assert fabric.pending_count() == 0


class TestRouting:
    def test_multi_hop_read_crosses_every_bridge(self):
        sim, fabric, memories, port = build_chain_fabric()
        memories[2].poke(0x2010, b"\xde\xad\xbe\xef")
        read = BusTransaction(master="cpu0", operation=BusOperation.READ, address=0x2010)
        result = issue_and_run(sim, port, read)
        assert result.status is TransactionStatus.COMPLETED
        assert result.data == b"\xde\xad\xbe\xef"
        hops = per_hop_latency(result)
        assert set(hops) == {"bus:seg0", "bridge:br0", "bus:seg1", "bridge:br1", "bus:seg2"}

    def test_local_access_stays_on_segment(self):
        sim, fabric, _, port = build_chain_fabric()
        write = BusTransaction(master="cpu0", operation=BusOperation.WRITE,
                               address=0x10, data=b"\x01\x02\x03\x04")
        result = issue_and_run(sim, port, write)
        assert result.status is TransactionStatus.COMPLETED
        assert set(per_hop_latency(result)) == {"bus:seg0"}
        assert fabric.segments["seg1"].monitor.count() == 0

    def test_router_paths_and_memoisation(self):
        _, fabric, _, _ = build_chain_fabric()
        route = fabric.router.resolve("seg0", 0x2000)
        assert route.bridges == ("br0", "br1")
        assert route.target_segment == "seg2"
        assert route.hops == 3
        assert fabric.router.resolve("seg0", 0x2000) is route  # memoised
        assert fabric.router.resolve("seg2", 0x2000).bridges == ()
        assert fabric.router.path("seg2", "seg0") == ("br1", "br0")

    def test_router_raises_for_unknown_destination(self):
        _, fabric, _, _ = build_chain_fabric()
        with pytest.raises(RoutingError):
            fabric.router.path("seg0", "nowhere")

    def test_fabric_monitor_counts_hop_observations(self):
        sim, fabric, _, port = build_chain_fabric()
        read = BusTransaction(master="cpu0", operation=BusOperation.READ, address=0x2000)
        issue_and_run(sim, port, read)
        # One transaction, observed once per segment crossed.
        assert fabric.monitor.count() == 3
        assert fabric.monitor.per_master == {"cpu0": 3}
        assert fabric.monitor.per_slave["bridge:br0"] == 1
        assert fabric.monitor.per_slave["bram2"] == 1

    def test_finalize_is_single_shot_and_guards_mutation(self):
        sim = Simulator()
        fabric = InterconnectFabric(sim)
        fabric.add_segment("seg0")
        fabric.finalize()
        with pytest.raises(RuntimeError):
            fabric.finalize()
        with pytest.raises(RuntimeError):
            fabric.add_segment("seg1")
        with pytest.raises(RuntimeError):
            fabric.add_region("r", 0, 16, slave="r")


class TestPostedWrites:
    def test_posted_write_acks_before_downstream_lands(self):
        sim, fabric, memories, port = build_chain_fabric(n_segments=2, posted=True)
        write = BusTransaction(master="cpu0", operation=BusOperation.WRITE,
                               address=0x1010, data=b"\xaa\xbb\xcc\xdd")
        done_at = []
        port.issue(write, lambda t: done_at.append((sim.now, bytes(memories[1].peek(0x1010, 4)))))
        sim.run()
        ack_cycle, memory_at_ack = done_at[0]
        assert write.status is TransactionStatus.COMPLETED
        # At ack time the downstream leg had not landed yet...
        assert memory_at_ack == b"\x00\x00\x00\x00"
        # ...but it eventually does.
        assert memories[1].peek(0x1010, 4) == b"\xaa\xbb\xcc\xdd"
        bridge = fabric.bridges["br0"]
        assert bridge.stats["posted_writes"] == 1
        assert bridge.stats["posted_completed"] == 1
        assert bridge.buffered_count() == 0

    def test_full_buffer_falls_back_to_non_posted(self):
        # A slow bridge (forward_latency=10) with a 1-deep buffer: the head
        # write is still in flight when the next one arrives, forcing the
        # non-posted fallback that back-pressures the issuing segment.
        sim, fabric, memories, port = build_chain_fabric(
            n_segments=2, posted=True, buffer_depth=1, forward_latency=10
        )
        for index in range(4):
            txn = BusTransaction(
                master="cpu0", operation=BusOperation.WRITE,
                address=0x1000 + 4 * index, data=bytes([index]) * 4,
            )
            port.issue(txn, lambda t: None)
        sim.run()
        bridge = fabric.bridges["br0"]
        assert bridge.stats.get("posted_stalls", 0) > 0
        assert bridge.stats["posted_writes"] >= 1
        for index in range(4):
            assert memories[1].peek(0x1000 + 4 * index, 4) == bytes([index]) * 4

    def test_read_after_posted_write_observes_the_write(self):
        """RAW ordering: a read must not overtake posted writes still queued
        in the bridge buffer (regression: the read used to forward
        immediately and return stale data)."""
        sim, fabric, memories, port = build_chain_fabric(
            n_segments=2, posted=True, buffer_depth=4, forward_latency=10
        )
        outcomes = []
        port.issue(BusTransaction(master="cpu0", operation=BusOperation.WRITE,
                                  address=0x1010, data=b"\x11" * 4), outcomes.append)
        port.issue(BusTransaction(master="cpu0", operation=BusOperation.WRITE,
                                  address=0x1010, data=b"\x22" * 4), outcomes.append)
        port.issue(BusTransaction(master="cpu0", operation=BusOperation.READ,
                                  address=0x1010), outcomes.append)
        sim.run()
        assert [t.status for t in outcomes] == [TransactionStatus.COMPLETED] * 3
        assert outcomes[2].data == b"\x22" * 4, "read must see the last posted write"
        assert fabric.bridges["br0"].stats["ordered_behind_posted"] >= 1

    def test_reads_are_never_posted(self):
        sim, fabric, memories, port = build_chain_fabric(n_segments=2, posted=True)
        memories[1].poke(0x1000, b"\x11\x22\x33\x44")
        read = BusTransaction(master="cpu0", operation=BusOperation.READ, address=0x1000)
        result = issue_and_run(sim, port, read)
        assert result.data == b"\x11\x22\x33\x44"
        assert "posted_writes" not in fabric.bridges["br0"].stats


class TestBridgeFirewallPlacement:
    def _bridge_firewall(self, sim, fabric, rules):
        memory = ConfigurationMemory("cfg_br0", capacity=8)
        for base, size, policy in rules:
            memory.add(base, size, policy)
        firewall = LocalFirewall(sim, "lf_br0", memory, protected_ip="br0")
        fabric.bridges["br0"].attach_filter(firewall)
        return firewall

    def test_unruled_remote_region_is_denied_at_bridge(self):
        sim, fabric, memories, port = build_chain_fabric(n_segments=2)
        firewall = self._bridge_firewall(sim, fabric, [])  # no rules: default deny
        write = BusTransaction(master="cpu0", operation=BusOperation.WRITE,
                               address=0x1010, data=b"\xff" * 4)
        result = issue_and_run(sim, port, write)
        assert result.status is TransactionStatus.BLOCKED_AT_BRIDGE
        assert memories[1].peek(0x1010, 4) == b"\x00" * 4
        assert firewall.security_builder.violations == 1

    def test_intra_segment_traffic_is_unchecked_by_bridge_firewall(self):
        sim, fabric, memories, port = build_chain_fabric(n_segments=2)
        firewall = self._bridge_firewall(sim, fabric, [])
        write = BusTransaction(master="cpu0", operation=BusOperation.WRITE,
                               address=0x10, data=b"\x01\x02\x03\x04")
        result = issue_and_run(sim, port, write)
        assert result.status is TransactionStatus.COMPLETED
        assert firewall.security_builder.evaluations == 0

    def test_attach_security_rejects_bridge_plan_on_flat_bus(self):
        from repro.soc.system import build_reference_platform
        from repro.core.secure import attach_security

        system = build_reference_platform()
        plan = SecurityPlan(bridges=[BridgeFirewallPlan("br0", [])], placement="bridge")
        with pytest.raises(ValueError, match="interconnect has none"):
            attach_security(system, plan)

    def test_security_plan_validates_placement(self):
        with pytest.raises(ValueError, match="placement"):
            SecurityPlan(placement="everywhere")


class TestFabricSpecs:
    def _two_segment_topology(self, **overrides):
        fields = dict(
            masters=(
                MasterSpec("cpu0", segment="seg0"),
                MasterSpec("dma", kind="dma", segment="seg1"),
            ),
            slaves=(
                SlaveSpec("bram", "bram", base=0x0, size=0x1000, segment="seg0"),
                SlaveSpec("ddr", "ddr", base=0x9000_0000, size=0x8000, segment="seg1"),
            ),
            segments=(SegmentSpec("seg0"), SegmentSpec("seg1")),
            bridges=(BridgeSpec("br0", "seg0", "seg1"),),
        )
        fields.update(overrides)
        return TopologySpec(**fields)

    def test_valid_fabric_topology(self):
        topology = self._two_segment_topology()
        topology.validate()
        assert topology.hierarchical
        assert topology.segment_of(topology.masters[0]) == "seg0"

    def test_flat_topology_rejects_segment_references(self):
        topology = self._two_segment_topology(segments=(), bridges=())
        with pytest.raises(ValueError, match="declares no segments"):
            topology.validate()

    def test_unknown_segment_is_rejected(self):
        topology = self._two_segment_topology(
            masters=(MasterSpec("cpu0", segment="nope"),
                     MasterSpec("dma", kind="dma", segment="seg1")),
        )
        with pytest.raises(ValueError, match="unknown segment"):
            topology.validate()

    def test_disconnected_segments_are_rejected(self):
        topology = self._two_segment_topology(bridges=())
        with pytest.raises(ValueError, match="not connected"):
            topology.validate()

    def test_bridges_without_segments_are_rejected(self):
        topology = self._two_segment_topology(segments=())
        with pytest.raises(ValueError, match="bridges need segments"):
            topology.validate()

    def test_bridge_deny_must_name_known_slaves(self):
        topology = self._two_segment_topology(
            bridges=(BridgeSpec("br0", "seg0", "seg1", deny=("ghost",)),),
        )
        with pytest.raises(ValueError, match="denies unknown slave"):
            topology.validate()

    def test_bridge_placement_requires_bridges(self):
        spec = ScenarioSpec(
            name="x", description="", placement="bridge",
            topology=TopologySpec(
                masters=(MasterSpec("cpu0"),),
                slaves=(SlaveSpec("bram", "bram", base=0x0, size=0x1000),),
            ),
        )
        with pytest.raises(ValueError, match="needs a topology with bridges"):
            spec.validate()

    def test_reconfig_may_target_bridge_firewall(self):
        from repro.scenarios.spec import ReconfigSpec

        topology = self._two_segment_topology()
        spec = ScenarioSpec(
            name="x", description="", topology=topology, placement="both",
            reconfigs=(ReconfigSpec(at_cycle=10, firewall="lf_br0", rule_base=0x0),),
        )
        spec.validate()


class TestFabricScenarios:
    def test_bridge_placement_builds_only_bridge_firewalls(self):
        built = ScenarioBuilder(get_scenario("bridge_firewalled_centralized")).build(True, _warn=False)
        assert list(built.security.bridge_firewalls) == ["br_sec"]
        assert built.security.master_firewalls == {}
        assert built.security.slave_firewalls == {}
        assert list(built.security.ciphering_firewalls) == ["ddr"]

    def test_both_placement_builds_leaf_and_bridge_firewalls(self):
        built = ScenarioBuilder(get_scenario("deep_hierarchy_3seg")).build(True, _warn=False)
        assert set(built.security.bridge_firewalls) == {"br01", "br12"}
        assert set(built.security.master_firewalls) == {"cpu0", "cpu1", "dma"}

    def test_describe_topology_carries_fabric_structure(self):
        built = ScenarioBuilder(get_scenario("two_segment_dma_isolation")).build(False, _warn=False)
        description = built.system.describe_topology()
        assert set(description["fabric"]["segments"]) == {"seg_cpu", "seg_io"}
        assert "br_io" in description["fabric"]["bridges"]

    def test_placement_split_accounts_bridge_cycles(self):
        built = ScenarioBuilder(get_scenario("deep_hierarchy_3seg")).build(True, _warn=False)
        built.run_workload()
        rows = {row.placement: row for row in placement_split(built.security)}
        assert rows["leaf_master"].evaluations > 0
        assert rows["bridge"].evaluations > 0
        # Cross-segment traffic exists, so bridge SBs charged the 12-cycle
        # Table-II latency per evaluation, same as the leaves.
        assert rows["bridge"].mean_cycles == pytest.approx(12.0)
        assert rows["leaf_master"].mean_cycles == pytest.approx(12.0)

    def test_aggregate_hop_latency_splits_segments_and_bridges(self):
        built = ScenarioBuilder(get_scenario("deep_hierarchy_3seg")).build(False, _warn=False)
        built.run_workload()
        txns = built.system.bus.monitor.history
        totals = aggregate_hop_latency(txns)
        assert totals.get("bridge:br01", 0) > 0
        assert totals.get("bus:seg0", 0) > 0
        assert totals.get("bus:seg2", 0) > 0

    def test_aggregate_hop_latency_counts_each_transaction_once(self):
        """The fabric monitor observes a transaction once per hop; the
        aggregate must not multiply a multi-hop path by its hop count."""
        sim, fabric, _, port = build_chain_fabric(n_segments=3)
        read = BusTransaction(master="cpu0", operation=BusOperation.READ, address=0x2000)
        issue_and_run(sim, port, read)
        history = fabric.monitor.history
        assert len(history) == 3  # three hop observations of one transaction
        totals = aggregate_hop_latency(history)
        assert totals == per_hop_latency(read), (
            "duplicated hop observations must be deduplicated"
        )

    def test_single_segment_fabric_matches_flat_bus_results(self):
        """A 1-segment fabric must behave like the flat bus (modulo the
        per-segment latency stage name)."""
        def run(topology_kwargs):
            spec = ScenarioSpec(
                name="flat_vs_fabric", description="",
                topology=TopologySpec(
                    masters=(MasterSpec("cpu0"),),
                    slaves=(SlaveSpec("bram", "bram", base=0x0, size=0x1000),),
                    **topology_kwargs,
                ),
            )
            built = ScenarioBuilder(spec).build(True, _warn=False)
            sim = built.system.sim
            port = built.system.master_ports["cpu0"]
            results = []
            for index in range(8):
                txn = BusTransaction(master="cpu0", operation=BusOperation.WRITE,
                                     address=4 * index, data=bytes([index]) * 4)
                port.issue(txn, results.append)
            sim.run()
            return [
                (t.status, t.completed_at - t.issued_at, t.data) for t in results
            ]

        flat = run({})
        fabric = run({"segments": (SegmentSpec("seg0"),)})
        assert flat == fabric


class TestFabricIntrospection:
    def test_bridge_endpoint_and_segment_lookups(self):
        _, fabric, _, _ = build_chain_fabric(n_segments=2)
        bridge = fabric.bridges["br0"]
        assert bridge.endpoint_on("seg0") is bridge.endpoint_a
        assert bridge.endpoint_on("seg1") is bridge.endpoint_b
        assert bridge.other_segment("seg0").name == "seg1"
        with pytest.raises(ValueError, match="does not touch"):
            bridge.endpoint_on("seg9")
        with pytest.raises(ValueError, match="does not touch"):
            bridge.other_segment("seg9")
        assert bridge.summary()["segments"] == ["seg0", "seg1"]

    def test_fabric_lookup_errors_and_accessors(self):
        sim, fabric, _, _ = build_chain_fabric(n_segments=2)
        with pytest.raises(KeyError, match="no segment"):
            fabric.segment("ghost")
        with pytest.raises(KeyError, match="no region"):
            fabric.segment_of_region("ghost")
        assert fabric.segment_of_region("bram1") == "seg1"
        assert fabric.segment_of_master("cpu0_port") == "seg0"
        assert fabric.segment_of_master("ghost_port") is None
        assert fabric.segments["seg0"].slave_port("bram0") is not None
        assert fabric.segments["seg0"].slave_port("ghost") is None
        empty = InterconnectFabric(Simulator())
        with pytest.raises(RuntimeError, match="no segments"):
            empty.segment()

    def test_router_try_resolve_swallows_unmapped_addresses(self):
        _, fabric, _, _ = build_chain_fabric(n_segments=2)
        assert fabric.router.try_resolve("seg0", 0xDEAD_0000) is None
        assert fabric.router.try_resolve("seg0", 0x1000).target_segment == "seg1"

    def test_fabric_monitor_transactions_of(self):
        sim, fabric, _, port = build_chain_fabric(n_segments=2)
        read = BusTransaction(master="cpu0", operation=BusOperation.READ, address=0x1000)
        issue_and_run(sim, port, read)
        observed = fabric.monitor.transactions_of("cpu0")
        assert len(observed) == 2  # one hop observation per segment
        assert fabric.monitor.transactions_of("ghost") == []
        assert fabric.utilisation_summary() == {"cpu0": 2}

    def test_bridge_parameter_validation(self):
        sim = Simulator()
        fabric = InterconnectFabric(sim)
        fabric.add_segment("seg0")
        fabric.add_segment("seg1")
        with pytest.raises(ValueError, match="distinct segments"):
            fabric.add_bridge("brX", "seg0", "seg0")
        from repro.soc.fabric import BusBridge
        with pytest.raises(ValueError, match="forward_latency"):
            BusBridge(sim, "brY", fabric.segments["seg0"], fabric.segments["seg1"],
                      forward_latency=-1)
        with pytest.raises(ValueError, match="buffer_depth"):
            BusBridge(sim, "brZ", fabric.segments["seg0"], fabric.segments["seg1"],
                      buffer_depth=0)

    def test_duplicate_segment_bridge_region_names_rejected(self):
        sim = Simulator()
        fabric = InterconnectFabric(sim)
        fabric.add_segment("seg0")
        with pytest.raises(ValueError, match="already exists"):
            fabric.add_segment("seg0")
        fabric.add_segment("seg1")
        fabric.add_bridge("br0", "seg0", "seg1")
        with pytest.raises(ValueError, match="already exists"):
            fabric.add_bridge("br0", "seg0", "seg1")


class TestCrossSegmentAttackSurface:
    def test_attacker_master_can_inject_on_a_chosen_segment(self):
        from repro.attacks.injector import AttackerMaster

        sim, fabric, memories, _ = build_chain_fabric(n_segments=2)
        attacker = AttackerMaster.with_new_port(sim, fabric, segment="seg1")
        attacker.inject_read(0x1000)
        sim.run()
        assert attacker.success_count() == 1
        # The injection point lives on seg1: its local access never touches seg0.
        assert fabric.segments["seg1"].monitor.per_master.get("attacker") == 1
        assert "attacker" not in fabric.segments["seg0"].monitor.per_master

    def test_dos_flood_counts_distinct_transactions_across_hops(self):
        """A cross-segment flood is observed once per hop by the fabric
        monitor; the attack must score distinct transactions (regression:
        reached_bus used to double per bridge crossed)."""
        from repro.attacks.dos import DoSFloodAttack

        built = ScenarioBuilder(get_scenario("two_segment_dma_isolation")).build(False, _warn=False)
        result = DoSFloodAttack(hijacked_master="dma", n_requests=20).run(built.system, None)
        assert result.extra["reached_bus"] == 20
