"""Tests for the Merkle hash tree (the Integrity Core's data structure)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.merkle import IntegrityViolation, MerkleTree


BLOCK = 16


def make_tree(n_blocks=8, block_size=BLOCK):
    return MerkleTree(n_blocks, block_size=block_size)


class TestConstruction:
    def test_rejects_invalid_sizes(self):
        with pytest.raises(ValueError):
            MerkleTree(0)
        with pytest.raises(ValueError):
            MerkleTree(4, block_size=0)

    def test_leaf_count_rounded_to_power_of_two(self):
        tree = MerkleTree(5, block_size=BLOCK)
        assert tree.n_leaves == 8
        assert tree.depth == 3

    def test_single_block_tree(self):
        tree = MerkleTree(1, block_size=BLOCK)
        assert tree.n_leaves == 1
        assert tree.depth == 0
        tree.update(0, b"A" * BLOCK)
        assert tree.verify(0, b"A" * BLOCK)

    def test_initial_state_verifies_zero_blocks(self):
        tree = make_tree()
        for index in range(tree.n_blocks):
            assert tree.verify(index, bytes(BLOCK))

    def test_from_memory_builds_consistent_tree(self):
        blocks = [bytes([i]) * BLOCK for i in range(6)]
        tree = MerkleTree.from_memory(blocks, block_size=BLOCK)
        for index, data in enumerate(blocks):
            assert tree.verify(index, data)

    def test_node_count(self):
        tree = make_tree(8)
        # 8 leaves + 4 + 2 + 1 = 15 nodes.
        assert tree.node_count() == 15


class TestUpdateAndVerify:
    def test_update_changes_root(self):
        tree = make_tree()
        original_root = tree.root
        tree.update(3, b"B" * BLOCK)
        assert tree.root != original_root

    def test_verify_accepts_current_content(self):
        tree = make_tree()
        tree.update(2, b"C" * BLOCK)
        assert tree.verify(2, b"C" * BLOCK)

    def test_verify_rejects_tampered_content(self):
        tree = make_tree()
        tree.update(2, b"C" * BLOCK)
        assert not tree.verify(2, b"X" * BLOCK)

    def test_verify_rejects_stale_version_replay(self):
        tree = make_tree()
        tree.update(1, b"OLD" + bytes(BLOCK - 3))
        old_version = tree.version(1)
        tree.update(1, b"NEW" + bytes(BLOCK - 3))
        # Replaying the old content with its old version must fail: the tree
        # now binds version 2 into the leaf.
        assert not tree.verify(1, b"OLD" + bytes(BLOCK - 3), version=old_version)

    def test_verify_rejects_relocated_content(self):
        tree = make_tree()
        payload = b"MOVE" + bytes(BLOCK - 4)
        tree.update(0, payload)
        tree.update(4, b"stay" + bytes(BLOCK - 4))
        # The content of block 0 presented as block 4 must not verify.
        assert not tree.verify(4, payload)

    def test_verify_or_raise(self):
        tree = make_tree()
        tree.update(0, b"D" * BLOCK)
        tree.verify_or_raise(0, b"D" * BLOCK)
        with pytest.raises(IntegrityViolation) as excinfo:
            tree.verify_or_raise(0, b"E" * BLOCK)
        assert excinfo.value.block_index == 0

    def test_versions_increment_per_block(self):
        tree = make_tree()
        assert tree.version(5) == 0
        tree.update(5, bytes(BLOCK))
        tree.update(5, bytes(BLOCK))
        assert tree.version(5) == 2
        assert tree.version(4) == 0

    def test_update_validates_inputs(self):
        tree = make_tree()
        with pytest.raises(IndexError):
            tree.update(100, bytes(BLOCK))
        with pytest.raises(ValueError):
            tree.update(0, b"short")

    def test_counters(self):
        tree = make_tree()
        tree.update(0, bytes(BLOCK))
        tree.verify(0, bytes(BLOCK))
        tree.verify(1, bytes(BLOCK))
        assert tree.update_count == 1
        assert tree.verify_count == 2


class TestAuthPath:
    def test_path_length_equals_depth(self):
        tree = make_tree(8)
        assert len(tree.auth_path(0)) == tree.depth

    def test_path_recomputes_root(self):
        tree = make_tree(8)
        data = b"P" * BLOCK
        tree.update(6, data)
        path = tree.auth_path(6)
        recomputed = tree.compute_root_from_path(6, data, tree.version(6), path)
        assert recomputed == tree.root

    def test_path_with_wrong_data_does_not_recompute_root(self):
        tree = make_tree(8)
        tree.update(6, b"P" * BLOCK)
        path = tree.auth_path(6)
        recomputed = tree.compute_root_from_path(6, b"Q" * BLOCK, tree.version(6), path)
        assert recomputed != tree.root


class TestProperties:
    @given(
        st.integers(min_value=2, max_value=16),
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=15), st.binary(min_size=BLOCK, max_size=BLOCK)),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_last_write_always_verifies(self, n_blocks, writes):
        tree = MerkleTree(n_blocks, block_size=BLOCK)
        latest = {}
        for index, data in writes:
            index %= n_blocks
            tree.update(index, data)
            latest[index] = data
        for index, data in latest.items():
            assert tree.verify(index, data)

    @given(
        st.lists(st.binary(min_size=BLOCK, max_size=BLOCK), min_size=2, max_size=8, unique=True),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_other_block_content_fails_verification(self, contents):
        tree = MerkleTree(len(contents), block_size=BLOCK)
        for index, data in enumerate(contents):
            tree.update(index, data)
        # Presenting block j's content as block i (i != j) must fail.
        for i in range(len(contents)):
            for j in range(len(contents)):
                if i != j:
                    assert not tree.verify(i, contents[j])

    @given(st.binary(min_size=BLOCK, max_size=BLOCK), st.integers(min_value=0, max_value=BLOCK * 8 - 1))
    @settings(max_examples=40, deadline=None)
    def test_single_bit_flip_always_detected(self, data, bit):
        tree = MerkleTree(4, block_size=BLOCK)
        tree.update(1, data)
        tampered = bytearray(data)
        tampered[bit // 8] ^= 1 << (bit % 8)
        assert not tree.verify(1, bytes(tampered))
