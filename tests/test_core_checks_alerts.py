"""Tests for the Security Builder's checking modules and the alert system."""


from repro.core.alerts import SecurityAlert, SecurityMonitor, Severity, ViolationType
from repro.core.checks import (
    AddressRangeCheck,
    BurstLengthCheck,
    DataFormatCheck,
    ReadWriteAccessCheck,
    default_check_suite,
)
from repro.core.policy import ReadWriteAccess, SecurityPolicy
from repro.soc.transaction import BusOperation, BusTransaction


def policy(**overrides):
    params = dict(spi=1)
    params.update(overrides)
    return SecurityPolicy(**params)


def read(address=0x100, width=4, burst=1):
    return BusTransaction(master="cpu0", operation=BusOperation.READ,
                          address=address, width=width, burst_length=burst)


def write(address=0x100, width=4, burst=1):
    return BusTransaction(master="cpu0", operation=BusOperation.WRITE,
                          address=address, width=width, burst_length=burst,
                          data=bytes(width * burst))


class TestReadWriteAccessCheck:
    def test_allows_permitted_directions(self):
        check = ReadWriteAccessCheck()
        assert check.check(policy(), read()).passed
        assert check.check(policy(), write()).passed

    def test_blocks_write_to_read_only(self):
        check = ReadWriteAccessCheck()
        result = check.check(policy(rwa=ReadWriteAccess.READ_ONLY), write())
        assert not result.passed
        assert result.violation is ViolationType.UNAUTHORIZED_WRITE

    def test_blocks_read_from_write_only(self):
        check = ReadWriteAccessCheck()
        result = check.check(policy(rwa=ReadWriteAccess.WRITE_ONLY), read())
        assert not result.passed
        assert result.violation is ViolationType.UNAUTHORIZED_READ


class TestDataFormatCheck:
    def test_allows_listed_formats(self):
        check = DataFormatCheck()
        assert check.check(policy(allowed_formats=frozenset({4})), read(width=4)).passed

    def test_blocks_unlisted_format(self):
        check = DataFormatCheck()
        result = check.check(policy(allowed_formats=frozenset({4})), write(width=1))
        assert not result.passed
        assert result.violation is ViolationType.BAD_DATA_FORMAT
        assert "allowed formats" in result.detail


class TestBurstLengthCheck:
    def test_allows_within_limit(self):
        check = BurstLengthCheck()
        assert check.check(policy(max_burst_length=4), read(burst=4)).passed

    def test_blocks_over_limit(self):
        check = BurstLengthCheck()
        result = check.check(policy(max_burst_length=4), read(burst=5))
        assert not result.passed
        assert result.violation is ViolationType.BURST_TOO_LONG


class TestAddressRangeCheck:
    def test_no_windows_means_no_restriction(self):
        check = AddressRangeCheck()
        assert check.check(policy(), read(address=0xDEAD0000)).passed

    def test_inside_window_allowed(self):
        check = AddressRangeCheck(windows=[(0x100, 0x100)])
        assert check.check(policy(), read(address=0x180)).passed

    def test_outside_window_blocked(self):
        check = AddressRangeCheck(windows=[(0x100, 0x100)])
        result = check.check(policy(), read(address=0x300))
        assert not result.passed
        assert result.violation is ViolationType.ADDRESS_OUT_OF_RANGE

    def test_straddling_window_edge_blocked(self):
        check = AddressRangeCheck(windows=[(0x100, 0x10)])
        result = check.check(policy(), read(address=0x10C, width=4, burst=2))
        assert not result.passed


class TestDefaultSuite:
    def test_contains_all_paper_checks(self):
        names = {type(check).__name__ for check in default_check_suite()}
        assert names == {
            "ReadWriteAccessCheck",
            "DataFormatCheck",
            "BurstLengthCheck",
            "AddressRangeCheck",
        }


class TestSecurityAlert:
    def test_default_severity_per_violation(self):
        alert = SecurityAlert.for_violation(
            cycle=5, firewall="lf", master="cpu0",
            violation=ViolationType.INTEGRITY_FAILURE, address=0x0, txn_id=1,
        )
        assert alert.severity is Severity.CRITICAL
        info = SecurityAlert.for_violation(
            cycle=5, firewall="lf", master="cpu0",
            violation=ViolationType.RECONFIGURATION, address=0x0, txn_id=1,
        )
        assert info.severity is Severity.INFO

    def test_describe_mentions_key_fields(self):
        alert = SecurityAlert.for_violation(
            cycle=42, firewall="lf_cpu1", master="cpu1",
            violation=ViolationType.BAD_DATA_FORMAT, address=0x40000000, txn_id=3,
            detail="width 1",
        )
        text = alert.describe()
        assert "42" in text and "lf_cpu1" in text and "bad_data_format" in text and "width 1" in text


class TestSecurityMonitor:
    def make_alert(self, firewall="lf_a", master="cpu0", cycle=1,
                   violation=ViolationType.UNAUTHORIZED_READ):
        return SecurityAlert.for_violation(
            cycle=cycle, firewall=firewall, master=master,
            violation=violation, address=0x0, txn_id=0,
        )

    def test_counts_and_groupings(self):
        monitor = SecurityMonitor()
        monitor.raise_alert(self.make_alert(firewall="lf_a", master="cpu0", cycle=10))
        monitor.raise_alert(self.make_alert(firewall="lf_b", master="cpu1", cycle=5,
                                            violation=ViolationType.BAD_DATA_FORMAT))
        monitor.raise_alert(self.make_alert(firewall="lf_a", master="cpu0", cycle=20))
        assert monitor.count() == 3
        assert monitor.count(ViolationType.BAD_DATA_FORMAT) == 1
        assert monitor.alerts_by_firewall() == {"lf_a": 2, "lf_b": 1}
        assert monitor.alerts_by_master() == {"cpu0": 2, "cpu1": 1}
        assert monitor.first_detection_cycle() == 5
        assert monitor.masters_with_alerts(min_count=2) == ["cpu0"]
        assert len(monitor.critical_alerts()) == 2  # unauthorized reads are critical

    def test_subscribers_notified(self):
        monitor = SecurityMonitor()
        received = []
        monitor.subscribe(received.append)
        alert = self.make_alert()
        monitor.raise_alert(alert)
        assert received == [alert]

    def test_clear_and_summary(self):
        monitor = SecurityMonitor()
        assert monitor.first_detection_cycle() is None
        monitor.raise_alert(self.make_alert())
        summary = monitor.summary()
        assert summary["total"] == 1
        monitor.clear()
        assert monitor.count() == 0
