"""Regression tests for the simulation fast path.

The fast path trades per-transaction recomputation for precomputation and
memoisation in four places: table-driven AES, the hashlib SHA-256 backend,
the CTR keystream cache, and the firewalls' policy-decision caches.  All of
them must be *observably identical* to the reference implementations — same
bytes, same verdicts, same statistics — and the decision caches must be
invalidated by policy reconfiguration.  These tests pin each equivalence.
"""

from __future__ import annotations

import random

import pytest

from repro.core.local_firewall import LocalFirewall, SecurityBuilder
from repro.core.policy import ConfigurationMemory, ReadWriteAccess, SecurityPolicy
from repro.crypto.aes import AES128
from repro.crypto.modes import CTRMode
from repro.crypto.sha256 import (
    SHA256,
    fast_backend_enabled,
    sha256,
    use_reference_backend,
)
from repro.soc.address_map import AddressMap, DecodeError
from repro.soc.kernel import Simulator
from repro.soc.transaction import BusOperation, BusTransaction


# ---------------------------------------------------------------------------
# AES: table-driven path must match the FIPS-197 reference byte for byte
# ---------------------------------------------------------------------------


class TestAESTablePath:
    def test_fips_vector_through_fast_path(self):
        cipher = AES128(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert cipher.encrypt_block(plaintext) == expected
        assert cipher.decrypt_block(expected) == plaintext

    def test_matches_reference_for_random_keys_and_blocks(self):
        rng = random.Random(0xAE5)
        for _ in range(100):
            key = bytes(rng.randrange(256) for _ in range(16))
            block = bytes(rng.randrange(256) for _ in range(16))
            cipher = AES128(key)
            assert cipher.encrypt_block(block) == cipher.encrypt_block_reference(block)
            assert cipher.decrypt_block(block) == cipher.decrypt_block_reference(block)

    def test_roundtrip_through_mixed_paths(self):
        cipher = AES128(b"0123456789abcdef")
        block = b"fast path check!"
        assert cipher.decrypt_block_reference(cipher.encrypt_block(block)) == block
        assert cipher.decrypt_block(cipher.encrypt_block_reference(block)) == block


# ---------------------------------------------------------------------------
# SHA-256: hashlib backend must agree with the from-scratch implementation
# ---------------------------------------------------------------------------


class TestSha256Backends:
    def test_fast_backend_is_default(self):
        assert fast_backend_enabled()

    def test_backends_agree_across_lengths(self):
        rng = random.Random(0x5A)
        try:
            for length in (0, 1, 55, 56, 63, 64, 65, 200, 1000):
                data = bytes(rng.randrange(256) for _ in range(length))
                fast = sha256(data)
                use_reference_backend(True)
                assert not fast_backend_enabled()
                assert sha256(data) == fast == SHA256(data).digest()
                use_reference_backend(False)
        finally:
            use_reference_backend(False)


# ---------------------------------------------------------------------------
# CTR keystream cache
# ---------------------------------------------------------------------------


class TestCTRKeystreamCache:
    def test_cached_and_uncached_streams_agree(self):
        key = bytes(range(16))
        cached = CTRMode(AES128(key))
        uncached = CTRMode(AES128(key), cache_blocks=False)
        nonce = b"\x01" * 8
        payload = bytes(range(64))
        assert cached.encrypt(payload, nonce) == uncached.encrypt(payload, nonce)
        # Second pass over the same nonce is served from the cache.
        assert cached.encrypt(payload, nonce) == uncached.encrypt(payload, nonce)
        assert cached.cache_hits > 0
        assert cached.decrypt(cached.encrypt(payload, nonce), nonce) == payload

    def test_cache_is_bounded(self):
        mode = CTRMode(AES128(bytes(16)))
        for counter in range(mode.CACHE_LIMIT + 10):
            mode.keystream(b"\x00" * 8, 16, initial_counter=counter)
        assert len(mode._keystream_cache) <= mode.CACHE_LIMIT


# ---------------------------------------------------------------------------
# Firewall decision cache: correctness, statistics parity, invalidation
# ---------------------------------------------------------------------------


def _memory_with_rw_rule() -> ConfigurationMemory:
    memory = ConfigurationMemory("cm_test")
    memory.add(0x1000, 0x100, SecurityPolicy(spi=1, rwa=ReadWriteAccess.READ_WRITE))
    return memory


def _write_txn(address: int = 0x1000) -> BusTransaction:
    return BusTransaction(
        master="cpu0", operation=BusOperation.WRITE, address=address, width=4,
        data=bytes(4),
    )


class TestSecurityBuilderCache:
    def test_repeat_evaluations_hit_the_cache_with_identical_results(self):
        builder = SecurityBuilder("sb", _memory_with_rw_rule())
        txn = _write_txn()
        policy_a, results_a = builder.evaluate(txn)
        policy_b, results_b = builder.evaluate(_write_txn())
        assert builder.cache_hits == 1 and builder.cache_misses == 1
        assert policy_a is policy_b
        assert [r.passed for r in results_a] == [r.passed for r in results_b]

    def test_statistics_identical_to_uncached_run(self):
        cached = SecurityBuilder("sb_cached", _memory_with_rw_rule())
        uncached = SecurityBuilder("sb_plain", _memory_with_rw_rule(), cache_decisions=False)
        assert not uncached.cache_enabled
        for _ in range(5):
            cached.evaluate(_write_txn())
            uncached.evaluate(_write_txn())
        assert cached.evaluations == uncached.evaluations
        assert cached.violations == uncached.violations
        assert cached.cycles_charged == uncached.cycles_charged
        assert cached.config_memory.lookup_count == uncached.config_memory.lookup_count
        assert cached.config_memory.miss_count == uncached.config_memory.miss_count

    def test_replace_policy_invalidates_cached_allow(self):
        memory = _memory_with_rw_rule()
        builder = SecurityBuilder("sb", memory)
        _, results = builder.evaluate(_write_txn())
        assert all(r.passed for r in results)
        # Runtime reconfiguration: the region becomes read-only.
        assert memory.replace_policy(
            0x1000, SecurityPolicy(spi=2, rwa=ReadWriteAccess.READ_ONLY)
        )
        _, results = builder.evaluate(_write_txn())
        assert any(not r.passed for r in results), (
            "stale cached ALLOW survived a policy reconfiguration"
        )

    def test_default_policy_assignment_invalidates_cached_miss(self):
        memory = ConfigurationMemory("cm_default")
        builder = SecurityBuilder("sb", memory)
        txn = _write_txn(0x9000)  # no rule covers this address
        policy, _ = builder.evaluate(txn)
        assert policy is None
        # Plain attribute assignment (the pre-existing API) must also
        # invalidate cached POLICY_MISS denials.
        memory.default_policy = SecurityPolicy(spi=9, rwa=ReadWriteAccess.READ_WRITE)
        policy, results = builder.evaluate(_write_txn(0x9000))
        assert policy is not None and all(r.passed for r in results)

    def test_remove_rule_invalidates_to_policy_miss(self):
        memory = _memory_with_rw_rule()
        builder = SecurityBuilder("sb", memory)
        policy, _ = builder.evaluate(_write_txn())
        assert policy is not None
        assert memory.remove(0x1000)
        policy, results = builder.evaluate(_write_txn())
        assert policy is None
        assert results[0].check == "policy_lookup" and not results[0].passed

    def test_violation_counts_replay_on_cache_hits(self):
        memory = ConfigurationMemory("cm_ro")
        memory.add(0x1000, 0x100, SecurityPolicy(spi=1, rwa=ReadWriteAccess.READ_ONLY))
        builder = SecurityBuilder("sb", memory)
        for expected in (1, 2, 3):
            builder.evaluate(_write_txn())
            assert builder.violations == expected

    def test_firewall_level_reconfiguration_end_to_end(self):
        sim = Simulator()
        memory = _memory_with_rw_rule()
        firewall = LocalFirewall(sim, "lf_test", memory)
        assert firewall.filter_request(_write_txn()).allowed
        assert firewall.filter_request(_write_txn()).allowed  # cached
        memory.replace_policy(0x1000, SecurityPolicy(spi=3, rwa=ReadWriteAccess.READ_ONLY))
        assert not firewall.filter_request(_write_txn()).allowed


# ---------------------------------------------------------------------------
# Address-map decode memo
# ---------------------------------------------------------------------------


class TestAddressMapDecodeCache:
    def test_decode_memo_and_invalidation_on_add(self):
        amap = AddressMap()
        amap.add_region("bram", 0x0000, 0x1000, slave="bram")
        region = amap.decode(0x10, 4)
        assert amap.decode(0x10, 4) is region
        with pytest.raises(DecodeError):
            amap.decode(0x2000)
        amap.add_region("ddr", 0x2000, 0x1000, slave="ddr", external=True)
        assert amap.decode(0x2000).name == "ddr"
        assert amap.decode(0x10, 4).name == "bram"
