"""Seeded fairness tests for the arbiters under dynamic master registration.

The round-robin guarantee is: no master is served twice while another master
has a request pending the whole time — and that must keep holding when
masters register mid-simulation (the bus creates arbitration queues lazily on
first submission, so ``add_master`` runs while grants are already flowing).
"""

import random
from collections import deque

from repro.soc.address_map import AddressMap
from repro.soc.bus import FixedPriorityArbiter, RoundRobinArbiter, SystemBus
from repro.soc.kernel import Simulator
from repro.soc.memory import BlockRAM
from repro.soc.ports import MasterPort, SlavePort
from repro.soc.transaction import BusOperation, BusTransaction


def assert_no_double_service(grants, pending_between):
    """No master may be granted twice while another waited through both
    grants without being served in between.

    ``pending_between(master, i, j)`` reports whether ``master`` had a
    request pending continuously between grant i and grant j.
    """
    last_seen = {}
    for index, winner in enumerate(grants):
        if winner in last_seen:
            start = last_seen[winner]
            for other in set(grants):
                if other == winner or other in grants[start + 1:index]:
                    continue
                assert not pending_between(other, start, index), (
                    f"{winner} served twice (grants {start} and {index}) "
                    f"while {other} was continuously waiting and never served"
                )
        last_seen[winner] = index


class TestRoundRobinArbiterUnit:
    def test_seeded_random_pattern_never_starves(self):
        rng = random.Random(0xFA1C)
        arbiter = RoundRobinArbiter()
        waiting = {}
        # Pending snapshots before each grant, for the fairness oracle.
        pending_log = []
        grants = []
        masters = []

        for step in range(600):
            # Dynamic registration: a new master appears every 60 steps.
            if step % 60 == 0 and len(masters) < 8:
                name = f"m{len(masters)}"
                masters.append(name)
                arbiter.add_master(name)
                waiting.setdefault(name, deque())
            for name in masters:
                if rng.random() < 0.5:
                    waiting[name].append(object())
            pending_log.append({name for name in masters if waiting[name]})
            winner = arbiter.select(waiting)
            if winner is None:
                grants.append(None)
                continue
            assert waiting[winner], "arbiter granted a master with no request"
            waiting[winner].popleft()
            grants.append(winner)

        def pending_between(master, i, j):
            return all(master in pending_log[k] for k in range(i, j + 1))

        indexed = [(k, g) for k, g in enumerate(grants) if g is not None]
        compact = [g for _, g in indexed]
        positions = [k for k, _ in indexed]

        def compact_pending_between(master, i, j):
            return pending_between(master, positions[i], positions[j])

        assert len(set(compact)) == 8, "every master must eventually be served"
        assert_no_double_service(compact, compact_pending_between)

    def test_rotation_covers_all_masters_each_round_after_late_join(self):
        arbiter = RoundRobinArbiter()
        waiting = {}
        for name in ("m0", "m1", "m2"):
            arbiter.add_master(name)
            waiting[name] = deque(object() for _ in range(10))

        grants = [arbiter.select(waiting) for _ in range(3)]
        for winner in grants:
            waiting[winner].popleft()
        assert sorted(grants) == ["m0", "m1", "m2"]

        # m3 joins mid-stream with a full queue: the very next full rotation
        # must include it exactly once.
        arbiter.add_master("m3")
        waiting["m3"] = deque(object() for _ in range(10))
        rotation = []
        for _ in range(4):
            winner = arbiter.select(waiting)
            waiting[winner].popleft()
            rotation.append(winner)
        assert sorted(rotation) == ["m0", "m1", "m2", "m3"]

    def test_fixed_priority_respects_registration_order_after_dynamic_add(self):
        arbiter = FixedPriorityArbiter(["hi", "mid"])
        waiting = {"hi": deque(), "mid": deque([object()]), "lo": deque([object()])}
        arbiter.add_master("lo")  # dynamic registration appends at lowest priority
        assert arbiter.select(waiting) == "mid"
        waiting["hi"].append(object())
        assert arbiter.select(waiting) == "hi"
        waiting["hi"].clear()
        waiting["mid"].clear()
        assert arbiter.select(waiting) == "lo"


class TestBusLevelFairness:
    def _platform(self, arbiter):
        sim = Simulator()
        amap = AddressMap()
        amap.add_region("mem", 0x0, 0x10000, slave="mem")
        bus = SystemBus(sim, address_map=amap, arbiter=arbiter)
        memory = BlockRAM(sim, "mem", base=0x0, size=0x10000, read_latency=3)
        bus.connect_slave(SlavePort(sim, "mem_port", memory))
        return sim, bus

    def test_mid_simulation_add_master_is_fair_on_a_live_bus(self):
        rng = random.Random(0x5EED)
        sim, bus = self._platform(RoundRobinArbiter())
        ports = {}
        grant_order = []

        def issue(master, when):
            def fire():
                txn = BusTransaction(master=master, operation=BusOperation.READ,
                                     address=rng.randrange(0, 0x100) * 4)
                ports[master].issue(txn, lambda t: grant_order.append((master, t.granted_at)))
            sim.schedule_at(when, fire)

        # Two masters hammer the bus from cycle 0...
        for master in ("cpu0", "cpu1"):
            ports[master] = MasterPort(sim, f"{master}_port")
            bus.connect_master(ports[master])
            for index in range(30):
                issue(master, index)
        # ...and a third one registers (first submission) at cycle 40.
        ports["late"] = MasterPort(sim, "late_port")
        bus.connect_master(ports["late"])
        for index in range(30):
            issue("late", 40 + index)
        sim.run()

        assert len(grant_order) == 90
        # After the late master's first grant, contiguous grant windows of
        # size 3 must contain each backlogged master exactly once: nobody is
        # served twice while the others wait.
        first_late = next(i for i, (m, _) in enumerate(grant_order) if m == "late")
        saturated = [m for m, _ in grant_order[first_late:first_late + 45]]
        for start in range(0, len(saturated) - 3, 3):
            window = saturated[start:start + 3]
            assert sorted(window) == ["cpu0", "cpu1", "late"], (
                f"unfair window {window} at offset {start}"
            )

    def test_fixed_priority_starves_lowest_until_higher_goes_idle(self):
        sim, bus = self._platform(FixedPriorityArbiter())
        completions = []
        ports = {}
        for master, count in (("hog", 20), ("meek", 5)):
            ports[master] = MasterPort(sim, f"{master}_port")
            bus.connect_master(ports[master])
        for master, count in (("hog", 20), ("meek", 5)):
            for index in range(count):
                txn = BusTransaction(master=master, operation=BusOperation.READ,
                                     address=4 * index)
                ports[master].issue(txn, lambda t, m=master: completions.append(m))
        sim.run()
        # Strict priority: every hog access completes before any meek one.
        assert completions == ["hog"] * 20 + ["meek"] * 5
