"""Scenario catalog metadata, its generated docs page, and the CLI surface."""

from __future__ import annotations

import json
import pathlib

from repro.api.cli import main as cli_main
from repro.scenarios import get_scenario, list_scenarios
from repro.scenarios.catalog import (
    render_catalog,
    scenario_summaries,
    scenario_summary,
    security_label,
    summary_line,
    topology_label,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent
CATALOG_PAGE = REPO_ROOT / "docs" / "scenario-catalog.md"


class TestSummaries:
    def test_every_scenario_has_a_summary(self):
        summaries = scenario_summaries()
        assert [s["name"] for s in summaries] == list_scenarios()
        for summary in summaries:
            assert summary["description"]
            assert summary["doc"], f"{summary['name']}: factory needs a docstring"
            assert summary["masters"] and summary["slaves"]

    def test_topology_label_flat_vs_fabric(self):
        assert topology_label(scenario_summary("paper_baseline")) == "4M/3S flat"
        assert topology_label(scenario_summary("deep_hierarchy_3seg")) == "3M/4S 3seg/2br"

    def test_security_label_covers_placement_and_enforcement(self):
        assert security_label(scenario_summary("two_segment_dma_isolation")) == "both/distributed"
        assert security_label(scenario_summary("centralized_baseline_mirror")) == "-/centralized"

    def test_summary_matches_the_spec(self):
        spec = get_scenario("attack_heavy")
        summary = scenario_summary("attack_heavy")
        assert summary["attacks"] == [a.kind for a in spec.attacks]
        assert summary["workload_operations"] == spec.workload.n_operations

    def test_summary_line_carries_segment_and_placement_info(self):
        line = summary_line(scenario_summary("deep_hierarchy_3seg"))
        assert "3seg/2br" in line and "both/distributed" in line
        assert line.startswith("deep_hierarchy_3seg")


class TestGeneratedPage:
    def test_checked_in_catalog_is_in_sync_with_the_registry(self):
        assert CATALOG_PAGE.exists(), "docs/scenario-catalog.md missing"
        assert CATALOG_PAGE.read_text(encoding="utf-8") == render_catalog(), (
            "docs/scenario-catalog.md is stale; regenerate with "
            "`python -m repro catalog --write docs/scenario-catalog.md`"
        )

    def test_rendered_page_mentions_every_scenario(self):
        page = render_catalog()
        for name in list_scenarios():
            assert f"## {name}" in page


class TestCli:
    def test_list_prints_topology_and_placement_summaries(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "2seg/1br" in out and "both/distributed" in out
        assert "-/centralized" in out
        for name in list_scenarios():
            assert name in out

    def test_list_json_carries_the_catalog_metadata(self, capsys):
        assert cli_main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in payload} == set(list_scenarios())
        deep = next(e for e in payload if e["name"] == "deep_hierarchy_3seg")
        assert deep["segments"] == ["seg0", "seg1", "seg2"]
        assert deep["placement"] == "both"

    def test_catalog_check_passes_on_the_checked_in_page(self, capsys):
        assert cli_main(["catalog", "--check", str(CATALOG_PAGE)]) == 0

    def test_catalog_check_fails_on_a_stale_page(self, tmp_path, capsys):
        stale = tmp_path / "catalog.md"
        stale.write_text("# outdated\n", encoding="utf-8")
        assert cli_main(["catalog", "--check", str(stale)]) == 1
        assert "out of date" in capsys.readouterr().err

    def test_catalog_write_roundtrips_through_check(self, tmp_path, capsys):
        page = tmp_path / "generated.md"
        assert cli_main(["catalog", "--write", str(page)]) == 0
        assert cli_main(["catalog", "--check", str(page)]) == 0

    def test_sweep_run_and_gc_cli(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        argv = ["sweep", "run", "--scenario", "minimal_1x1", "--store", store, "--json"]
        assert cli_main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["computed"]) == 1

        assert cli_main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["computed"] == [] and len(report["cached"]) == 1

        assert cli_main(["sweep", "gc", "--keep-latest", "1", "--store", store, "--json"]) == 0
        gc_report = json.loads(capsys.readouterr().out)
        assert gc_report["applied"] is False and gc_report["dropped_points"] == []

    def test_sweep_gc_refuses_a_missing_store(self, tmp_path, capsys):
        missing = str(tmp_path / "no-such-store")
        assert cli_main(["sweep", "gc", "--keep-latest", "1", "--store", missing]) == 1
        assert "no result store" in capsys.readouterr().err
        assert not (tmp_path / "no-such-store").exists()  # nothing was created

    def test_sweep_run_rejects_unknown_scenario_pattern(self, tmp_path):
        import pytest

        with pytest.raises(SystemExit, match="no scenario matches"):
            cli_main(["sweep", "run", "--scenario", "nope-*",
                      "--store", str(tmp_path / "s")])
