"""FabricRouter on degenerate topologies the static verifier must handle."""

import pytest

from repro.scenarios.spec import (
    BridgeSpec,
    MasterSpec,
    SegmentSpec,
    SlaveSpec,
    TopologySpec,
)
from repro.soc.fabric import InterconnectFabric
from repro.soc.fabric.routing import RoutingError
from repro.soc.kernel import Simulator
from repro.staticcheck.analyzer import segment_paths


def make_fabric(segments, bridges):
    fabric = InterconnectFabric(Simulator())
    for name in segments:
        fabric.add_segment(name)
    for name, a, b in bridges:
        fabric.add_bridge(name, a, b)
    return fabric


class TestIsolatedSegments:
    def test_path_between_disconnected_segments_raises(self):
        fabric = make_fabric(["s0", "s1"], [])
        fabric.router.rebuild()
        assert fabric.router.path("s0", "s0") == ()
        with pytest.raises(RoutingError, match="no bridge path"):
            fabric.router.path("s0", "s1")

    def test_finalize_refuses_unreachable_regions(self):
        # A region on an island would leave other segments without a proxy
        # entry; finalize surfaces that as a routing error instead of
        # installing a map that silently cannot route.
        fabric = make_fabric(["s0", "s1"], [])
        fabric.add_region("bram", base=0x0, size=0x1000, slave="bram", segment="s1")
        with pytest.raises(RoutingError):
            fabric.finalize()

    def test_try_resolve_returns_none_for_unmapped_addresses(self):
        fabric = make_fabric(["s0"], [])
        fabric.add_region("bram", base=0x0, size=0x1000, slave="bram", segment="s0")
        fabric.finalize()
        assert fabric.router.try_resolve("s0", 0xDEAD_0000) is None

    def test_analyzer_paths_match_router_on_disconnected_graph(self):
        topology = TopologySpec(
            masters=(MasterSpec("cpu0", kind="cpu", segment="s0"),),
            slaves=(SlaveSpec("bram", "bram", base=0x0, size=0x1000, segment="s0"),),
            segments=(SegmentSpec("s0"), SegmentSpec("s1")),
        )
        paths = segment_paths(topology)
        assert paths[("s0", "s0")] == ()
        assert ("s0", "s1") not in paths


class TestMultipleBridgePaths:
    def test_tie_broken_by_bridge_registration_order(self):
        # Two parallel bridges join the same pair of segments; BFS must pick
        # the first-registered one, deterministically.
        fabric = make_fabric(
            ["s0", "s1"],
            [("br_late_name_first", "s0", "s1"), ("br_a", "s0", "s1")],
        )
        fabric.router.rebuild()
        assert fabric.router.path("s0", "s1") == ("br_late_name_first",)

    def test_shortest_path_wins_over_longer_alternative(self):
        # s0 -> s2 directly via br_direct, or via s1 with two hops; the
        # one-bridge route must win regardless of registration order.
        fabric = make_fabric(
            ["s0", "s1", "s2"],
            [("br01", "s0", "s1"), ("br12", "s1", "s2"), ("br_direct", "s0", "s2")],
        )
        fabric.router.rebuild()
        assert fabric.router.path("s0", "s2") == ("br_direct",)
        assert fabric.router.path("s1", "s0") == ("br01",)

    def test_route_to_same_slave_from_both_sides(self):
        fabric = make_fabric(["s0", "s1"], [("br", "s0", "s1")])
        fabric.add_region("shared", base=0x0, size=0x1000, slave="shared", segment="s1")
        fabric.finalize()
        local = fabric.router.resolve("s1", 0x0)
        remote = fabric.router.resolve("s0", 0x0)
        assert local.bridges == () and local.hops == 1
        assert remote.bridges == ("br",) and remote.hops == 2
        assert remote.region.name == "shared"

    def test_analyzer_mirrors_parallel_bridge_tie_break(self):
        topology = TopologySpec(
            masters=(MasterSpec("cpu0", kind="cpu", segment="s0"),),
            slaves=(SlaveSpec("bram", "bram", base=0x0, size=0x1000, segment="s1"),),
            segments=(SegmentSpec("s0"), SegmentSpec("s1")),
            bridges=(BridgeSpec("first", "s0", "s1"), BridgeSpec("second", "s0", "s1")),
        )
        assert segment_paths(topology)[("s0", "s1")] == ("first",)


class TestDenyListedOnlyRoute:
    """A bridge deny list is an *enforcement* property: routing still resolves
    through the bridge (the transaction physically crosses it), and the
    bridge firewall's default-deny is what stops it.  The verifier leans on
    exactly this split."""

    def topology(self):
        return TopologySpec(
            masters=(
                MasterSpec("cpu0", kind="cpu", segment="s0"),
                MasterSpec("dma0", kind="dma", firewall=False, segment="s0",
                           accessible=("bram",)),
            ),
            slaves=(
                SlaveSpec("bram", "bram", base=0x0, size=0x1000, segment="s0"),
                SlaveSpec("vault", "bram", base=0x1000_0000, size=0x1000,
                          segment="s1"),
            ),
            segments=(SegmentSpec("s0"), SegmentSpec("s1")),
            bridges=(BridgeSpec("br", "s0", "s1", deny=("vault",)),),
        )

    def test_route_still_resolves_through_denying_bridge(self):
        fabric = make_fabric(["s0", "s1"], [("br", "s0", "s1")])
        fabric.add_region("vault", base=0x1000_0000, size=0x1000,
                          slave="vault", segment="s1")
        fabric.finalize()
        route = fabric.router.resolve("s0", 0x1000_0000)
        assert route.bridges == ("br",)

    def test_verifier_credits_the_deny_as_enforcement(self):
        from repro.scenarios.spec import ScenarioSpec
        from repro.staticcheck import verify_spec

        spec = ScenarioSpec(
            name="deny_only_route",
            description="bridge deny list guards the only route",
            topology=self.topology(),
            placement="both",
        )
        report = verify_spec(spec)
        assert not report.has_errors
        assert any(
            w.master == "dma0" and w.target == "vault" and w.enforced_by == "lf_br"
            for w in report.coverage
        )
