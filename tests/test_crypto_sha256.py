"""Tests for the from-scratch SHA-256 implementation."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha256 import SHA256, sha256


# NIST FIPS 180-4 / well-known reference digests.
KNOWN_VECTORS = {
    b"": "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
    b"abc": "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
    b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq":
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
    b"The quick brown fox jumps over the lazy dog":
        "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592",
}


class TestKnownVectors:
    @pytest.mark.parametrize("message,expected", sorted(KNOWN_VECTORS.items()))
    def test_reference_digests(self, message, expected):
        assert sha256(message).hex() == expected

    def test_one_million_a(self):
        # The classic NIST long-message vector, built incrementally.
        hasher = SHA256()
        for _ in range(1000):
            hasher.update(b"a" * 1000)
        assert hasher.hexdigest() == (
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        )


class TestIncrementalInterface:
    def test_update_chaining_returns_self(self):
        assert SHA256().update(b"ab").update(b"c").digest() == sha256(b"abc")

    def test_split_updates_equal_single_update(self):
        whole = sha256(b"hello world, this is a split-update test")
        parts = SHA256()
        parts.update(b"hello world, ")
        parts.update(b"this is a ")
        parts.update(b"split-update test")
        assert parts.digest() == whole

    def test_digest_does_not_finalise_state(self):
        hasher = SHA256(b"abc")
        first = hasher.digest()
        second = hasher.digest()
        assert first == second
        hasher.update(b"def")
        assert hasher.digest() == sha256(b"abcdef")

    def test_copy_is_independent(self):
        hasher = SHA256(b"abc")
        clone = hasher.copy()
        clone.update(b"def")
        assert hasher.digest() == sha256(b"abc")
        assert clone.digest() == sha256(b"abcdef")

    def test_update_rejects_str(self):
        with pytest.raises(TypeError):
            SHA256().update("text")  # type: ignore[arg-type]

    def test_digest_size_constants(self):
        assert SHA256.DIGEST_SIZE == 32
        assert SHA256.BLOCK_SIZE == 64
        assert len(sha256(b"x")) == 32


class TestAgainstHashlib:
    @given(st.binary(min_size=0, max_size=500))
    @settings(max_examples=60, deadline=None)
    def test_matches_hashlib_for_random_inputs(self, data):
        assert sha256(data) == hashlib.sha256(data).digest()

    @pytest.mark.parametrize("length", [55, 56, 57, 63, 64, 65, 119, 120, 121, 128])
    def test_padding_boundaries(self, length):
        # Lengths straddling the Merkle-Damgård padding boundaries.
        data = bytes(range(256))[:length] if length <= 256 else b"x" * length
        assert sha256(data) == hashlib.sha256(data).digest()

    @given(st.lists(st.binary(min_size=0, max_size=70), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_incremental_matches_hashlib(self, chunks):
        ours = SHA256()
        theirs = hashlib.sha256()
        for chunk in chunks:
            ours.update(chunk)
            theirs.update(chunk)
        assert ours.digest() == theirs.digest()
