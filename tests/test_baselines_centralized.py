"""Tests for the centralised (SECA-style) baseline and its comparison with
the paper's distributed firewalls."""


from repro.baselines import CentralizedSecurityModule, secure_platform_centralized
from repro.core.alerts import ViolationType
from repro.core.secure import secure_platform
from repro.soc.system import build_reference_platform
from repro.soc.transaction import BusOperation, BusTransaction, TransactionStatus

from tests.conftest import make_security_config


def issue(system, master, txn):
    system.master_ports[master].issue(txn, lambda t: None)
    system.run()
    return txn


def malformed_ip_write(master="cpu1"):
    # Byte-wide write into the IP register file: violates the ADF rule in
    # both architectures.
    return lambda cfg: BusTransaction(
        master=master, operation=BusOperation.WRITE, address=cfg.ip_regs_base,
        width=1, burst_length=1, data=b"\xff",
    )


class TestCentralizedModule:
    def test_legitimate_traffic_allowed(self):
        system = build_reference_platform()
        baseline = secure_platform_centralized(system)
        cfg = system.config
        txn = issue(system, "cpu0", BusTransaction(
            master="cpu0", operation=BusOperation.WRITE, address=cfg.bram_base + 0x40,
            width=4, data=b"\x01\x02\x03\x04"))
        assert txn.status is TransactionStatus.COMPLETED
        assert baseline.monitor.count() == 0
        assert baseline.module.evaluations >= 1

    def test_violation_detected_but_only_at_the_slave_side(self):
        system = build_reference_platform()
        baseline = secure_platform_centralized(system)
        txn = issue(system, "cpu1", malformed_ip_write()(system.config))
        assert txn.status is TransactionStatus.BLOCKED_AT_SLAVE
        assert baseline.monitor.count(ViolationType.BAD_DATA_FORMAT) == 1
        # Centralisation's weakness: the malicious transaction did occupy the bus.
        assert "cpu1" in system.bus.monitor.per_master

    def test_concurrent_masters_all_get_checked(self):
        system = build_reference_platform()
        baseline = secure_platform_centralized(system)
        cfg = system.config
        # Three masters issue simultaneously; every access goes through the SEM.
        for master in ("cpu0", "cpu1", "cpu2"):
            txn = BusTransaction(master=master, operation=BusOperation.READ,
                                 address=cfg.bram_base, width=4)
            system.master_ports[master].issue(txn, lambda t: None)
        system.run()
        assert baseline.module.evaluations == 3
        # The single shared bus already serialises the requests, so the SEM
        # sees them back to back; its queueing accounting stays consistent.
        assert baseline.module.average_queue_delay() >= 0.0
        assert baseline.module.total_queue_cycles == sum(
            [baseline.module.stats.get("queue_cycles", 0)]
        )

    def test_sem_queueing_when_checks_overlap(self):
        """Directly exercise the SEM's single-port serialisation (the bus
        serialises traffic in the reference platform, so this drives the
        module standalone as a pipelined interconnect would)."""
        from repro.core.policy import ConfigurationMemory, SecurityPolicy
        from repro.soc.kernel import Simulator

        sim = Simulator()
        rules = ConfigurationMemory("cfg", capacity=4)
        rules.add(0x0, 0x1000, SecurityPolicy(spi=1))
        sem = CentralizedSecurityModule(sim, "sem", rules)
        txn = BusTransaction(master="a", operation=BusOperation.READ, address=0x0)
        allowed_1, latency_1, _ = sem.evaluate(txn)
        allowed_2, latency_2, _ = sem.evaluate(txn)
        assert allowed_1 and allowed_2
        assert latency_1 == sem.check_latency
        # The second evaluation arrives while the first still occupies the
        # module, so it pays the queueing delay on top of the check.
        assert latency_2 == 2 * sem.check_latency
        assert sem.stats["queued_evaluations"] == 1

    def test_summary_and_area_estimate(self):
        system = build_reference_platform()
        baseline = secure_platform_centralized(system)
        issue(system, "cpu1", malformed_ip_write()(system.config))
        summary = baseline.summary()
        assert summary["evaluations"] >= 1 and summary["violations"] == 1
        area = baseline.estimated_area()
        # One central checker costs less than six distributed ones plus an LCF.
        from repro.metrics.area import AreaModel

        distributed = AreaModel().platform_with_firewalls(n_local_firewalls=6)
        assert area.slice_luts < distributed.slice_luts


class TestDistributedVsCentralized:
    def test_containment_difference(self):
        """Same attack, same detection -- but only the distributed design keeps
        the malicious transaction off the shared bus."""
        cfg_factory = malformed_ip_write()

        distributed_system = build_reference_platform()
        secure_platform(distributed_system, make_security_config())
        d_txn = issue(distributed_system, "cpu1", cfg_factory(distributed_system.config))

        centralized_system = build_reference_platform()
        secure_platform_centralized(centralized_system)
        c_txn = issue(centralized_system, "cpu1", cfg_factory(centralized_system.config))

        assert d_txn.status is TransactionStatus.BLOCKED_AT_MASTER
        assert c_txn.status is TransactionStatus.BLOCKED_AT_SLAVE
        assert "cpu1" not in distributed_system.bus.monitor.per_master
        assert "cpu1" in centralized_system.bus.monitor.per_master

    def test_flood_reaches_bus_only_in_centralized_design(self):
        from repro.attacks import DoSFloodAttack

        distributed_system = build_reference_platform()
        d_security = secure_platform(distributed_system, make_security_config(flood_threshold=10))
        d_result = DoSFloodAttack(n_requests=60).run(distributed_system, d_security)

        centralized_system = build_reference_platform()
        secure_platform_centralized(centralized_system)
        c_before = centralized_system.bus.monitor.count()
        DoSFloodAttack(n_requests=60).run(centralized_system, None)
        c_reached = centralized_system.bus.monitor.count() - c_before

        assert d_result.extra["reached_bus"] < 60          # throttled at the source
        assert c_reached == 60                              # all of it hit the bus
        assert d_result.extra["reached_bus"] < c_reached
