"""Unit tests for the stateful protocol devices behind the attack chains.

Each device is driven directly through its ``access`` path (the same entry
the bus uses), so these tests pin the protocol state machines independently
of any firewall or scenario wiring.
"""

from __future__ import annotations

import pytest

from repro.soc.devices import (
    DmaDescriptorRing,
    FirmwareUpdateIP,
    SecureBootSequencer,
    derive_boot_keys,
)
from repro.soc.kernel import Simulator
from repro.soc.transaction import BusOperation, BusTransaction


def _write(device, index: int, value: int, master: str = "cpu0") -> None:
    device.access(BusTransaction(
        master=master,
        operation=BusOperation.WRITE,
        address=device.base + 4 * index,
        data=(value & 0xFFFFFFFF).to_bytes(4, "little"),
    ))


def _read(device, index: int, master: str = "cpu0") -> int:
    txn = BusTransaction(
        master=master,
        operation=BusOperation.READ,
        address=device.base + 4 * index,
    )
    _, data = device.access(txn)
    return int.from_bytes(data[:4], "little")


# -- firmware update state machine ------------------------------------------------


def _firmware() -> FirmwareUpdateIP:
    return FirmwareUpdateIP(Simulator(), "fw0", base=0x4000_0000)


def test_firmware_happy_path_commits():
    fw = _firmware()
    _write(fw, FirmwareUpdateIP.REG_CTRL, FirmwareUpdateIP.UNLOCK_MAGIC)
    _write(fw, FirmwareUpdateIP.REG_CTRL, FirmwareUpdateIP.ARM_MAGIC)
    _write(fw, FirmwareUpdateIP.STAGING_BASE, 0x1234_5678)
    _write(fw, FirmwareUpdateIP.REG_CTRL, FirmwareUpdateIP.COMMIT_MAGIC)
    assert fw.commits == 1
    assert fw.stats["firmware_commits"] == 1
    assert fw.state == FirmwareUpdateIP.ST_LOCKED  # re-locks after commit
    assert not fw.error


def test_firmware_staging_outside_armed_window_is_a_violation():
    fw = _firmware()
    _write(fw, FirmwareUpdateIP.STAGING_BASE, 0xBAD, master="cpu1")
    assert fw.error
    assert fw.stats["protocol_violations"] == 1
    assert fw.stats["last_violation_by"] == "cpu1"
    # The word did not land in the staging buffer.
    assert _read(fw, FirmwareUpdateIP.STAGING_BASE) == 0


def test_firmware_out_of_order_magic_resets_to_locked():
    fw = _firmware()
    _write(fw, FirmwareUpdateIP.REG_CTRL, FirmwareUpdateIP.UNLOCK_MAGIC)
    # COMMIT without ARM (and without staged words) is a protocol error.
    _write(fw, FirmwareUpdateIP.REG_CTRL, FirmwareUpdateIP.COMMIT_MAGIC)
    assert fw.commits == 0
    assert fw.state == FirmwareUpdateIP.ST_LOCKED
    status = _read(fw, FirmwareUpdateIP.REG_STATUS)
    assert status & FirmwareUpdateIP.ERROR_FLAG


def test_firmware_commit_needs_staged_words():
    fw = _firmware()
    _write(fw, FirmwareUpdateIP.REG_CTRL, FirmwareUpdateIP.UNLOCK_MAGIC)
    _write(fw, FirmwareUpdateIP.REG_CTRL, FirmwareUpdateIP.ARM_MAGIC)
    _write(fw, FirmwareUpdateIP.REG_CTRL, FirmwareUpdateIP.COMMIT_MAGIC)
    assert fw.commits == 0 and fw.error


def test_firmware_status_is_read_only():
    fw = _firmware()
    _write(fw, FirmwareUpdateIP.REG_STATUS, 0xFFFF)
    assert fw.error
    assert _read(fw, FirmwareUpdateIP.REG_STATUS) != 0xFFFF


# -- DMA descriptor ring ----------------------------------------------------------


def _ring() -> DmaDescriptorRing:
    return DmaDescriptorRing(Simulator(), "ring0", base=0x4100_0000)


def _program_descriptor(ring, slot: int, src: int, dst: int, length: int) -> None:
    start = DmaDescriptorRing.DESC_BASE + DmaDescriptorRing.DESC_WORDS * slot
    _write(ring, start + 0, src)
    _write(ring, start + 1, dst)
    _write(ring, start + 2, length)
    _write(ring, start + 3, 1)


def test_ring_doorbell_latches_head_descriptor():
    ring = _ring()
    _program_descriptor(ring, 0, 0x1000, 0x9000_0000, 64)
    _write(ring, DmaDescriptorRing.REG_HEAD, 0)
    _write(ring, DmaDescriptorRing.REG_DOORBELL, 1)
    assert ring.latched == [(0x1000, 0x9000_0000, 64, 1)]
    assert ring.busy
    assert ring.stats["descriptors_latched"] == 1


def test_ring_rejects_reprogramming_while_busy():
    ring = _ring()
    _program_descriptor(ring, 0, 0x1000, 0x2000, 64)
    _write(ring, DmaDescriptorRing.REG_DOORBELL, 1)
    assert ring.busy
    before = ring.descriptor(0)
    _write(ring, DmaDescriptorRing.DESC_BASE + 1, 0xDEAD_0000)  # rewrite dst
    _write(ring, DmaDescriptorRing.REG_HEAD, 1)
    _write(ring, DmaDescriptorRing.REG_DOORBELL, 1)  # double doorbell
    assert ring.descriptor(0) == before
    assert ring.stats["protocol_violations"] == 3
    # Acknowledge completion: the ring goes idle and accepts writes again.
    _write(ring, DmaDescriptorRing.REG_STATUS, DmaDescriptorRing.ST_IDLE)
    assert not ring.busy
    assert ring.stats["completions_acked"] == 1


def test_ring_zero_length_descriptor_does_not_launch():
    ring = _ring()
    _write(ring, DmaDescriptorRing.REG_DOORBELL, 1)
    assert ring.latched == []
    assert not ring.busy
    assert ring.stats["protocol_violations"] == 1


# -- secure boot sequencer --------------------------------------------------------


def _boot(**kwargs) -> SecureBootSequencer:
    return SecureBootSequencer(Simulator(), "boot0", base=0x4200_0000, **kwargs)


def test_boot_keys_are_wiped_once_provisioned():
    boot = _boot()
    assert boot.stage == SecureBootSequencer.PROVISIONED
    for index in range(SecureBootSequencer.KEY_BASE, boot.n_registers):
        assert _read(boot, index) == 0
    assert boot.leaks == []  # zeroed reads are not leaks


def test_boot_rollback_without_debug_trips_tamper():
    boot = _boot()
    _write(boot, SecureBootSequencer.REG_STAGE, 0, master="cpu1")
    assert boot.tampered
    assert _read(boot, SecureBootSequencer.REG_TAMPER) == 1
    assert boot.stats["rollback_attempts"] == 1
    assert _read(boot, SecureBootSequencer.KEY_BASE) == 0
    assert boot.leaks == []


def test_boot_debug_magic_is_inert_when_not_compiled_in():
    boot = _boot(debug_unlock=False)
    _write(boot, SecureBootSequencer.REG_DEBUG, SecureBootSequencer.DEBUG_MAGIC)
    assert not boot.debug_mode
    _write(boot, SecureBootSequencer.REG_STAGE, 0)
    assert boot.tampered  # rollback still tampers


def test_boot_debug_backdoor_restores_keys_and_records_leaks():
    boot = _boot(debug_unlock=True)
    _write(boot, SecureBootSequencer.REG_DEBUG, SecureBootSequencer.DEBUG_MAGIC)
    assert boot.debug_mode and boot.stats["debug_unlocks"] == 1
    _write(boot, SecureBootSequencer.REG_STAGE, 0)
    assert not boot.tampered
    assert boot.stats["debug_rollbacks"] == 1
    expected = derive_boot_keys(0xB007_0001, boot.n_keys)
    assert _read(boot, SecureBootSequencer.KEY_BASE, master="cpu1") == expected[0]
    assert boot.leaks == [("cpu1", SecureBootSequencer.KEY_BASE)]
    assert boot.stats["boot_key_leaks"] == 1


def test_boot_tamper_latch_disables_the_backdoor():
    boot = _boot(debug_unlock=True)
    _write(boot, SecureBootSequencer.REG_STAGE, 0)  # tamper first
    assert boot.tampered
    _write(boot, SecureBootSequencer.REG_DEBUG, SecureBootSequencer.DEBUG_MAGIC)
    _write(boot, SecureBootSequencer.REG_STAGE, 1)
    _write(boot, SecureBootSequencer.REG_STAGE, 0)
    assert _read(boot, SecureBootSequencer.KEY_BASE) == 0  # keys stay wiped


def test_boot_key_bank_is_read_only():
    boot = _boot()
    _write(boot, SecureBootSequencer.KEY_BASE, 0x1234)
    assert boot.stats["protocol_violations"] == 1
    assert _read(boot, SecureBootSequencer.KEY_BASE) == 0


def test_derive_boot_keys_is_deterministic_and_non_zero():
    a = derive_boot_keys(7, 8)
    b = derive_boot_keys(7, 8)
    assert a == b
    assert all(k != 0 for k in a)
    assert derive_boot_keys(8, 8) != a


def test_device_constructors_reject_too_small_register_files():
    sim = Simulator()
    with pytest.raises(ValueError):
        FirmwareUpdateIP(sim, "fw", base=0, n_registers=2)
    with pytest.raises(ValueError):
        DmaDescriptorRing(sim, "ring", base=0, n_registers=4)
    with pytest.raises(ValueError):
        SecureBootSequencer(sim, "boot", base=0, n_registers=4)
