"""Tests for the processor model and the reference platform builder."""

import pytest

from repro.soc.processor import MemoryOperation, OperationKind, ProcessorProgram
from repro.soc.system import SoCConfig, build_reference_platform


class TestMemoryOperation:
    def test_compute_factory(self):
        op = MemoryOperation.compute(25)
        assert op.kind is OperationKind.COMPUTE
        assert op.compute_cycles == 25
        assert not op.is_memory_access
        with pytest.raises(ValueError):
            MemoryOperation.compute(-1)

    def test_read_factory(self):
        op = MemoryOperation.read(0x100, width=2, burst_length=4)
        assert op.kind is OperationKind.READ
        assert op.is_memory_access

    def test_write_factory_derives_burst(self):
        op = MemoryOperation.write(0x100, bytes(16))
        assert op.burst_length == 4
        with pytest.raises(ValueError):
            MemoryOperation.write(0x100, b"abc", width=4)


class TestProcessorProgram:
    def build(self):
        return ProcessorProgram(
            [
                MemoryOperation.compute(10),
                MemoryOperation.write(0x0, bytes(4)),
                MemoryOperation.read(0x0),
                MemoryOperation.compute(5),
            ],
            name="p",
        )

    def test_counts(self):
        program = self.build()
        assert len(program) == 4
        assert program.memory_operation_count() == 2
        assert program.compute_cycle_count() == 15
        assert program.bytes_transferred() == 8

    def test_append_extend_chaining(self):
        program = ProcessorProgram()
        program.append(MemoryOperation.compute(1)).extend([MemoryOperation.read(0)])
        assert len(program) == 2


class TestProcessorExecution:
    def test_program_runs_to_completion(self):
        system = build_reference_platform()
        cfg = system.config
        program = ProcessorProgram(
            [
                MemoryOperation.write(cfg.bram_base + 0x40, b"\x11\x22\x33\x44"),
                MemoryOperation.compute(50),
                MemoryOperation.read(cfg.bram_base + 0x40),
            ]
        )
        cpu = system.processors["cpu0"]
        cpu.load_program(program)
        cpu.start()
        system.run()
        assert cpu.done
        assert cpu.execution_cycles > 50
        assert cpu.transactions[-1].data == b"\x11\x22\x33\x44"
        assert cpu.stats["completed_accesses"] == 2
        assert cpu.computation_cycles() == 50
        assert cpu.communication_cycles() > 0

    def test_cannot_start_twice_or_reload_after_start(self):
        system = build_reference_platform()
        cpu = system.processors["cpu0"]
        cpu.load_program(ProcessorProgram([MemoryOperation.compute(1)]))
        cpu.start()
        with pytest.raises(RuntimeError):
            cpu.start()
        with pytest.raises(RuntimeError):
            cpu.load_program(ProcessorProgram())

    def test_on_finished_callback(self):
        system = build_reference_platform()
        finished = []
        cpu = system.processors["cpu1"]
        cpu.on_finished = finished.append
        cpu.load_program(ProcessorProgram([MemoryOperation.compute(5)]))
        cpu.start()
        system.run()
        assert finished == [cpu]

    def test_empty_program_finishes_immediately(self):
        system = build_reference_platform()
        cpu = system.processors["cpu0"]
        cpu.start()
        system.run()
        assert cpu.done
        assert cpu.execution_cycles == 0

    def test_three_cpus_share_the_bus(self):
        system = build_reference_platform()
        cfg = system.config
        programs = {}
        for index in range(3):
            programs[f"cpu{index}"] = ProcessorProgram(
                [MemoryOperation.read(cfg.bram_base + 0x10 * index) for _ in range(5)]
            )
        system.load_programs(programs)
        system.start_all()
        system.run()
        assert system.all_done()
        assert system.bus.monitor.count() == 15
        # All three masters appear on the bus.
        assert set(system.bus.monitor.per_master) == {"cpu0", "cpu1", "cpu2"}


class TestReferencePlatform:
    def test_default_topology_matches_paper_figure1(self):
        system = build_reference_platform()
        assert len(system.processors) == 3
        assert system.dma is not None
        assert set(system.memories) == {"bram", "ddr"}
        assert set(system.ips) == {"ip0"}
        topology = system.describe_topology()
        assert len(topology["masters"]) == 4   # 3 CPUs + DMA
        assert len(topology["slaves"]) == 3    # BRAM, DDR, IP
        external = [r for r in topology["regions"] if r["external"]]
        assert [r["name"] for r in external] == ["ddr"]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            build_reference_platform(SoCConfig(n_processors=0))
        with pytest.raises(ValueError):
            build_reference_platform(SoCConfig(bram_size=0))

    def test_custom_processor_count(self):
        system = build_reference_platform(SoCConfig(n_processors=5, with_dma=False))
        assert len(system.processors) == 5
        assert system.dma is None

    def test_load_programs_rejects_unknown_cpu(self):
        system = build_reference_platform()
        with pytest.raises(KeyError):
            system.load_programs({"cpu9": ProcessorProgram()})

    def test_execution_cycles_zero_before_running(self):
        system = build_reference_platform()
        assert system.execution_cycles() == 0

    def test_processor_accessor(self):
        system = build_reference_platform()
        assert system.processor(2) is system.processors["cpu2"]
