"""Service layer: the ``repro serve`` daemon, its protocol and its client.

The properties under test are the fabric's contract (``docs/service.md``):

* a submission already in the store returns ``cached`` without touching the
  worker pool; resubmitting a finished grid computes nothing,
* two clients concurrently submitting overlapping grids compute each point
  **exactly once** (one job ``computed``, the other ``coalesced``/
  ``cached``), and the shared store digest equals a serial single-client
  run byte for byte,
* ``SIGKILL`` the daemon mid-sweep, restart it, resubmit — the final store
  digest is identical to an uninterrupted run (per-point durability).
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from types import SimpleNamespace

import pytest

from repro.service import (
    ProtocolError,
    ReproDaemon,
    ServiceClient,
    ServiceError,
    wait_for_socket,
)
from repro.service import protocol
from repro.sweep import ResultStore, SweepRunner, SweepSpec

#: The grid used throughout: two cheap points of the minimal scenario.
GRID = {"scenarios": ["minimal_1x1"], "seeds": [0, 1]}
GRID_SPEC = SweepSpec(scenarios=("minimal_1x1",), seeds=(0, 1))


def serial_digest(tmp_path, spec: SweepSpec = GRID_SPEC) -> str:
    """Digest of a plain single-process SweepRunner run (the reference)."""
    store = ResultStore(tmp_path / "serial-reference")
    SweepRunner(spec, store).run()
    return store.digest()


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_sweep_spec_round_trips_through_json(self):
        spec = SweepSpec(scenarios=("minimal_1x1",), seeds=(0, 1, 2),
                         engines=(None, "vector"))
        wire = json.loads(protocol.encode_line(protocol.sweep_spec_to_dict(spec)))
        assert protocol.sweep_spec_from_dict(wire) == spec

    def test_unknown_sweep_field_is_rejected(self):
        with pytest.raises(ProtocolError, match="sedes"):
            protocol.sweep_spec_from_dict({"sedes": [0]})  # typo'd axis

    def test_scalar_axis_values_are_promoted(self):
        spec = protocol.sweep_spec_from_dict({"scenarios": "minimal_1x1", "seeds": 3})
        assert spec == SweepSpec(scenarios=("minimal_1x1",), seeds=(3,))

    def test_experiment_submission_is_a_one_point_sweep(self):
        spec = protocol.experiment_to_sweep_spec({"scenario": "minimal_1x1", "seed": 7})
        assert spec.plan().points == SweepSpec(
            scenarios=("minimal_1x1",), seeds=(7,)
        ).plan().points

    def test_experiment_submission_requires_a_scenario(self):
        with pytest.raises(ProtocolError, match="scenario"):
            protocol.experiment_to_sweep_spec({"seed": 1})

    def test_submit_carries_exactly_one_shape(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            protocol.submission_to_sweep_spec({"op": "submit"})
        with pytest.raises(ProtocolError, match="exactly one"):
            protocol.submission_to_sweep_spec(
                {"op": "submit", "sweep": {}, "experiment": {}}
            )

    def test_event_kinds_are_a_closed_set(self):
        event = protocol.make_event(protocol.POINT_DONE, 3, point_id="p")
        assert event == {"kind": "point.done", "cycle": 3,
                         "source": "repro-daemon", "data": {"point_id": "p"}}
        with pytest.raises(ValueError):
            protocol.make_event("point.invented", 1)

    def test_unknown_op_is_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            protocol.parse_request(b'{"op": "reboot"}\n')
        with pytest.raises(ProtocolError):
            protocol.parse_request(b"not json\n")


# ---------------------------------------------------------------------------
# Daemon (in-thread) fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def served(tmp_path):
    """A live daemon on a temp socket, torn down after the test."""
    sock = tmp_path / "daemon.sock"
    daemon = ReproDaemon(
        tmp_path / "store", sock, workers=2,
        trace_path=tmp_path / "trace.jsonl", http_port=0,
    )
    thread = threading.Thread(target=lambda: asyncio.run(daemon.run()), daemon=True)
    thread.start()
    wait_for_socket(sock)
    env = SimpleNamespace(
        daemon=daemon, socket=sock,
        store_dir=tmp_path / "store", trace=tmp_path / "trace.jsonl",
    )
    yield env
    try:
        ServiceClient(sock).shutdown()
    except (ServiceError, OSError):
        pass  # the test already stopped it
    thread.join(timeout=15)
    assert not thread.is_alive(), "daemon failed to shut down"


class TestDaemonRoundTrip:
    def test_submit_then_cached_resubmit(self, served, tmp_path):
        client = ServiceClient(served.socket)
        assert client.ping()["protocol"] == protocol.PROTOCOL_VERSION

        first = client.submit(sweep=GRID)
        assert first["job"]["state"] == "done"
        assert first["job"]["counts"] == {
            "computed": 2, "coalesced": 0, "cached": 0, "failed": 0
        }
        kinds = [e["kind"] for e in first["events"]]
        assert kinds[0] == protocol.JOB_ACCEPTED
        assert kinds[-1] == protocol.JOB_DONE
        assert kinds.count(protocol.POINT_DONE) == 2

        # The whole grid is now in the shared store: the resubmission is
        # served without touching the pool (no point.done events at all).
        second = client.submit(sweep=GRID)
        assert second["job"]["counts"] == {
            "computed": 0, "coalesced": 0, "cached": 2, "failed": 0
        }
        assert [e["kind"] for e in second["events"]] == [
            protocol.JOB_ACCEPTED, protocol.POINT_CACHED,
            protocol.POINT_CACHED, protocol.JOB_DONE,
        ]
        assert second["job"]["store_digest"] == first["job"]["store_digest"]
        assert first["job"]["store_digest"] == serial_digest(tmp_path)

    def test_experiment_submission_and_status(self, served):
        client = ServiceClient(served.socket)
        out = client.submit(experiment={"scenario": "minimal_1x1", "seed": 0})
        assert out["job"]["state"] == "done"
        assert out["job"]["counts"]["computed"] == 1

        status = client.status()
        assert status["store"]["entries"] == 1
        assert status["inflight"] == 0
        assert [j["state"] for j in status["jobs"]] == ["done"]

    def test_malformed_submissions_are_refused_not_fatal(self, served):
        client = ServiceClient(served.socket)
        with pytest.raises(ServiceError, match="exactly one"):
            client.submit()
        with pytest.raises(ServiceError, match="unknown sweep field"):
            client.submit(sweep={"sedes": [0]})
        # The daemon survived both refusals.
        assert client.ping()["ok"]

    def test_trace_file_follows_the_jsonl_wire_schema(self, served):
        ServiceClient(served.socket).submit(sweep=GRID)
        lines = [json.loads(l) for l in served.trace.read_text().splitlines()]
        assert lines, "daemon wrote no trace"
        for event in lines:
            assert set(event) == {"kind", "cycle", "source", "data"}
            assert event["kind"] in protocol.SERVICE_EVENT_KINDS
            assert event["source"] == protocol.EVENT_SOURCE
        # cycle is the daemon's monotonic event sequence.
        cycles = [event["cycle"] for event in lines]
        assert cycles == sorted(cycles)

    def test_http_shim_serves_ping_status_submit(self, served):
        import urllib.request

        port = served.daemon.http_port
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/ping", timeout=10) as r:
            assert json.loads(r.read())["protocol"] == protocol.PROTOCOL_VERSION
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/submit",
            data=json.dumps({"experiment": {"scenario": "minimal_1x1"}}).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=120) as r:
            job = json.loads(r.read())["job"]
        assert job["state"] == "done" and job["counts"]["computed"] == 1
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/status", timeout=10) as r:
            assert json.loads(r.read())["store"]["entries"] == 1


class TestConcurrentClients:
    def test_overlapping_sweeps_compute_each_point_exactly_once(
        self, served, tmp_path
    ):
        def submit():
            return ServiceClient(served.socket).submit(sweep=GRID)

        with ThreadPoolExecutor(2) as pool:
            a, b = list(pool.map(lambda fn: fn(), [submit, submit]))

        ca, cb = a["job"]["counts"], b["job"]["counts"]
        # Exactly one execution per point across both jobs; the other job
        # either coalesced onto the in-flight future or hit the store.
        assert ca["computed"] + cb["computed"] == 2
        assert (ca["coalesced"] + ca["cached"]
                + cb["coalesced"] + cb["cached"]) == 2
        assert ca["failed"] == cb["failed"] == 0

        digest = a["job"]["store_digest"]
        assert digest == b["job"]["store_digest"]
        assert digest == serial_digest(tmp_path)
        # The store holds each point once (no duplicate executions).
        assert len(ResultStore(served.store_dir)) == 2


# ---------------------------------------------------------------------------
# Kill/resume (real subprocess daemon)
# ---------------------------------------------------------------------------


def _spawn_daemon(tmp_path, sock):
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", str(sock), "--store", str(tmp_path / "store"),
         "--workers", "2", "--trace", str(tmp_path / "trace.jsonl")],
        env=env, cwd=str(tmp_path),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    wait_for_socket(sock, timeout=30.0)
    return proc


class TestKillResume:
    def test_sigkilled_daemon_resumes_to_an_identical_store(self, tmp_path):
        grid = {"scenarios": ["minimal_1x1"], "seeds": [0, 1, 2, 3]}
        sock = tmp_path / "daemon.sock"
        results = tmp_path / "store" / "results.jsonl"

        proc = _spawn_daemon(tmp_path, sock)
        try:
            accepted = ServiceClient(sock).submit(sweep=grid, wait=False)
            assert accepted["accepted"]["missing"] == 4
            # Wait until at least one point landed durably, then SIGKILL.
            deadline = time.monotonic() + 120
            while not (results.exists() and results.stat().st_size):
                assert time.monotonic() < deadline, "no point completed in time"
                time.sleep(0.05)
        finally:
            proc.kill()
            proc.wait(timeout=30)

        partial = ResultStore(tmp_path / "store")
        assert 1 <= len(partial) <= 4  # something survived, likely not all

        # Restart on the same socket path (stale socket file) + store.
        proc = _spawn_daemon(tmp_path, sock)
        try:
            client = ServiceClient(sock)
            resumed = client.submit(sweep=grid)
            counts = resumed["job"]["counts"]
            assert resumed["job"]["state"] == "done"
            assert counts["cached"] == len(partial)
            assert counts["computed"] == 4 - len(partial)
            client.shutdown()
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=60)

        spec = SweepSpec(scenarios=("minimal_1x1",), seeds=(0, 1, 2, 3))
        assert ResultStore(tmp_path / "store").digest() == serial_digest(
            tmp_path, spec
        )


# ---------------------------------------------------------------------------
# CLI client commands against a live daemon
# ---------------------------------------------------------------------------


class TestCli:
    def test_submit_and_status_round_trip(self, served, capsys):
        from repro.api.cli import main

        assert main(["submit", "--fast", "--socket", str(served.socket)]) == 0
        out = capsys.readouterr().out
        assert "computed=1" in out and "store digest" in out

        assert main(["submit", "--fast", "--socket", str(served.socket),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["job"]["counts"]["cached"] == 1

        assert main(["status", "--socket", str(served.socket)]) == 0
        out = capsys.readouterr().out
        assert "store: 1 results" in out

    def test_no_wait_returns_on_acceptance(self, served, capsys):
        from repro.api.cli import main

        assert main(["submit", "--fast", "--socket", str(served.socket),
                     "--no-wait"]) == 0
        assert "accepted job-" in capsys.readouterr().out

    def test_client_commands_fail_cleanly_without_a_daemon(self, tmp_path, capsys):
        from repro.api.cli import main

        missing = str(tmp_path / "nope.sock")
        assert main(["status", "--socket", missing]) == 1
        assert main(["submit", "--fast", "--socket", missing]) == 1
        err = capsys.readouterr().err
        assert "repro serve" in err
