"""Cross-scenario comparison tables: golden rendering + real-result smoke."""

from __future__ import annotations

import pathlib

from repro.analysis.compare import (
    area_rows,
    comparison_report,
    detection_rows,
    hop_latency_rows,
    placement_rows,
    render_detection,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _entry(point_id, *, campaign=None, per_hop=None, split=None, area=None):
    return {
        "point_id": point_id,
        "result": {
            "campaign": campaign,
            "latency": {"per_hop": per_hop or {}, "placement_split": split or []},
            "area": area,
        },
    }


#: Synthetic, fully deterministic entry set exercising every table.
ENTRIES = [
    _entry(
        "flat/seed=0",
        campaign={"summary": {"attacks": 4, "prevented": 4, "detected": 3}},
        per_hop={"bus": 240},
        split=[
            {"placement": "leaf_master", "firewalls": 2, "evaluations": 50, "cycles": 600},
            {"placement": "bridge", "firewalls": 0, "evaluations": 0, "cycles": 0},
        ],
        area={
            "resources": {
                "slice_registers": 13000, "slice_luts": 15000,
                "lut_ff_pairs": 18000, "brams": 55,
            },
            "overhead_vs_baseline": {"slice_luts": 0.25},
        },
    ),
    _entry(
        "fabric/seed=0",
        campaign={"summary": {"attacks": 3, "prevented": 3, "detected": 3}},
        per_hop={"bus:seg_a": 120, "bridge:br0": 40},
        split=[
            {"placement": "leaf_master", "firewalls": 3, "evaluations": 90, "cycles": 1080},
            {"placement": "bridge", "firewalls": 1, "evaluations": 30, "cycles": 360},
        ],
        area={
            "resources": {
                "slice_registers": 15500, "slice_luts": 19000,
                "lut_ff_pairs": 21000, "brams": 63,
            },
            "overhead_vs_baseline": {"slice_luts": 0.472},
        },
    ),
    _entry("no-campaign/seed=0"),  # contributes to no table
]


class TestRows:
    def test_detection_rows(self):
        headers, rows = detection_rows(ENTRIES)
        assert headers[0] == "point"
        assert [r[0] for r in rows] == ["fabric/seed=0", "flat/seed=0"]
        assert rows[1][1:] == [4, 4, 3, "75%"]

    def test_hop_latency_rows_take_the_stage_union(self):
        headers, rows = hop_latency_rows(ENTRIES)
        assert headers == ["point", "bridge:br0", "bus", "bus:seg_a", "total"]
        assert rows[0][-1] == 160 and rows[1][-1] == 240
        assert rows[1][1] is None  # flat bus has no bridge column entry

    def test_placement_rows_compute_mean_cycles(self):
        _, rows = placement_rows(ENTRIES)
        bridge = next(r for r in rows if r[0] == "fabric/seed=0" and r[1] == "bridge")
        assert bridge[5] == "12.0"
        empty = next(r for r in rows if r[0] == "flat/seed=0" and r[1] == "bridge")
        assert empty[5] == "-"

    def test_area_rows_format_overhead(self):
        _, rows = area_rows(ENTRIES)
        assert rows[1][0] == "flat/seed=0" and rows[1][-1] == "+25.0%"

    def test_empty_entry_set_renders_placeholder(self):
        assert "(no data)" in render_detection([])


class TestGolden:
    def test_comparison_report_matches_golden_file(self):
        golden = (GOLDEN_DIR / "comparison_report.txt").read_text(encoding="utf-8")
        assert comparison_report(ENTRIES) + "\n" == golden


class TestRealResults:
    def test_report_over_a_real_experiment_result(self):
        from repro.api import Experiment

        result = Experiment.from_scenario("minimal_1x1").run().to_dict()
        report = comparison_report([{"point_id": "minimal_1x1/live", "result": result}])
        assert "minimal_1x1/live" in report
        assert "Attack detection by scenario" in report
        assert "Modelled area by scenario" in report
