"""Tests for the attack injection framework and the campaign harness."""

import pytest

from repro.attacks import (
    AttackCampaign,
    AttackOutcome,
    AttackResult,
    AttackerMaster,
    DoSFloodAttack,
    ExfiltrationAttack,
    HijackedIPAttack,
    RelocationAttack,
    ReplayAttack,
    SensitiveRegisterProbe,
    SpoofingAttack,
)
from repro.attacks.campaign import default_platform_factory
from repro.core.secure import SecurityConfiguration

from tests.conftest import make_security_config


class TestAttackResult:
    @pytest.mark.parametrize(
        "achieved,detected,outcome",
        [
            (True, False, AttackOutcome.SUCCEEDED),
            (True, True, AttackOutcome.DETECTED_BUT_EFFECTIVE),
            (False, True, AttackOutcome.BLOCKED),
            (False, False, AttackOutcome.FAILED_SILENTLY),
        ],
    )
    def test_outcome_classification(self, achieved, detected, outcome):
        result = AttackResult(attack="x", goal="g", achieved_goal=achieved, detected=detected)
        assert result.outcome is outcome

    def test_describe(self):
        result = AttackResult(attack="spoofing", goal="g", achieved_goal=False,
                              detected=True, detection_cycle=99, alerts=2)
        text = result.describe()
        assert "spoofing" in text and "blocked" in text and "99" in text


class TestAttackerMaster:
    def test_injector_with_new_port(self, plain_platform):
        system = plain_platform
        attacker = AttackerMaster.with_new_port(system.sim, system.bus, "attacker")
        system.bram.poke(0x40, b"\x01\x02\x03\x04")
        attacker.inject_read(0x40)
        system.run()
        assert attacker.success_count() == 1
        assert attacker.leaked_data() == [b"\x01\x02\x03\x04"]

    def test_injector_write(self, plain_platform):
        system = plain_platform
        attacker = AttackerMaster.with_new_port(system.sim, system.bus)
        attacker.inject_write(0x80, b"\xde\xad\xbe\xef")
        system.run()
        assert system.bram.peek(0x80, 4) == b"\xde\xad\xbe\xef"

    def test_flood_schedules_requests(self, plain_platform):
        system = plain_platform
        attacker = AttackerMaster.with_new_port(system.sim, system.bus)
        attacker.flood(0x0, count=20, interval=2)
        system.run()
        assert attacker.stats["injected"] == 20
        assert attacker.success_count() == 20


class TestMemoryAttacks:
    def test_spoofing_succeeds_without_protection(self, platform_factory):
        system, _ = platform_factory(protected=False)
        result = SpoofingAttack().run(system, None)
        assert result.achieved_goal and not result.detected

    def test_spoofing_blocked_and_detected_with_protection(self, platform_factory):
        system, security = platform_factory(protected=True)
        result = SpoofingAttack().run(system, security)
        assert not result.achieved_goal
        assert result.detected
        assert result.outcome is AttackOutcome.BLOCKED

    def test_replay_blocked_with_protection(self, platform_factory):
        system, security = platform_factory(protected=True)
        result = ReplayAttack().run(system, security)
        assert not result.achieved_goal and result.detected

    def test_replay_succeeds_without_protection(self, platform_factory):
        system, _ = platform_factory(protected=False)
        assert ReplayAttack().run(system, None).achieved_goal

    def test_relocation_blocked_with_protection(self, platform_factory):
        system, security = platform_factory(protected=True)
        result = RelocationAttack().run(system, security)
        assert not result.achieved_goal and result.detected

    def test_relocation_requires_aligned_offsets(self):
        with pytest.raises(ValueError):
            RelocationAttack(source_offset=0x21)


class TestHijackAttacks:
    def test_probe_contained_at_interface(self, platform_factory):
        system, security = platform_factory(protected=True)
        result = SensitiveRegisterProbe().run(system, security)
        assert not result.achieved_goal
        assert result.contained_at_interface
        assert result.detected
        # The malicious transaction never reached the shared bus.
        assert "cpu2" not in system.bus.monitor.per_master

    def test_probe_succeeds_without_protection(self, platform_factory):
        system, _ = platform_factory(protected=False)
        result = SensitiveRegisterProbe().run(system, None)
        assert result.achieved_goal and not result.detected

    def test_malformed_write_blocked(self, platform_factory):
        system, security = platform_factory(protected=True)
        result = HijackedIPAttack().run(system, security)
        assert not result.achieved_goal and result.contained_at_interface

    def test_malformed_write_corrupts_unprotected_ip(self, platform_factory):
        system, _ = platform_factory(protected=False)
        assert HijackedIPAttack().run(system, None).achieved_goal

    def test_exfiltration_blocked_with_protection(self, platform_factory):
        system, security = platform_factory(protected=True)
        result = ExfiltrationAttack().run(system, security)
        assert not result.achieved_goal
        assert result.contained_at_interface
        assert result.extra["dma_blocked"]

    def test_exfiltration_succeeds_without_protection(self, platform_factory):
        system, _ = platform_factory(protected=False)
        result = ExfiltrationAttack().run(system, None)
        assert result.achieved_goal


class TestDoSAttack:
    def test_flood_saturates_unprotected_bus(self, platform_factory):
        system, _ = platform_factory(protected=False)
        result = DoSFloodAttack(n_requests=50).run(system, None)
        assert result.achieved_goal
        assert result.extra["reached_bus"] == 50

    def test_flood_throttled_by_firewall(self):
        factory = default_platform_factory(
            security_config=SecurityConfiguration(
                ddr_secure_size=1024, ddr_cipher_only_size=1024, flood_threshold=10
            )
        )
        system, security = factory(True)
        result = DoSFloodAttack(n_requests=100).run(system, security)
        assert result.detected
        assert not result.achieved_goal
        assert result.extra["dropped_at_interface"] > 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DoSFloodAttack(n_requests=0)
        with pytest.raises(ValueError):
            DoSFloodAttack(success_fraction=0.0)


class TestCampaign:
    def test_requires_at_least_one_attack(self):
        with pytest.raises(ValueError):
            AttackCampaign([])

    def test_small_campaign_matrix(self):
        factory = default_platform_factory(
            security_config=make_security_config(flood_threshold=20)
        )
        campaign = AttackCampaign(
            [SpoofingAttack(), SensitiveRegisterProbe()], platform_factory=factory
        )
        report = campaign.run()
        assert report.n_attacks == 2
        assert report.prevention_rate() == 1.0
        assert report.detection_rate() == 1.0
        rows = report.as_table_rows()
        assert {row["attack"] for row in rows} == {"spoofing", "sensitive_register_probe"}
        for row in rows:
            assert row["unprotected"] == "succeeded"
            assert row["protected"] == "blocked"
        summary = report.summary()
        assert summary["attacks"] == 2 and summary["prevented"] == 2
