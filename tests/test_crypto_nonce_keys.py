"""Tests for timestamp/nonce management and the key store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import KeyError_, KeyStore, KeyStoreLocked, derive_key, random_key
from repro.crypto.nonce import NonceManager, ReplayDetected, TimestampManager


class TestTimestampManager:
    def test_initial_tag_is_zero(self):
        ts = TimestampManager(block_size=32)
        assert ts.current(0x1000) == 0

    def test_advance_increments_per_block(self):
        ts = TimestampManager(block_size=32)
        assert ts.advance(0x100) == 1
        assert ts.advance(0x100) == 2
        assert ts.advance(0x11F) == 3   # same 32-byte block as 0x100
        assert ts.current(0x120) == 0   # next block untouched

    def test_check_passes_on_current_tag(self):
        ts = TimestampManager()
        ts.advance(0)
        ts.check(0, 1)

    def test_check_raises_on_stale_tag(self):
        ts = TimestampManager()
        ts.advance(0)
        ts.advance(0)
        with pytest.raises(ReplayDetected) as excinfo:
            ts.check(0, 1)
        assert excinfo.value.expected == 2
        assert excinfo.value.presented == 1

    def test_wraparound_counted(self):
        ts = TimestampManager(tag_bits=2)  # max tag 3
        for _ in range(3):
            ts.advance(0)
        assert ts.wraparounds == 0
        ts.advance(0)  # would reach 4 > max tag 3, so wraps to 0
        assert ts.wraparounds == 1
        assert ts.current(0) == 0

    def test_reset(self):
        ts = TimestampManager()
        ts.advance(0)
        ts.reset()
        assert ts.current(0) == 0
        assert ts.tracked_blocks() == 0

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            TimestampManager(block_size=0)
        with pytest.raises(ValueError):
            TimestampManager(tag_bits=0)
        with pytest.raises(ValueError):
            TimestampManager().current(-4)


class TestNonceManager:
    def test_nonce_layout(self):
        manager = NonceManager(block_size=32)
        nonce = manager.nonce_for(0x40, timestamp=7)
        assert nonce == (2).to_bytes(4, "big") + (7).to_bytes(4, "big")
        assert len(nonce) == NonceManager.NONCE_SIZE

    def test_nonce_uses_current_timestamp_by_default(self):
        ts = TimestampManager(block_size=32)
        manager = NonceManager(ts)
        ts.advance(0)
        assert manager.nonce_for(0)[4:] == (1).to_bytes(4, "big")

    def test_write_path_nonces_are_unique(self):
        ts = TimestampManager(block_size=32)
        manager = NonceManager(ts)
        seen = set()
        for _ in range(50):
            tag = ts.advance(0x20)
            seen.add(manager.nonce_for(0x20, tag))
        assert len(seen) == 50
        assert manager.reuse_violations() == 0

    @given(st.lists(st.integers(min_value=0, max_value=2**16), min_size=1, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_advancing_timestamps_never_reuses_write_nonces(self, addresses):
        ts = TimestampManager(block_size=32)
        manager = NonceManager(ts)
        for address in addresses:
            tag = ts.advance(address)
            manager.nonce_for(address, tag)
        assert manager.reuse_violations() == 0


class TestKeyDerivation:
    def test_random_key_is_deterministic(self):
        assert random_key(42) == random_key(42)
        assert random_key(42) != random_key(43)

    def test_random_key_length(self):
        assert len(random_key(1, 16)) == 16
        assert len(random_key(1, 33)) == 33
        with pytest.raises(ValueError):
            random_key(1, 0)

    def test_derive_key_domain_separation(self):
        master = b"master-secret"
        assert derive_key(master, "region-a") != derive_key(master, "region-b")
        assert derive_key(master, "region-a") == derive_key(master, "region-a")

    def test_derive_key_validations(self):
        with pytest.raises(ValueError):
            derive_key(b"", "label")
        with pytest.raises(ValueError):
            derive_key(b"m", "label", 0)

    @given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_distinct_seeds_give_distinct_keys(self, seed_a, seed_b):
        if seed_a != seed_b:
            assert random_key(seed_a) != random_key(seed_b)


class TestKeyStore:
    def test_install_and_get(self):
        store = KeyStore()
        store.install(1, random_key(1))
        assert store.get(1) == random_key(1)
        assert store.has(1)
        assert 1 in store
        assert len(store) == 1

    def test_get_missing_raises(self):
        with pytest.raises(KeyError_):
            KeyStore().get(9)

    def test_install_validates_key_length(self):
        store = KeyStore(key_length=16)
        with pytest.raises(ValueError):
            store.install(1, b"short")
        with pytest.raises(ValueError):
            store.install(-1, bytes(16))

    def test_install_derived(self):
        store = KeyStore()
        key = store.install_derived(3, b"master")
        assert store.get(3) == key
        assert len(key) == 16

    def test_lock_blocks_modification(self):
        store = KeyStore()
        store.install(1, bytes(16))
        store.lock()
        assert store.locked
        with pytest.raises(KeyStoreLocked):
            store.install(2, bytes(16))
        with pytest.raises(KeyStoreLocked):
            store.zeroise(1)
        # Reads still work while locked.
        assert store.get(1) == bytes(16)
        store.unlock()
        store.install(2, bytes(16))

    def test_zeroise(self):
        store = KeyStore()
        store.install(1, bytes(16))
        store.install(2, bytes(16))
        store.zeroise(1)
        assert not store.has(1)
        store.zeroise_all()
        assert len(store) == 0

    def test_iteration_is_sorted(self):
        store = KeyStore()
        for spi in (5, 1, 3):
            store.install(spi, bytes(16))
        assert list(store) == [1, 3, 5]
