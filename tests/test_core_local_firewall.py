"""Tests for the Local Firewall (LFCB + Security Builder + Firewall Interface)."""


from repro.core.alerts import SecurityMonitor, ViolationType
from repro.core.constants import SECURITY_BUILDER_CYCLES
from repro.core.local_firewall import LocalFirewall
from repro.core.policy import ConfigurationMemory, ReadWriteAccess, SecurityPolicy
from repro.soc.kernel import Simulator
from repro.soc.transaction import BusOperation, BusTransaction


def make_firewall(rules=None, monitor=None, **kwargs):
    sim = Simulator()
    memory = ConfigurationMemory("cfg_test", capacity=8)
    for base, size, policy in rules or []:
        memory.add(base, size, policy)
    firewall = LocalFirewall(sim, "lf_test", memory, monitor=monitor, **kwargs)
    return sim, firewall


def full_access(spi=1, **overrides):
    params = dict(spi=spi)
    params.update(overrides)
    return SecurityPolicy(**params)


def read(address, width=4, burst=1, master="cpu0"):
    return BusTransaction(master=master, operation=BusOperation.READ,
                          address=address, width=width, burst_length=burst)


def write(address, data=None, width=4, master="cpu0"):
    data = data or bytes(width)
    return BusTransaction(master=master, operation=BusOperation.WRITE,
                          address=address, width=width,
                          burst_length=max(1, len(data) // width), data=data)


class TestRequestFiltering:
    def test_allowed_access_passes_and_charges_sb_latency(self):
        _, firewall = make_firewall(rules=[(0x0, 0x1000, full_access())])
        result = firewall.filter_request(read(0x100))
        assert result.allowed
        assert result.latency == SECURITY_BUILDER_CYCLES
        assert result.stage == "security_builder"
        assert firewall.communication_block.secpol_requests == 1
        assert firewall.firewall_interface.passed == 1

    def test_policy_miss_denied(self):
        monitor = SecurityMonitor()
        _, firewall = make_firewall(rules=[(0x0, 0x100, full_access())], monitor=monitor)
        result = firewall.filter_request(read(0x5000))
        assert not result.allowed
        assert monitor.count(ViolationType.POLICY_MISS) == 1
        assert firewall.firewall_interface.discarded == 1

    def test_write_to_read_only_region_denied(self):
        monitor = SecurityMonitor()
        _, firewall = make_firewall(
            rules=[(0x0, 0x1000, full_access(rwa=ReadWriteAccess.READ_ONLY))],
            monitor=monitor,
        )
        result = firewall.filter_request(write(0x10))
        assert not result.allowed
        assert monitor.count(ViolationType.UNAUTHORIZED_WRITE) == 1

    def test_bad_format_denied(self):
        monitor = SecurityMonitor()
        _, firewall = make_firewall(
            rules=[(0x0, 0x1000, full_access(allowed_formats=frozenset({4})))],
            monitor=monitor,
        )
        result = firewall.filter_request(write(0x10, data=b"\x01", width=1))
        assert not result.allowed
        assert monitor.count(ViolationType.BAD_DATA_FORMAT) == 1

    def test_burst_limit_denied(self):
        monitor = SecurityMonitor()
        _, firewall = make_firewall(
            rules=[(0x0, 0x1000, full_access(max_burst_length=2))], monitor=monitor
        )
        result = firewall.filter_request(read(0x0, burst=8))
        assert not result.allowed
        assert monitor.count(ViolationType.BURST_TOO_LONG) == 1

    def test_spi_annotation_recorded(self):
        _, firewall = make_firewall(rules=[(0x0, 0x1000, full_access(spi=42))])
        txn = read(0x10)
        firewall.filter_request(txn)
        assert txn.annotations["lf_test.spi"] == 42

    def test_latency_override(self):
        _, firewall = make_firewall(rules=[(0x0, 0x1000, full_access())], sb_latency=3)
        result = firewall.filter_request(read(0x0))
        assert result.latency == 3


class TestResponseFiltering:
    def test_read_response_passes_without_extra_latency(self):
        _, firewall = make_firewall(rules=[(0x0, 0x1000, full_access())])
        txn = read(0x10)
        firewall.filter_request(txn)
        response = firewall.filter_response(txn)
        assert response.allowed
        assert response.latency == 0
        # Response checks do not inflate the SB evaluation counters.
        assert firewall.security_builder.evaluations == 1

    def test_response_check_catches_reconfigured_policy(self):
        _, firewall = make_firewall(rules=[(0x0, 0x1000, full_access())])
        txn = read(0x10)
        firewall.filter_request(txn)
        # Policy tightened to write-only while the read was in flight.
        firewall.config_memory.replace_policy(
            0x0, full_access(rwa=ReadWriteAccess.WRITE_ONLY)
        )
        response = firewall.filter_response(txn)
        assert not response.allowed

    def test_write_response_not_rechecked(self):
        _, firewall = make_firewall(rules=[(0x0, 0x1000, full_access())])
        txn = write(0x10)
        firewall.filter_request(txn)
        assert firewall.filter_response(txn).allowed

    def test_response_checking_can_be_disabled(self):
        _, firewall = make_firewall(rules=[], check_responses=False)
        txn = read(0x10)
        assert firewall.filter_response(txn).allowed


class TestQuarantine:
    def test_quarantined_firewall_blocks_everything(self):
        monitor = SecurityMonitor()
        _, firewall = make_firewall(rules=[(0x0, 0x1000, full_access())], monitor=monitor)
        firewall.quarantined = True
        assert not firewall.filter_request(read(0x10)).allowed
        assert not firewall.filter_request(write(0x10)).allowed
        assert monitor.count() == 2


class TestFloodDetection:
    def test_flood_threshold_triggers_alert_and_block(self):
        monitor = SecurityMonitor()
        sim, firewall = make_firewall(
            rules=[(0x0, 0x1000, full_access())],
            monitor=monitor,
            flood_threshold=5,
            flood_window=1000,
        )
        blocked = 0
        for _ in range(10):
            if not firewall.filter_request(read(0x0)).allowed:
                blocked += 1
        assert blocked > 0
        assert monitor.count(ViolationType.TRAFFIC_FLOOD) > 0

    def test_flood_detection_without_blocking(self):
        monitor = SecurityMonitor()
        _, firewall = make_firewall(
            rules=[(0x0, 0x1000, full_access())],
            monitor=monitor,
            flood_threshold=3,
            flood_window=1000,
            flood_block=False,
        )
        for _ in range(6):
            assert firewall.filter_request(read(0x0)).allowed
        assert monitor.count(ViolationType.TRAFFIC_FLOOD) > 0

    def test_no_flood_detection_by_default(self):
        monitor = SecurityMonitor()
        _, firewall = make_firewall(rules=[(0x0, 0x1000, full_access())], monitor=monitor)
        for _ in range(50):
            assert firewall.filter_request(read(0x0)).allowed
        assert monitor.count(ViolationType.TRAFFIC_FLOOD) == 0


class TestSummary:
    def test_summary_counters(self):
        monitor = SecurityMonitor()
        _, firewall = make_firewall(rules=[(0x0, 0x100, full_access())], monitor=monitor)
        firewall.filter_request(read(0x10))
        firewall.filter_request(read(0x5000))  # miss -> denied
        summary = firewall.summary()
        assert summary["secpol_requests"] == 2
        assert summary["evaluations"] == 2
        assert summary["violations"] == 1
        assert summary["passed"] == 1
        assert summary["discarded"] == 1
        assert summary["alerts"] == 1
        assert summary["rules"] == 1
        assert summary["sb_cycles_charged"] == 2 * SECURITY_BUILDER_CYCLES
