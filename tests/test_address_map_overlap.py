"""AddressMap overlap rejection: regression pins for the static verifier.

The verifier's ``overlapping-regions`` check assumes the runtime map itself
refuses to register overlapping regions (so decode order can never silently
decide which device serves shared bytes).  These tests pin that contract:
overlap, full containment, duplicate names, and the remove + re-add
remapping path the fabric uses.
"""

import pytest

from repro.soc.address_map import AddressMap, AddressRegion, DecodeError


@pytest.fixture
def amap():
    m = AddressMap()
    m.add_region("bram", base=0x0, size=0x2000, slave="bram")
    m.add_region("ddr", base=0x9000_0000, size=0x4000, slave="ddr", external=True)
    return m


class TestOverlapRejection:
    def test_partial_overlap_rejected(self, amap):
        with pytest.raises(ValueError, match="overlaps"):
            amap.add_region("late", base=0x1000, size=0x2000, slave="x")

    def test_exact_duplicate_range_rejected(self, amap):
        with pytest.raises(ValueError, match="overlaps"):
            amap.add_region("twin", base=0x0, size=0x2000, slave="x")

    def test_contained_region_rejected(self, amap):
        with pytest.raises(ValueError, match="overlaps"):
            amap.add_region("inner", base=0x800, size=0x100, slave="x")

    def test_containing_region_rejected(self, amap):
        with pytest.raises(ValueError, match="overlaps"):
            amap.add_region("outer", base=0x0, size=0x1_0000, slave="x")

    def test_one_byte_overlap_rejected(self, amap):
        with pytest.raises(ValueError, match="overlaps"):
            amap.add_region("edge", base=0x1FFF, size=0x10, slave="x")

    def test_duplicate_name_rejected_even_when_disjoint(self, amap):
        with pytest.raises(ValueError, match="duplicate region name"):
            amap.add_region("bram", base=0x5000_0000, size=0x100, slave="x")

    def test_rejected_region_leaves_map_unchanged(self, amap):
        before = len(amap)
        with pytest.raises(ValueError):
            amap.add_region("late", base=0x1000, size=0x2000, slave="x")
        assert len(amap) == before
        assert "late" not in amap
        assert amap.decode(0x1000).name == "bram"

    def test_adjacent_regions_allowed(self, amap):
        amap.add_region("next", base=0x2000, size=0x100, slave="x")
        assert amap.decode(0x2000).name == "next"
        assert amap.decode(0x1FFF).name == "bram"


class TestRemoveAndReAdd:
    def test_remove_then_re_add_elsewhere(self, amap):
        removed = amap.remove_region("bram")
        assert removed.base == 0x0
        # The freed range is decodable by a new tenant...
        amap.add_region("claimed", base=0x0, size=0x2000, slave="y")
        # ...and the old name can come back at a new base.
        amap.add_region("bram", base=0x1000_0000, size=0x2000, slave="bram")
        assert amap.decode(0x0).name == "claimed"
        assert amap.decode(0x1000_0000).name == "bram"

    def test_remove_invalidates_decode_cache(self, amap):
        assert amap.decode(0x100).name == "bram"  # warm the memo
        amap.remove_region("bram")
        with pytest.raises(DecodeError):
            amap.decode(0x100)

    def test_remove_unknown_name_raises(self, amap):
        with pytest.raises(KeyError, match="no region named"):
            amap.remove_region("ghost")

    def test_span_tracks_membership(self, amap):
        assert amap.span() == (0x0, 0x9000_4000)
        amap.remove_region("ddr")
        assert amap.span() == (0x0, 0x2000)


def test_region_overlap_predicate_is_symmetric():
    a = AddressRegion(name="a", base=0x0, size=0x100, slave="a")
    b = AddressRegion(name="b", base=0x80, size=0x100, slave="b")
    c = AddressRegion(name="c", base=0x100, size=0x100, slave="c")
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c) and not c.overlaps(a)
