"""Tests for the memory models, the register-file IP and the DMA engine."""

import pytest

from repro.soc.kernel import Simulator
from repro.soc.memory import BlockRAM, ExternalDDR
from repro.soc.ip import DMAEngine, RegisterFileIP
from repro.soc.system import build_reference_platform
from repro.soc.transaction import BusOperation, BusTransaction


def read_txn(address, width=4, burst=1, master="cpu0"):
    return BusTransaction(master=master, operation=BusOperation.READ,
                          address=address, width=width, burst_length=burst)


def write_txn(address, data, width=4, master="cpu0"):
    return BusTransaction(master=master, operation=BusOperation.WRITE,
                          address=address, width=width,
                          burst_length=max(1, len(data) // width), data=data)


class TestBlockRAM:
    def test_peek_poke_roundtrip(self):
        bram = BlockRAM(Simulator(), "bram", base=0x1000, size=0x100)
        bram.poke(0x1010, b"\x01\x02\x03\x04")
        assert bram.peek(0x1010, 4) == b"\x01\x02\x03\x04"

    def test_out_of_range_access_rejected(self):
        bram = BlockRAM(Simulator(), "bram", base=0x1000, size=0x100)
        with pytest.raises(ValueError):
            bram.peek(0x0FFF, 4)
        with pytest.raises(ValueError):
            bram.poke(0x10FE, b"\x00" * 4)

    def test_timed_access_updates_stats(self):
        bram = BlockRAM(Simulator(), "bram", base=0, size=0x100)
        latency, _ = bram.access(write_txn(0x10, b"\xaa" * 4))
        assert latency == 1
        latency, data = bram.access(read_txn(0x10))
        assert data == b"\xaa" * 4
        assert bram.stats["reads"] == 1 and bram.stats["writes"] == 1
        assert bram.stats["bytes_written"] == 4

    def test_burst_latency_scales_with_beats(self):
        bram = BlockRAM(Simulator(), "bram", base=0, size=0x100, read_latency=1)
        latency, _ = bram.access(read_txn(0x0, burst=8))
        assert latency == 1 + 7

    def test_invalid_construction(self):
        from repro.soc.memory import MemoryDevice

        with pytest.raises(ValueError):
            BlockRAM(Simulator(), "bram", base=0, size=0)
        with pytest.raises(ValueError):
            MemoryDevice(Simulator(), "mem", base=0, size=16, fill=300)


class TestExternalDDR:
    def make(self, **kwargs):
        return ExternalDDR(Simulator(), "ddr", base=0x9000_0000, size=0x10000,
                           row_size=1024, n_banks=2, row_hit_latency=10,
                           row_miss_latency=30, **kwargs)

    def test_row_miss_then_hit(self):
        ddr = self.make()
        first, _ = ddr.access(read_txn(0x9000_0000))
        second, _ = ddr.access(read_txn(0x9000_0004))
        assert first == 30  # cold row
        assert second == 10  # open-row hit
        assert ddr.stats["row_misses"] == 1 and ddr.stats["row_hits"] == 1
        assert 0 < ddr.row_hit_rate() < 1

    def test_different_rows_same_bank_miss(self):
        ddr = self.make()
        ddr.access(read_txn(0x9000_0000))          # row 0, bank 0
        latency, _ = ddr.access(read_txn(0x9000_0800))  # row 2, bank 0 again
        assert latency == 30

    def test_data_roundtrip_through_timed_access(self):
        ddr = self.make()
        ddr.access(write_txn(0x9000_0100, b"\xde\xad\xbe\xef"))
        _, data = ddr.access(read_txn(0x9000_0100))
        assert data == b"\xde\xad\xbe\xef"

    def test_row_hit_rate_empty(self):
        assert self.make().row_hit_rate() == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ExternalDDR(Simulator(), "ddr", base=0, size=1024, row_size=0)


class TestRegisterFileIP:
    def make(self):
        return RegisterFileIP(Simulator(), "ip0", base=0x4000_0000, n_registers=8,
                              sensitive_registers=[0, 1])

    def test_direct_register_access(self):
        ip = self.make()
        ip.write_register(3, 0xDEADBEEF)
        assert ip.read_register(3) == 0xDEADBEEF
        with pytest.raises(IndexError):
            ip.read_register(8)

    def test_bus_write_and_read(self):
        ip = self.make()
        latency, _ = ip.access(write_txn(0x4000_000C, (77).to_bytes(4, "little")))
        assert latency == ip.access_latency_cycles
        assert ip.read_register(3) == 77
        _, data = ip.access(read_txn(0x4000_000C))
        assert int.from_bytes(data, "little") == 77

    def test_sensitive_read_is_recorded(self):
        ip = self.make()
        ip.write_register(0, 0x5EC4E7)
        ip.access(read_txn(0x4000_0000, master="dma"))
        assert ip.sensitive_reads == [("dma", 0)]
        assert ip.stats["sensitive_register_reads"] == 1

    def test_non_sensitive_read_not_recorded(self):
        ip = self.make()
        ip.access(read_txn(0x4000_0010))
        assert ip.sensitive_reads == []

    def test_out_of_range_address(self):
        ip = self.make()
        with pytest.raises(ValueError):
            ip.access(read_txn(0x4000_1000))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RegisterFileIP(Simulator(), "ip", base=0, n_registers=0)


class TestDMAEngine:
    def test_copy_bram_to_ddr(self):
        system = build_reference_platform()
        source = system.config.bram_base + 0x100
        destination = system.config.ddr_base + 0x100
        payload = bytes(range(64))
        system.bram.poke(source, payload)

        finished = []
        system.dma.kickoff(source, destination, len(payload), on_done=finished.append)
        system.run()
        assert finished and not system.dma.blocked
        assert system.dma.bytes_copied == len(payload)
        assert system.ddr.peek(destination, len(payload)) == payload

    def test_kickoff_validation(self):
        system = build_reference_platform()
        with pytest.raises(ValueError):
            system.dma.kickoff(0, 0x100, 0)
        system.dma.kickoff(0, system.config.ddr_base, 16)
        with pytest.raises(RuntimeError):
            system.dma.kickoff(0, system.config.ddr_base, 16)

    def test_invalid_burst_bytes(self):
        sim = Simulator()
        from repro.soc.ports import MasterPort

        with pytest.raises(ValueError):
            DMAEngine(sim, "dma", MasterPort(sim, "p"), burst_bytes=3)
