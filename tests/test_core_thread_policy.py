"""Tests for thread-specific security levels (the paper's last perspective)."""

import pytest

from repro.core.alerts import SecurityMonitor, ViolationType
from repro.core.policy import ConfigurationMemory, SecurityPolicy
from repro.core.thread_policy import (
    THREAD_ID_ANNOTATION,
    ThreadAwareLocalFirewall,
    ThreadSecurityDirectory,
)
from repro.soc.kernel import Simulator
from repro.soc.ports import MasterPort, SlavePort
from repro.soc.bus import SystemBus
from repro.soc.address_map import AddressMap
from repro.soc.memory import BlockRAM
from repro.soc.processor import MemoryOperation, Processor, ProcessorProgram
from repro.soc.transaction import BusOperation, BusTransaction, TransactionStatus


PUBLIC_BASE = 0x0000
SECRET_BASE = 0x1000
REGION_SIZE = 0x1000


def make_firewall(monitor=None, default_clearance=0):
    sim = Simulator()
    memory = ConfigurationMemory("cfg", capacity=8)
    memory.add(PUBLIC_BASE, REGION_SIZE, SecurityPolicy(spi=1), label="public")
    memory.add(SECRET_BASE, REGION_SIZE, SecurityPolicy(spi=2), label="secret")
    directory = ThreadSecurityDirectory(default_clearance=default_clearance)
    firewall = ThreadAwareLocalFirewall(
        sim, "tlf", memory, directory,
        clearance_requirements={SECRET_BASE: 2},
        write_clearance_requirements={PUBLIC_BASE: 1},
        monitor=monitor,
    )
    return sim, directory, firewall


def read(address, thread_id=None):
    txn = BusTransaction(master="cpu0", operation=BusOperation.READ, address=address, width=4)
    if thread_id is not None:
        txn.annotations[THREAD_ID_ANNOTATION] = thread_id
    return txn


def write(address, thread_id=None):
    txn = BusTransaction(master="cpu0", operation=BusOperation.WRITE, address=address,
                         width=4, data=bytes(4))
    if thread_id is not None:
        txn.annotations[THREAD_ID_ANNOTATION] = thread_id
    return txn


class TestThreadSecurityDirectory:
    def test_default_and_explicit_clearances(self):
        directory = ThreadSecurityDirectory(default_clearance=1)
        assert directory.clearance(None) == 1
        assert directory.clearance(7) == 1
        directory.set_clearance(7, 3)
        assert directory.clearance(7) == 3
        assert len(directory) == 1

    def test_revoke(self):
        directory = ThreadSecurityDirectory()
        directory.set_clearance(1, 5)
        assert directory.revoke(1)
        assert not directory.revoke(1)
        assert directory.clearance(1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreadSecurityDirectory(default_clearance=-1)
        with pytest.raises(ValueError):
            ThreadSecurityDirectory().set_clearance(1, -2)


class TestThreadAwareFirewall:
    def test_low_clearance_thread_blocked_from_secret_window(self):
        monitor = SecurityMonitor()
        _, directory, firewall = make_firewall(monitor)
        directory.set_clearance(1, 1)   # thread 1: clearance 1 < required 2
        result = firewall.filter_request(read(SECRET_BASE + 0x10, thread_id=1))
        assert not result.allowed
        assert firewall.thread_denials == 1
        assert monitor.count(ViolationType.UNAUTHORIZED_READ) == 1

    def test_high_clearance_thread_allowed(self):
        _, directory, firewall = make_firewall()
        directory.set_clearance(2, 3)
        txn = read(SECRET_BASE + 0x10, thread_id=2)
        assert firewall.filter_request(txn).allowed
        assert txn.annotations["tlf.clearance"] == 3

    def test_unknown_thread_gets_default_clearance(self):
        _, _, firewall = make_firewall(default_clearance=0)
        assert not firewall.filter_request(read(SECRET_BASE, thread_id=99)).allowed
        # The public window has no read requirement, so the same thread passes there.
        assert firewall.filter_request(read(PUBLIC_BASE, thread_id=99)).allowed

    def test_untagged_transactions_behave_like_base_firewall(self):
        _, _, firewall = make_firewall(default_clearance=5)
        # Default clearance is high enough: both windows accessible without a tag.
        assert firewall.filter_request(read(SECRET_BASE)).allowed
        assert firewall.filter_request(write(PUBLIC_BASE)).allowed

    def test_write_only_requirement(self):
        _, directory, firewall = make_firewall()
        directory.set_clearance(3, 0)
        # Reads of the public window need no clearance, writes need level 1.
        assert firewall.filter_request(read(PUBLIC_BASE, thread_id=3)).allowed
        denied = firewall.filter_request(write(PUBLIC_BASE, thread_id=3))
        assert not denied.allowed
        directory.set_clearance(3, 1)
        assert firewall.filter_request(write(PUBLIC_BASE, thread_id=3)).allowed

    def test_address_policy_still_checked_first(self):
        _, directory, firewall = make_firewall()
        directory.set_clearance(1, 9)
        # Outside every rule: denied as a policy miss even with high clearance.
        assert not firewall.filter_request(read(0x9000, thread_id=1)).allowed

    def test_runtime_tightening(self):
        _, directory, firewall = make_firewall()
        directory.set_clearance(4, 2)
        assert firewall.filter_request(read(SECRET_BASE, thread_id=4)).allowed
        firewall.require_clearance(SECRET_BASE, 5)
        assert not firewall.filter_request(read(SECRET_BASE, thread_id=4)).allowed

    def test_summary_includes_thread_counters(self):
        _, directory, firewall = make_firewall()
        directory.set_clearance(1, 0)
        firewall.filter_request(read(SECRET_BASE, thread_id=1))
        summary = firewall.summary()
        assert summary["thread_denials"] == 1
        assert summary["clearance_rules"] == 2


class TestThreadTagsOnTheBus:
    def test_processor_propagates_thread_ids_through_the_platform(self):
        sim = Simulator()
        amap = AddressMap()
        amap.add_region("mem", 0x0, 0x4000, slave="mem")
        bus = SystemBus(sim, address_map=amap)
        memory = BlockRAM(sim, "mem", base=0x0, size=0x4000)
        bus.connect_slave(SlavePort(sim, "mem_port", memory))

        cfg_memory = ConfigurationMemory("cfg", capacity=4)
        cfg_memory.add(PUBLIC_BASE, REGION_SIZE, SecurityPolicy(spi=1))
        cfg_memory.add(SECRET_BASE, REGION_SIZE, SecurityPolicy(spi=2))
        directory = ThreadSecurityDirectory()
        directory.set_clearance(7, 2)
        firewall = ThreadAwareLocalFirewall(
            sim, "tlf_cpu", cfg_memory, directory,
            clearance_requirements={SECRET_BASE: 2},
        )
        port = MasterPort(sim, "cpu_port", filters=[firewall])
        bus.connect_master(port)

        program = ProcessorProgram([
            MemoryOperation.write(SECRET_BASE + 0x20, b"\x01\x02\x03\x04", thread_id=7),
            MemoryOperation.read(SECRET_BASE + 0x20, thread_id=7),
            MemoryOperation.read(SECRET_BASE + 0x20, thread_id=8),   # unprivileged thread
            MemoryOperation.read(PUBLIC_BASE, thread_id=8),
        ])
        cpu = Processor(sim, "cpu", port, program)
        cpu.start()
        sim.run()

        statuses = [t.status for t in cpu.transactions]
        assert statuses[0] is TransactionStatus.COMPLETED
        assert statuses[1] is TransactionStatus.COMPLETED
        assert cpu.transactions[1].data == b"\x01\x02\x03\x04"
        assert statuses[2] is TransactionStatus.BLOCKED_AT_MASTER
        assert statuses[3] is TransactionStatus.COMPLETED
