"""Tests for HMAC-SHA256 and AES-CMAC."""

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.mac import AESCMAC, HMACSHA256, constant_time_compare


# RFC 4493 test vectors (AES-128 CMAC).
CMAC_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
CMAC_VECTORS = [
    (b"", "bb1d6929e95937287fa37d129b756746"),
    (bytes.fromhex("6bc1bee22e409f96e93d7e117393172a"), "070a16b46b4d4144f79bdd9dd04a287c"),
    (
        bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
            "30c81c46a35ce411"
        ),
        "dfa66747de9ae63030ca32611497c827",
    ),
    (
        bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
            "30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"
        ),
        "51f0bebf7e3b9d92fc49741779363cfe",
    ),
]

# RFC 4231 test case 2 for HMAC-SHA256.
HMAC_RFC4231_KEY = b"Jefe"
HMAC_RFC4231_MESSAGE = b"what do ya want for nothing?"
HMAC_RFC4231_TAG = "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"


class TestConstantTimeCompare:
    def test_equal(self):
        assert constant_time_compare(b"abc", b"abc")

    def test_unequal_same_length(self):
        assert not constant_time_compare(b"abc", b"abd")

    def test_unequal_lengths(self):
        assert not constant_time_compare(b"abc", b"abcd")


class TestHMACSHA256:
    def test_rfc4231_case2(self):
        assert HMACSHA256(HMAC_RFC4231_KEY).compute(HMAC_RFC4231_MESSAGE).hex() == HMAC_RFC4231_TAG

    def test_long_key_is_hashed_first(self):
        key = b"k" * 100  # longer than the 64-byte block
        ours = HMACSHA256(key).compute(b"msg")
        theirs = stdlib_hmac.new(key, b"msg", hashlib.sha256).digest()
        assert ours == theirs

    def test_verify_accepts_and_rejects(self):
        mac = HMACSHA256(b"secret")
        tag = mac.compute(b"payload")
        assert mac.verify(b"payload", tag)
        assert not mac.verify(b"payload!", tag)
        assert not mac.verify(b"payload", tag[:-1] + bytes([tag[-1] ^ 1]))

    def test_rejects_non_bytes_key(self):
        with pytest.raises(TypeError):
            HMACSHA256("secret")  # type: ignore[arg-type]

    @given(st.binary(min_size=0, max_size=80), st.binary(min_size=0, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_matches_stdlib(self, key, message):
        ours = HMACSHA256(key).compute(message)
        theirs = stdlib_hmac.new(key, message, hashlib.sha256).digest()
        assert ours == theirs


class TestAESCMAC:
    @pytest.mark.parametrize("message,expected", CMAC_VECTORS)
    def test_rfc4493_vectors(self, message, expected):
        assert AESCMAC(CMAC_KEY).compute(message).hex() == expected

    def test_verify_detects_tampering(self):
        mac = AESCMAC(CMAC_KEY)
        message = b"external memory block contents!!"
        tag = mac.compute(message)
        assert mac.verify(message, tag)
        tampered = b"external memory block contentsX!"
        assert not mac.verify(tampered, tag)

    def test_tag_size(self):
        assert len(AESCMAC(CMAC_KEY).compute(b"x")) == AESCMAC.TAG_SIZE

    def test_different_keys_give_different_tags(self):
        message = b"same message"
        assert AESCMAC(CMAC_KEY).compute(message) != AESCMAC(bytes(16)).compute(message)

    @given(st.binary(min_size=0, max_size=120))
    @settings(max_examples=30, deadline=None)
    def test_deterministic_and_self_verifying(self, message):
        mac = AESCMAC(CMAC_KEY)
        tag = mac.compute(message)
        assert mac.compute(message) == tag
        assert mac.verify(message, tag)

    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=0, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_bit_flip_always_detected(self, message, bit):
        mac = AESCMAC(CMAC_KEY)
        tag = mac.compute(message)
        tampered = bytearray(message)
        tampered[0] ^= 1 << bit
        if bytes(tampered) != message:
            assert not mac.verify(bytes(tampered), tag)
