"""Differential honesty: every static claim must reproduce under the simulator."""

import pytest

from repro.staticcheck import (
    WitnessProbe,
    confirm_report,
    confirm_witness,
    verify_scenario,
    verify_spec,
)
from tests.test_staticcheck_analyzer import bypass_spec


class TestBypassConfirmation:
    """The acceptance criterion: the unguarded-path probe reaches protected
    memory with no alert, under both the object and the vector engine."""

    @pytest.mark.parametrize("engine", ["object", "vector"])
    def test_probe_reaches_protected_memory_silently(self, engine):
        spec = bypass_spec()
        report = verify_spec(spec)
        witness = report.errors[0].witness
        assert witness is not None
        outcome = confirm_witness(spec, witness, engine=engine, run_workload=True)
        assert outcome.reached, outcome.status
        assert outcome.alerts == 0
        assert outcome.status == "completed"
        assert outcome.confirmed
        assert outcome.engine == engine

    def test_probe_blocked_once_master_firewall_exists(self):
        from repro.scenarios.spec import (
            BridgeSpec, MasterSpec, SegmentSpec, SlaveSpec, TopologySpec,
        )

        spec = bypass_spec(topology=TopologySpec(
            masters=(
                MasterSpec("cpu0", kind="cpu", segment="seg_a"),
                MasterSpec("rogue", kind="dma", firewall=True, segment="seg_a",
                           accessible=("bram",)),
            ),
            slaves=(
                SlaveSpec("bram", "bram", base=0x0, size=0x2000, segment="seg_a"),
                SlaveSpec("secret", "bram", base=0x1000_0000, size=0x2000,
                          segment="seg_b"),
            ),
            segments=(SegmentSpec("seg_a"), SegmentSpec("seg_b")),
            bridges=(BridgeSpec("br", "seg_a", "seg_b"),),
        ))
        report = verify_spec(spec)
        assert not report.has_errors
        guard = next(
            w for w in report.coverage
            if w.master == "rogue" and w.target == "secret"
        )
        outcome = confirm_witness(spec, guard)
        assert not outcome.reached
        assert outcome.confirmed


class TestRegisteredScenarioConfirmation:
    @pytest.mark.parametrize("scenario", [
        "paper_baseline",
        "sparse_protection",
        "bridge_firewalled_centralized",
        "two_segment_dma_isolation",
        "deep_hierarchy_3seg",
    ])
    def test_all_witnesses_confirm(self, scenario):
        results = confirm_report(scenario)
        assert results, "scenario should carry at least one witness"
        failed = [r for r in results if not r.confirmed]
        assert not failed, [r.to_dict() for r in failed]

    def test_confirm_report_accepts_precomputed_report(self):
        report = verify_scenario("sparse_protection")
        results = confirm_report(report, max_coverage=1)
        assert len(results) == 1
        assert results[0].confirmed


def test_witness_probe_result_carries_witness_payload():
    spec = bypass_spec()
    witness = verify_spec(spec).errors[0].witness
    from repro.api.experiment import Experiment

    built = Experiment.from_spec(spec).protected(True).build()
    result = WitnessProbe(witness).run(built.system, built.security)
    assert result.extra["witness"] == witness.to_dict()
    assert result.extra["status"] == "completed"
    assert result.achieved_goal and not result.detected
