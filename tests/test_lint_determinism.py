"""The determinism AST lint: rule coverage, waivers, and the live tree."""

import pathlib
import subprocess
import sys

import pytest

TOOLS = pathlib.Path(__file__).parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

from lint_determinism import DEFAULT_TARGETS, lint_paths, lint_source  # noqa: E402


def rules(findings):
    return [f[2] for f in findings]


class TestUnseededRandom:
    def test_module_level_random_flagged(self):
        findings = lint_source("import random\nx = random.random()\n")
        assert rules(findings) == ["unseeded-random"]

    def test_unseeded_random_instance_flagged(self):
        findings = lint_source("import random\nrng = random.Random()\n")
        assert rules(findings) == ["unseeded-random"]

    def test_none_seed_flagged(self):
        findings = lint_source("import random\nrng = random.Random(None)\n")
        assert rules(findings) == ["unseeded-random"]

    def test_system_random_flagged(self):
        findings = lint_source("import random\nrng = random.SystemRandom()\n")
        assert rules(findings) == ["unseeded-random"]

    def test_seeded_random_allowed(self):
        assert lint_source("import random\nrng = random.Random(1234)\n") == []
        assert lint_source("import random\nrng = random.Random(seed + 1)\n") == []


class TestWallClock:
    @pytest.mark.parametrize("call", [
        "time.time()", "time.time_ns()", "time.monotonic()",
        "time.perf_counter()", "time.process_time()",
    ])
    def test_time_reads_flagged(self, call):
        findings = lint_source(f"import time\nt = {call}\n")
        assert rules(findings) == ["wall-clock"]

    @pytest.mark.parametrize("call", [
        "datetime.now()", "datetime.utcnow()", "date.today()",
    ])
    def test_datetime_reads_flagged(self, call):
        findings = lint_source(
            f"from datetime import datetime, date\nt = {call}\n"
        )
        assert rules(findings) == ["wall-clock"]

    def test_time_sleep_allowed(self):
        assert lint_source("import time\ntime.sleep(0.1)\n") == []


class TestUnorderedIteration:
    def test_for_over_set_literal_flagged(self):
        findings = lint_source("for x in {1, 2, 3}:\n    pass\n")
        assert rules(findings) == ["unordered-iteration"]

    def test_for_over_set_call_flagged(self):
        findings = lint_source("for x in set(items):\n    pass\n")
        assert rules(findings) == ["unordered-iteration"]

    def test_comprehension_over_set_flagged(self):
        findings = lint_source("out = [x for x in {1, 2}]\n")
        assert rules(findings) == ["unordered-iteration"]

    def test_for_over_listdir_flagged(self):
        findings = lint_source("import os\nfor f in os.listdir('.'):\n    pass\n")
        assert rules(findings) == ["unordered-iteration"]

    def test_for_over_rglob_flagged(self):
        findings = lint_source("for f in root.rglob('*.json'):\n    pass\n")
        assert rules(findings) == ["unordered-iteration"]

    def test_sorted_wrapping_allowed(self):
        assert lint_source("for x in sorted({1, 2, 3}):\n    pass\n") == []
        assert lint_source(
            "for f in sorted(root.rglob('*.json')):\n    pass\n"
        ) == []

    def test_dict_iteration_allowed(self):
        assert lint_source("for k in mapping:\n    pass\n") == []
        assert lint_source("for k, v in mapping.items():\n    pass\n") == []


class TestWaiver:
    def test_waiver_comment_suppresses(self):
        source = (
            "import random\n"
            "x = random.random()  # determinism: allow - test fixture noise\n"
        )
        assert lint_source(source) == []

    def test_waiver_only_covers_its_own_line(self):
        source = (
            "import random\n"
            "x = random.random()  # determinism: allow - fixture\n"
            "y = random.random()\n"
        )
        assert rules(lint_source(source)) == ["unseeded-random"]


class TestLiveTree:
    def test_fingerprinted_trees_are_clean(self):
        findings = lint_paths(list(DEFAULT_TARGETS))
        assert findings == [], findings

    def test_cli_exits_zero_on_default_targets(self):
        proc = subprocess.run(
            [sys.executable, str(TOOLS / "lint_determinism.py")],
            capture_output=True, text=True,
            cwd=str(TOOLS.parent),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_cli_exits_one_on_dirty_file(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nstamp = time.time()\n", encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, str(TOOLS / "lint_determinism.py"), str(dirty)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "wall-clock" in proc.stdout
