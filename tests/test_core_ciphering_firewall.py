"""Tests for the Local Ciphering Firewall (Confidentiality + Integrity Cores).

These tests exercise the LCF in isolation (standalone firewall in front of a
raw DDR model) as well as on the full secured platform via fixtures.
"""

import pytest

from repro.core.alerts import SecurityMonitor, ViolationType
from repro.core.ciphering_firewall import LocalCipheringFirewall
from repro.core.constants import (
    CONFIDENTIALITY_CORE_CYCLES,
    INTEGRITY_CORE_CYCLES,
    SECURITY_BUILDER_CYCLES,
)
from repro.core.policy import (
    ConfidentialityMode,
    ConfigurationMemory,
    IntegrityMode,
    SecurityPolicy,
)
from repro.crypto.keys import KeyStore, random_key
from repro.soc.kernel import Simulator
from repro.soc.memory import ExternalDDR
from repro.soc.transaction import BusOperation, BusTransaction, TransactionStatus

DDR_BASE = 0x9000_0000
SECURE_SIZE = 512          # 16 protected blocks of 32 bytes
CIPHER_ONLY_BASE = DDR_BASE + SECURE_SIZE
PLAIN_BASE = DDR_BASE + 2 * SECURE_SIZE


def build_lcf(monitor=None):
    sim = Simulator()
    ddr = ExternalDDR(sim, "ddr", base=DDR_BASE, size=64 * 1024)
    keys = KeyStore()
    keys.install(10, random_key(1))
    keys.install(11, random_key(2))
    memory = ConfigurationMemory("cfg_ddr", capacity=8)
    memory.add(
        DDR_BASE, SECURE_SIZE,
        SecurityPolicy(spi=10, confidentiality=ConfidentialityMode.CIPHER,
                       integrity=IntegrityMode.HASH_TREE, key_spi=10),
        label="secure",
    )
    memory.add(
        CIPHER_ONLY_BASE, SECURE_SIZE,
        SecurityPolicy(spi=11, confidentiality=ConfidentialityMode.CIPHER,
                       integrity=IntegrityMode.BYPASS, key_spi=11),
        label="cipher_only",
    )
    memory.add(PLAIN_BASE, SECURE_SIZE, SecurityPolicy(spi=12), label="plain")
    lcf = LocalCipheringFirewall(
        sim, "lcf_test", memory, device=ddr, key_store=keys, monitor=monitor
    )
    return sim, ddr, lcf


def write_txn(address, data, master="cpu0"):
    return BusTransaction(master=master, operation=BusOperation.WRITE, address=address,
                          width=4, burst_length=max(1, len(data) // 4), data=data)


def read_txn(address, size=4, master="cpu0"):
    return BusTransaction(master=master, operation=BusOperation.READ, address=address,
                          width=4, burst_length=max(1, size // 4))


def do_write(ddr, lcf, address, data):
    """Emulate the slave-port flow for a write: request filter then device.

    Mirrors what :func:`repro.soc.ports._apply_chain` does: the filter's
    ``transformed_data`` (ciphertext) replaces the payload before the device
    stores it.
    """
    txn = write_txn(address, data)
    result = lcf.filter_request(txn)
    if result.transformed_data is not None:
        txn.data = result.transformed_data
    if result.allowed:
        ddr.poke(address, txn.data)
    return txn, result


def do_read(ddr, lcf, address, size):
    """Emulate the slave-port flow for a read: request, device, response."""
    txn = read_txn(address, size)
    request = lcf.filter_request(txn)
    assert request.allowed
    txn.data = ddr.peek(address, size)
    response = lcf.filter_response(txn)
    if response.transformed_data is not None:
        txn.data = response.transformed_data
    return txn, response


class TestConstruction:
    def test_regions_built_for_protected_rules_only(self):
        _, _, lcf = build_lcf()
        assert len(lcf.protected_regions) == 2
        assert lcf.region_for(DDR_BASE) is not None
        assert lcf.region_for(CIPHER_ONLY_BASE) is not None
        assert lcf.region_for(PLAIN_BASE) is None

    def test_ciphered_rule_without_key_rejected(self):
        sim = Simulator()
        ddr = ExternalDDR(sim, "ddr", base=DDR_BASE, size=4096)
        memory = ConfigurationMemory("cfg")
        policy = SecurityPolicy(spi=1, confidentiality=ConfidentialityMode.CIPHER, key_spi=5)
        memory.add(DDR_BASE, 256, policy)
        with pytest.raises(Exception):
            # key 5 not installed in the (empty) key store
            LocalCipheringFirewall(sim, "lcf", memory, device=ddr, key_store=KeyStore())


class TestConfidentiality:
    def test_external_memory_only_holds_ciphertext(self):
        _, ddr, lcf = build_lcf()
        secret = b"TOP-SECRET-DATA!"
        do_write(ddr, lcf, DDR_BASE + 0x20, secret)
        raw = ddr.peek(DDR_BASE + 0x20, len(secret))
        assert raw != secret
        # and the plaintext is nowhere in the protected window
        window = ddr.peek(DDR_BASE, SECURE_SIZE)
        assert secret not in window

    def test_read_returns_original_plaintext(self):
        _, ddr, lcf = build_lcf()
        secret = b"TOP-SECRET-DATA!"
        do_write(ddr, lcf, DDR_BASE + 0x20, secret)
        txn, response = do_read(ddr, lcf, DDR_BASE + 0x20, len(secret))
        assert response.allowed
        assert txn.data == secret

    def test_cipher_only_region_is_ciphered(self):
        _, ddr, lcf = build_lcf()
        secret = b"CIPHERONLYDATA!!"
        do_write(ddr, lcf, CIPHER_ONLY_BASE + 0x40, secret)
        assert ddr.peek(CIPHER_ONLY_BASE + 0x40, len(secret)) != secret
        txn, _ = do_read(ddr, lcf, CIPHER_ONLY_BASE + 0x40, len(secret))
        assert txn.data == secret

    def test_plain_region_untouched(self):
        _, ddr, lcf = build_lcf()
        data = b"PLAINTEXT-HERE!!"
        do_write(ddr, lcf, PLAIN_BASE + 0x10, data)
        assert ddr.peek(PLAIN_BASE + 0x10, len(data)) == data

    def test_partial_block_write_preserves_rest_of_block(self):
        _, ddr, lcf = build_lcf()
        base = DDR_BASE + 0x40
        do_write(ddr, lcf, base, b"A" * 32)           # whole block
        do_write(ddr, lcf, base + 8, b"BBBB")          # 4 bytes inside it
        txn, _ = do_read(ddr, lcf, base, 32)
        assert txn.data == b"A" * 8 + b"BBBB" + b"A" * 20

    def test_write_spanning_two_blocks(self):
        _, ddr, lcf = build_lcf()
        base = DDR_BASE + 0x20   # blocks 1 and 2
        payload = bytes(range(48))
        do_write(ddr, lcf, base, payload)
        txn, _ = do_read(ddr, lcf, base, 48)
        assert txn.data == payload


class TestIntegrity:
    def test_tampered_ciphertext_detected_on_read(self):
        monitor = SecurityMonitor()
        _, ddr, lcf = build_lcf(monitor)
        do_write(ddr, lcf, DDR_BASE + 0x20, b"GOOD-FIRMWARE!!!")
        # Attacker flips bytes directly in external memory.
        ddr.poke(DDR_BASE + 0x20, b"EVIL")
        txn = read_txn(DDR_BASE + 0x20, 16)
        assert lcf.filter_request(txn).allowed
        txn.data = ddr.peek(DDR_BASE + 0x20, 16)
        response = lcf.filter_response(txn)
        assert not response.allowed
        assert response.status is TransactionStatus.INTEGRITY_ERROR
        assert monitor.count(ViolationType.INTEGRITY_FAILURE) == 1

    def test_replayed_ciphertext_detected(self):
        monitor = SecurityMonitor()
        _, ddr, lcf = build_lcf(monitor)
        address = DDR_BASE + 0x60
        do_write(ddr, lcf, address, b"VERSION-1-DATA!!")
        stale = ddr.peek(address - (address % 32), 32)
        do_write(ddr, lcf, address, b"VERSION-2-DATA!!")
        ddr.poke(address - (address % 32), stale)  # replay old ciphertext
        txn, response = (lambda: None), None
        txn = read_txn(address, 16)
        lcf.filter_request(txn)
        txn.data = ddr.peek(address, 16)
        response = lcf.filter_response(txn)
        assert not response.allowed
        assert monitor.count(ViolationType.INTEGRITY_FAILURE) >= 1

    def test_relocated_ciphertext_detected(self):
        monitor = SecurityMonitor()
        _, ddr, lcf = build_lcf(monitor)
        src = DDR_BASE + 0x80
        dst = DDR_BASE + 0xC0
        do_write(ddr, lcf, src, b"BLOCK-AT-SOURCE!")
        do_write(ddr, lcf, dst, b"BLOCK-AT-DEST!!!")
        ddr.poke(dst, ddr.peek(src, 32))
        txn = read_txn(dst, 16)
        lcf.filter_request(txn)
        txn.data = ddr.peek(dst, 16)
        assert not lcf.filter_response(txn).allowed

    def test_cipher_only_region_does_not_detect_tampering(self):
        # Matches the paper's threat discussion: cipher-only regions resist
        # disclosure but random tampering is not detected (only garbled).
        monitor = SecurityMonitor()
        _, ddr, lcf = build_lcf(monitor)
        address = CIPHER_ONLY_BASE + 0x20
        do_write(ddr, lcf, address, b"CIPHER-ONLY-DATA")
        ddr.poke(address, b"XXXX")
        txn, response = do_read(ddr, lcf, address, 16)
        assert response.allowed
        assert txn.data != b"CIPHER-ONLY-DATA"   # garbled, but accepted
        assert monitor.count(ViolationType.INTEGRITY_FAILURE) == 0

    def test_untouched_blocks_verify_against_initial_zero_state(self):
        _, ddr, lcf = build_lcf()
        txn, response = do_read(ddr, lcf, DDR_BASE + 0x100, 16)
        assert response.allowed
        assert txn.data == bytes(16)

    def test_provisioning_existing_contents(self):
        _, ddr, lcf = build_lcf()
        ddr.poke(DDR_BASE, b"preloaded-image!" * 2)
        initialised = lcf.protect_existing_contents()
        assert initialised == len(lcf.protected_regions[0].versions) + len(
            lcf.protected_regions[1].versions
        )
        # After provisioning the raw memory is ciphertext but reads still work.
        assert ddr.peek(DDR_BASE, 16) != b"preloaded-image!"
        txn, response = do_read(ddr, lcf, DDR_BASE, 16)
        assert response.allowed
        assert txn.data == b"preloaded-image!"


class TestLatencyAccounting:
    def test_write_charges_sb_cc_and_ic(self):
        _, ddr, lcf = build_lcf()
        txn, result = do_write(ddr, lcf, DDR_BASE + 0x20, b"A" * 32)
        assert result.allowed
        assert result.breakdown["security_builder"] == SECURITY_BUILDER_CYCLES
        # One 32-byte block = two AES blocks, one integrity update.
        assert result.breakdown["confidentiality_core"] == 2 * CONFIDENTIALITY_CORE_CYCLES
        assert result.breakdown["integrity_core"] == INTEGRITY_CORE_CYCLES
        assert result.latency == sum(result.breakdown.values())

    def test_read_charges_cc_and_ic_on_response(self):
        _, ddr, lcf = build_lcf()
        do_write(ddr, lcf, DDR_BASE + 0x20, b"A" * 32)
        txn, response = do_read(ddr, lcf, DDR_BASE + 0x20, 32)
        assert response.allowed
        assert response.breakdown["confidentiality_core"] >= 2 * CONFIDENTIALITY_CORE_CYCLES
        assert response.breakdown["integrity_core"] >= INTEGRITY_CORE_CYCLES

    def test_plain_region_charges_only_sb(self):
        _, ddr, lcf = build_lcf()
        txn, result = do_write(ddr, lcf, PLAIN_BASE + 0x10, b"ABCD")
        assert result.latency == SECURITY_BUILDER_CYCLES
        assert "confidentiality_core" not in txn.latency_breakdown

    def test_core_counters_track_blocks(self):
        _, ddr, lcf = build_lcf()
        do_write(ddr, lcf, DDR_BASE + 0x20, b"A" * 32)
        do_read(ddr, lcf, DDR_BASE + 0x20, 32)
        summary = lcf.summary()
        assert summary["cc_blocks"] >= 4          # 2 on write + 2 on read
        assert summary["ic_blocks_updated"] == 1
        assert summary["ic_blocks_verified"] >= 1
        assert summary["ic_failures"] == 0
        assert summary["protected_regions"] == 2


class TestOnSecuredPlatform:
    def test_end_to_end_write_read_through_bus(self, secured):
        system, security = secured
        cfg = system.config
        from repro.soc.processor import MemoryOperation, ProcessorProgram

        payload = bytes(range(32))
        program = ProcessorProgram([
            MemoryOperation.write(cfg.ddr_base + 0x40, payload),
            MemoryOperation.read(cfg.ddr_base + 0x40, width=4, burst_length=8),
        ])
        system.processors["cpu0"].load_program(program)
        system.processors["cpu0"].start()
        system.run()
        cpu = system.processors["cpu0"]
        assert cpu.transactions[1].data == payload
        assert system.ddr.peek(cfg.ddr_base + 0x40, 32) != payload
        assert security.monitor.count() == 0
