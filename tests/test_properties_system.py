"""System-level property tests (hypothesis).

Two invariants that must hold for *any* access pattern:

* **LCF read-modify-write correctness** — arbitrary sequences of aligned
  writes of arbitrary sizes into the ciphered+authenticated window always
  read back exactly what a plain byte-array shadow model predicts, and the
  external memory never contains the plaintext of what was written.
* **Bus arbitration fairness/consistency** — any interleaving of requests
  from multiple masters completes every transaction exactly once, in
  bounded time, with the monitor seeing exactly the granted set.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.secure import secure_platform
from repro.soc.system import build_reference_platform
from repro.soc.transaction import BusOperation, BusTransaction, TransactionStatus

from tests.conftest import make_security_config


def fresh_secured():
    system = build_reference_platform()
    security = secure_platform(system, make_security_config())
    return system, security


# One write: (word offset within a 256-byte window, length in words 1..8)
write_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=56), st.integers(min_value=1, max_value=8)),
    min_size=1,
    max_size=6,
)


class TestProtectedMemoryReadModifyWrite:
    @given(ops=write_ops, seed=st.integers(min_value=0, max_value=255))
    @settings(max_examples=10, deadline=None)
    def test_arbitrary_write_sequences_read_back_exactly(self, ops, seed):
        system, security = fresh_secured()
        cfg = system.config
        window = cfg.ddr_base
        shadow = bytearray(256)

        for index, (word_offset, n_words) in enumerate(ops):
            n_words = min(n_words, 64 - word_offset)
            address = window + 4 * word_offset
            payload = bytes(((seed + index + i) % 251) for i in range(4 * n_words))
            shadow[4 * word_offset : 4 * word_offset + len(payload)] = payload
            txn = BusTransaction(master="cpu0", operation=BusOperation.WRITE,
                                 address=address, width=4, burst_length=n_words,
                                 data=payload)
            system.master_ports["cpu0"].issue(txn, lambda t: None)
            system.run()
            assert txn.status is TransactionStatus.COMPLETED
            # The freshly written plaintext never appears raw in the DDR.
            if any(payload):
                assert system.ddr.peek(address, len(payload)) != payload

        # Read the whole window back (in policy-sized bursts of 16 words) and
        # compare against the shadow model.
        collected = bytearray()
        for chunk in range(4):
            readback = BusTransaction(master="cpu0", operation=BusOperation.READ,
                                      address=window + 64 * chunk, width=4, burst_length=16)
            system.master_ports["cpu0"].issue(readback, lambda t: None)
            system.run()
            assert readback.status is TransactionStatus.COMPLETED
            collected += readback.data
        assert bytes(collected) == bytes(shadow)
        assert security.monitor.count() == 0


class TestBusArbitrationProperties:
    @given(
        requests=st.lists(
            st.tuples(st.sampled_from(["cpu0", "cpu1", "cpu2"]),
                      st.integers(min_value=0, max_value=63)),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_every_request_completes_exactly_once(self, requests):
        system = build_reference_platform()
        cfg = system.config
        completions = []
        for master, slot in requests:
            txn = BusTransaction(master=master, operation=BusOperation.READ,
                                 address=cfg.bram_base + 4 * slot, width=4)
            system.master_ports[master].issue(
                txn, lambda t: completions.append(t.txn_id)
            )
        system.run()
        assert len(completions) == len(requests)
        assert len(set(completions)) == len(requests)
        assert system.bus.monitor.count() == len(requests)
        assert system.bus.pending_count() == 0

    @given(n_per_master=st.integers(min_value=1, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_round_robin_never_starves_a_master(self, n_per_master):
        system = build_reference_platform()
        cfg = system.config
        order = []
        for _ in range(n_per_master):
            for master in ("cpu0", "cpu1", "cpu2"):
                txn = BusTransaction(master=master, operation=BusOperation.READ,
                                     address=cfg.bram_base, width=4)
                system.master_ports[master].issue(
                    txn, lambda t, m=master: order.append(m)
                )
        system.run()
        # In any window of three consecutive grants every master appears once:
        # round robin with three equally-loaded masters is perfectly fair.
        for start in range(0, len(order) - 2, 3):
            assert set(order[start : start + 3]) == {"cpu0", "cpu1", "cpu2"}
