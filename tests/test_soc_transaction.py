"""Tests for bus transactions and address-map decoding."""

import pytest

from repro.soc.address_map import AddressMap, AddressRegion, DecodeError
from repro.soc.transaction import BusOperation, BusTransaction, TransactionStatus


class TestBusTransactionValidation:
    def test_read_defaults(self):
        txn = BusTransaction(master="cpu0", operation=BusOperation.READ, address=0x100)
        assert txn.size == 4
        assert txn.is_read and not txn.is_write
        assert txn.status is TransactionStatus.CREATED

    def test_write_requires_data(self):
        with pytest.raises(ValueError):
            BusTransaction(master="cpu0", operation=BusOperation.WRITE, address=0)

    def test_write_data_length_must_match(self):
        with pytest.raises(ValueError):
            BusTransaction(
                master="cpu0", operation=BusOperation.WRITE, address=0, width=4,
                burst_length=2, data=b"too short",
            )

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            BusTransaction(master="m", operation=BusOperation.READ, address=0, width=3)

    def test_invalid_burst(self):
        with pytest.raises(ValueError):
            BusTransaction(master="m", operation=BusOperation.READ, address=0, burst_length=0)

    def test_negative_address(self):
        with pytest.raises(ValueError):
            BusTransaction(master="m", operation=BusOperation.READ, address=-4)

    def test_end_address_and_size(self):
        txn = BusTransaction(master="m", operation=BusOperation.READ, address=0x10,
                             width=4, burst_length=4)
        assert txn.size == 16
        assert txn.end_address == 0x20

    def test_unique_ids(self):
        a = BusTransaction(master="m", operation=BusOperation.READ, address=0)
        b = BusTransaction(master="m", operation=BusOperation.READ, address=0)
        assert a.txn_id != b.txn_id


class TestLifecycle:
    def test_timing_trace(self):
        txn = BusTransaction(master="m", operation=BusOperation.READ, address=0)
        assert txn.total_latency == -1
        txn.mark_issued(10)
        txn.mark_granted(12)
        txn.mark_completed(30, data=b"\x01\x02\x03\x04")
        assert txn.issued_at == 10 and txn.granted_at == 12 and txn.completed_at == 30
        assert txn.total_latency == 20
        assert txn.data == b"\x01\x02\x03\x04"
        assert txn.status is TransactionStatus.COMPLETED

    def test_mark_blocked_requires_blocking_status(self):
        txn = BusTransaction(master="m", operation=BusOperation.READ, address=0)
        with pytest.raises(ValueError):
            txn.mark_blocked(5, TransactionStatus.COMPLETED, "nope")

    def test_blocked_statuses(self):
        for status in (
            TransactionStatus.BLOCKED_AT_MASTER,
            TransactionStatus.BLOCKED_AT_SLAVE,
            TransactionStatus.INTEGRITY_ERROR,
        ):
            txn = BusTransaction(master="m", operation=BusOperation.READ, address=0)
            txn.mark_blocked(3, status, "denied")
            assert txn.status.is_blocked
            assert txn.annotations["block_reason"] == "denied"

    def test_latency_breakdown_and_security_latency(self):
        txn = BusTransaction(master="m", operation=BusOperation.READ, address=0)
        txn.add_latency("security_builder", 12)
        txn.add_latency("bus", 3)
        txn.add_latency("confidentiality_core", 11)
        txn.add_latency("integrity_core", 20)
        txn.add_latency("ddr", 30)
        assert txn.security_latency == 12 + 11 + 20
        with pytest.raises(ValueError):
            txn.add_latency("x", -1)

    def test_clone_for_retry(self):
        txn = BusTransaction(
            master="m", operation=BusOperation.WRITE, address=0x40, width=4,
            burst_length=1, data=b"\xaa\xbb\xcc\xdd",
        )
        txn.mark_issued(1)
        clone = txn.clone_for_retry()
        assert clone.txn_id != txn.txn_id
        assert clone.status is TransactionStatus.CREATED
        assert clone.data == txn.data
        assert clone.address == txn.address

    def test_describe_contains_key_fields(self):
        txn = BusTransaction(master="cpu1", operation=BusOperation.WRITE,
                             address=0x90000000, data=b"\x00" * 4)
        text = txn.describe()
        assert "cpu1" in text and "WRITE" in text and "0x90000000" in text


class TestAddressRegion:
    def test_contains_and_offset(self):
        region = AddressRegion("bram", base=0x1000, size=0x100, slave="bram")
        assert region.contains(0x1000)
        assert region.contains(0x10FC, 4)
        assert not region.contains(0x10FD, 4)
        assert region.offset_of(0x1010) == 0x10
        with pytest.raises(ValueError):
            region.offset_of(0x2000)

    def test_invalid_regions(self):
        with pytest.raises(ValueError):
            AddressRegion("x", base=-1, size=4, slave="s")
        with pytest.raises(ValueError):
            AddressRegion("x", base=0, size=0, slave="s")

    def test_overlap(self):
        a = AddressRegion("a", 0, 0x100, "s")
        b = AddressRegion("b", 0x80, 0x100, "s")
        c = AddressRegion("c", 0x100, 0x100, "s")
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestAddressMap:
    def build(self):
        amap = AddressMap()
        amap.add_region("bram", 0x0000_0000, 0x2_0000, slave="bram")
        amap.add_region("ip0", 0x4000_0000, 0x100, slave="ip0")
        amap.add_region("ddr", 0x9000_0000, 0x100_0000, slave="ddr", external=True)
        return amap

    def test_decode(self):
        amap = self.build()
        assert amap.decode(0x100).slave == "bram"
        assert amap.decode(0x4000_0004).slave == "ip0"
        assert amap.decode(0x9000_0000, 16).slave == "ddr"

    def test_decode_error(self):
        amap = self.build()
        with pytest.raises(DecodeError):
            amap.decode(0x5000_0000)
        assert amap.try_decode(0x5000_0000) is None

    def test_decode_straddling_region_end_fails(self):
        amap = self.build()
        with pytest.raises(DecodeError):
            amap.decode(0x4000_00FC, 8)  # crosses the end of ip0

    def test_duplicate_and_overlap_rejected(self):
        amap = self.build()
        with pytest.raises(ValueError):
            amap.add_region("bram", 0x8000_0000, 0x100, slave="x")
        with pytest.raises(ValueError):
            amap.add_region("overlap", 0x1_0000, 0x2_0000, slave="x")

    def test_lookup_helpers(self):
        amap = self.build()
        assert amap.region("ddr").external
        assert [r.name for r in amap.external_regions()] == ["ddr"]
        assert [r.name for r in amap.regions_of_slave("bram")] == ["bram"]
        assert "ip0" in amap
        assert len(amap) == 3
        assert amap.span() == (0, 0x9100_0000)
        with pytest.raises(KeyError):
            amap.region("nope")

    def test_empty_map_span(self):
        with pytest.raises(ValueError):
            AddressMap().span()
