"""Unit and property tests for the AES-128 implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128, INV_SBOX, SBOX, gmul, xtime


# FIPS-197 Appendix C.1 test vector.
FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CIPHERTEXT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

# FIPS-197 Appendix B vector.
APPENDIX_B_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
APPENDIX_B_PLAINTEXT = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
APPENDIX_B_CIPHERTEXT = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")


class TestGaloisField:
    def test_xtime_known_values(self):
        assert xtime(0x57) == 0xAE
        assert xtime(0xAE) == 0x47
        assert xtime(0x47) == 0x8E
        assert xtime(0x8E) == 0x07

    def test_gmul_known_product(self):
        # 0x57 * 0x13 = 0xfe (FIPS-197 section 4.2.1 example).
        assert gmul(0x57, 0x13) == 0xFE

    def test_gmul_identity_and_zero(self):
        for value in range(256):
            assert gmul(value, 1) == value
            assert gmul(value, 0) == 0

    def test_gmul_commutative(self):
        for a in range(0, 256, 17):
            for b in range(0, 256, 13):
                assert gmul(a, b) == gmul(b, a)


class TestSBox:
    def test_sbox_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_sbox_inverts(self):
        for value in range(256):
            assert INV_SBOX[SBOX[value]] == value

    def test_sbox_has_no_fixed_points(self):
        assert all(SBOX[value] != value for value in range(256))


class TestAES128Vectors:
    def test_fips_appendix_c1_encrypt(self):
        assert AES128(FIPS_KEY).encrypt_block(FIPS_PLAINTEXT) == FIPS_CIPHERTEXT

    def test_fips_appendix_c1_decrypt(self):
        assert AES128(FIPS_KEY).decrypt_block(FIPS_CIPHERTEXT) == FIPS_PLAINTEXT

    def test_fips_appendix_b(self):
        cipher = AES128(APPENDIX_B_KEY)
        assert cipher.encrypt_block(APPENDIX_B_PLAINTEXT) == APPENDIX_B_CIPHERTEXT
        assert cipher.decrypt_block(APPENDIX_B_CIPHERTEXT) == APPENDIX_B_PLAINTEXT

    def test_key_schedule_first_and_last_round_keys(self):
        cipher = AES128(APPENDIX_B_KEY)
        assert cipher.round_key(0) == APPENDIX_B_KEY
        # Last round key from FIPS-197 appendix A.1.
        assert cipher.round_key(10) == bytes.fromhex("d014f9a8c9ee2589e13f0cc8b6630ca6")

    def test_round_key_out_of_range(self):
        cipher = AES128(FIPS_KEY)
        with pytest.raises(ValueError):
            cipher.round_key(11)
        with pytest.raises(ValueError):
            cipher.round_key(-1)


class TestAES128Validation:
    def test_rejects_wrong_key_length(self):
        with pytest.raises(ValueError):
            AES128(b"short")
        with pytest.raises(ValueError):
            AES128(bytes(24))

    def test_rejects_non_bytes_key(self):
        with pytest.raises(TypeError):
            AES128("0123456789abcdef")  # type: ignore[arg-type]

    def test_rejects_wrong_block_length(self):
        cipher = AES128(FIPS_KEY)
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"tooshort")
        with pytest.raises(ValueError):
            cipher.decrypt_block(bytes(17))

    def test_key_property_roundtrip(self):
        cipher = AES128(FIPS_KEY)
        assert cipher.key == FIPS_KEY


class TestAES128Properties:
    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_encrypt_decrypt_roundtrip(self, key, block):
        cipher = AES128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(st.binary(min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_encryption_changes_plaintext(self, block):
        cipher = AES128(FIPS_KEY)
        assert cipher.encrypt_block(block) != block

    @given(st.binary(min_size=16, max_size=16), st.integers(min_value=0, max_value=127))
    @settings(max_examples=20, deadline=None)
    def test_single_bit_key_change_changes_ciphertext(self, block, bit):
        key_a = bytearray(FIPS_KEY)
        key_a[bit // 8] ^= 1 << (bit % 8)
        ct_original = AES128(FIPS_KEY).encrypt_block(block)
        ct_modified = AES128(bytes(key_a)).encrypt_block(block)
        assert ct_original != ct_modified

    def test_deterministic(self):
        cipher = AES128(FIPS_KEY)
        assert cipher.encrypt_block(FIPS_PLAINTEXT) == cipher.encrypt_block(FIPS_PLAINTEXT)

    def test_avalanche_effect_on_plaintext(self):
        cipher = AES128(FIPS_KEY)
        reference = cipher.encrypt_block(FIPS_PLAINTEXT)
        flipped = bytearray(FIPS_PLAINTEXT)
        flipped[0] ^= 0x01
        other = cipher.encrypt_block(bytes(flipped))
        differing_bits = sum(bin(a ^ b).count("1") for a, b in zip(reference, other))
        # A single-bit plaintext change should flip roughly half the 128 bits.
        assert differing_bits > 30
