"""The fuzzer's acceptance gate: find the planted multi-step backdoor.

``planted_backdoor_spec()`` is statically clean — ``repro verify`` has
nothing to say about it — yet ships a secure-boot sequencer with its debug
backdoor compiled in.  Within a fixed seed and budget the fuzzer must find
the silent key leak, minimize it to the exact three-step chain, replay it
identically under both transaction engines, and do all of it

deterministically (same seed, same bits).
"""

from __future__ import annotations

import json

from repro.fuzz import FuzzCase, fuzz_scenario, planted_backdoor_spec
from repro.staticcheck import verify_spec

#: Pinned search parameters; seed 0 finds the hole on its 7th case.
FUZZ_ARGS = dict(seed=0, budget=60, n_steps=10, stop_on_first=True)
MAX_MINIMIZED_STEPS = 3


def test_planted_spec_is_statically_clean():
    report = verify_spec(planted_backdoor_spec())
    assert not report.errors
    assert report.verdict() == "ok"


def test_fuzzer_finds_and_minimizes_the_planted_bypass():
    report = fuzz_scenario(planted_backdoor_spec(), **FUZZ_ARGS)

    assert not report.clean, "the fuzzer must find the planted hole"
    assert len(report.findings) == 1
    finding = report.findings[0]

    violation = finding["violation"]
    assert violation["kind"] == "guard_leak"
    assert violation["master"] == "cpu0"
    assert violation["target"] == "boot0"
    assert violation["op"] == "read"
    assert violation["witness"]["expectation"] == "reaches_silently"

    # Minimized to the exact chain: debug magic, rollback, key read.
    case = FuzzCase.from_dict(finding["case"])
    assert len(case) <= MAX_MINIMIZED_STEPS
    assert [s.op for s in case.steps] == ["write", "write", "read"]
    boot = planted_backdoor_spec().topology.slave("boot0")
    assert all(boot.base <= s.address < boot.end for s in case.steps)

    # Both engines replayed the minimized witness identically.
    assert finding["engines_identical"] is True
    assert set(finding["engines"]) == {"object", "vector"}
    assert finding["engines"]["vector"]["engine_used"] == "vector"
    assert finding["engines"]["vector"]["fallback_reason"] is None


def test_the_find_is_deterministic():
    first = fuzz_scenario(planted_backdoor_spec(), **FUZZ_ARGS)
    second = fuzz_scenario(planted_backdoor_spec(), **FUZZ_ARGS)
    assert first.to_dict() == second.to_dict()
    assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
        second.to_dict(), sort_keys=True
    )


def test_committed_corpus_matches_the_live_find():
    """The corpus file in tests/corpus/ is the minimized witness this seed
    produces today — regenerate it with ``repro fuzz`` if the search or the
    spec legitimately change."""
    from repro.fuzz import load_cases

    entries = load_cases("tests/corpus/planted_backdoor.json")
    assert len(entries) == 1
    committed = FuzzCase.from_dict(entries[0]["case"])
    report = fuzz_scenario(planted_backdoor_spec(), **FUZZ_ARGS)
    live = FuzzCase.from_dict(report.findings[0]["case"])
    assert committed.digest() == live.digest()
