"""The strict-typing surface: mypy gate (when available) + config pins.

CI installs mypy via the dev extra and runs the strict surface; locally the
gate degrades to a skip when mypy is not importable, but the pyproject
configuration itself is always validated so the CI job cannot silently
diverge from the repo.
"""

import pathlib
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).parent.parent

#: The modules held to --strict (keep in sync with pyproject + CI).
STRICT_TARGETS = [
    "src/repro/engine/spec.py",
    "src/repro/sweep/spec.py",
    "src/repro/staticcheck/findings.py",
    "src/repro/staticcheck/gate.py",
]


def _mypy_available() -> bool:
    try:
        import mypy  # noqa: F401
    except ImportError:
        return False
    return True


@pytest.mark.skipif(not _mypy_available(), reason="mypy not installed (CI runs it)")
def test_strict_surface_passes_mypy():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", *STRICT_TARGETS],
        capture_output=True, text=True, cwd=str(ROOT),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_pyproject_declares_the_mypy_config():
    import tomllib

    config = tomllib.loads((ROOT / "pyproject.toml").read_text(encoding="utf-8"))
    mypy_cfg = config["tool"]["mypy"]
    assert "repro.staticcheck" in mypy_cfg["packages"]
    overrides = config["tool"]["mypy"]["overrides"]
    strict_modules = set()
    for block in overrides:
        if block.get("disallow_untyped_defs"):
            strict_modules.update(block["module"])
    assert {"repro.engine.spec", "repro.sweep.spec", "repro.staticcheck.*"} <= strict_modules
    assert "mypy>=1.8" in config["project"]["optional-dependencies"]["dev"]


def test_ci_runs_the_same_strict_targets():
    workflow = (ROOT / ".github" / "workflows" / "ci.yml").read_text(encoding="utf-8")
    assert "mypy --strict" in workflow
    for target in ("src/repro/engine/spec.py", "src/repro/sweep/spec.py"):
        assert target in workflow, f"CI must type-check {target}"


def test_strict_targets_exist():
    for target in STRICT_TARGETS:
        assert (ROOT / target).exists(), target
