"""Golden expected-findings gate, CLI surface, and fail-fast wiring."""

import json
import pathlib

import pytest

from repro.api.cli import main
from repro.scenarios.builder import ScenarioBuilder
from repro.scenarios.registry import list_scenarios
from repro.staticcheck import (
    StaticCheckError,
    fail_fast_enabled,
    set_fail_fast,
    verify_scenario,
)
from tests.test_staticcheck_analyzer import bypass_spec

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "verify_findings.json"


def test_findings_match_golden_file():
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert sorted(golden) == sorted(list_scenarios())
    for name in list_scenarios():
        report = verify_scenario(name)
        got = [
            {"code": f.code, "severity": f.severity, "subject": f.subject}
            for f in report.findings
        ]
        assert got == golden[name], (
            f"{name}: findings drifted from tests/golden/verify_findings.json; "
            "regenerate it if the change is intentional"
        )


class TestVerifyCli:
    def test_verify_all_exits_zero(self, capsys):
        assert main(["verify", "--all"]) == 0
        out = capsys.readouterr().out
        assert "Static policy/fabric verification" in out
        assert "no error findings" in out

    def test_verify_json_schema(self, capsys):
        assert main(["verify", "paper_baseline", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["errors"] == 0
        (report,) = payload["reports"]
        assert report["scenario"] == "paper_baseline"
        assert report["verdict"] == "ok"
        assert set(report["counts"]) == {"error", "warning", "info"}
        assert all(w["enforced_by"] for w in report["coverage"])

    def test_verify_confirm_replays_witnesses(self, capsys):
        assert main(["verify", "sparse_protection", "--confirm", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed_confirmations"] == 0
        results = payload["confirmations"]["sparse_protection"]
        assert results and all(r["confirmed"] for r in results)

    def test_verify_unknown_scenario_fails(self, capsys):
        assert main(["verify", "nonsense"]) == 1
        assert "no scenario named" in capsys.readouterr().err


class TestFailFastGate:
    @pytest.fixture(autouse=True)
    def _restore_gate(self):
        previous = fail_fast_enabled()
        yield
        set_fail_fast(previous)

    def test_gate_off_by_default(self):
        assert not fail_fast_enabled()
        ScenarioBuilder(bypass_spec())  # builds despite the ERROR finding

    def test_builder_raises_on_error_findings_when_enabled(self):
        set_fail_fast(True)
        with pytest.raises(StaticCheckError) as excinfo:
            ScenarioBuilder(bypass_spec())
        assert "unguarded-path" in str(excinfo.value)
        assert excinfo.value.report.has_errors
        assert excinfo.value.where == "ScenarioBuilder"

    def test_explicit_verify_false_bypasses_the_gate(self):
        set_fail_fast(True)
        ScenarioBuilder(bypass_spec(), verify=False)

    def test_registered_scenarios_pass_the_gate(self):
        set_fail_fast(True)
        for name in ("paper_baseline", "deep_hierarchy_3seg"):
            from repro.scenarios.registry import get_scenario

            ScenarioBuilder(get_scenario(name))

    def test_sweep_classify_raises_on_error_findings_when_enabled(self, tmp_path):
        from repro.sweep import ResultStore, SweepRunner, SweepSpec

        set_fail_fast(True)
        spec = SweepSpec(scenarios=("bypass_probe",))
        runner = SweepRunner(
            spec,
            ResultStore(tmp_path / "store"),
            resolver=lambda name: bypass_spec(),
        )
        with pytest.raises(StaticCheckError) as excinfo:
            runner.classify()
        assert "sweep point" in excinfo.value.where

    def test_sweep_classify_clean_when_gate_off(self, tmp_path):
        from repro.sweep import ResultStore, SweepRunner, SweepSpec

        spec = SweepSpec(scenarios=("bypass_probe",))
        runner = SweepRunner(
            spec,
            ResultStore(tmp_path / "store"),
            resolver=lambda name: bypass_spec(),
        )
        report, jobs = runner.classify()
        assert len(jobs) == 1


def test_catalog_verified_column_matches_analyzer():
    from repro.scenarios.catalog import scenario_summaries

    for summary in scenario_summaries():
        assert summary["verified"] == verify_scenario(summary["name"]).verdict()


def test_catalog_page_in_sync(capsys):
    assert main(["catalog", "--check"]) == 0
