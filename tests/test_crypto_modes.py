"""Tests for the block-cipher modes of operation and padding helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128
from repro.crypto.modes import (
    CBCMode,
    CTRMode,
    ECBMode,
    pkcs7_pad,
    pkcs7_unpad,
    xor_bytes,
)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")

# NIST SP 800-38A F.1.1 (AES-128 ECB) first two blocks.
NIST_ECB_PLAINTEXT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
)
NIST_ECB_CIPHERTEXT = bytes.fromhex(
    "3ad77bb40d7a3660a89ecaf32466ef97f5d3d58503b9699de785895a96fdbaaf"
)

# NIST SP 800-38A F.2.1 (AES-128 CBC) first two blocks.
NIST_CBC_IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
NIST_CBC_CIPHERTEXT = bytes.fromhex(
    "7649abac8119b246cee98e9b12e9197d5086cb9b507219ee95db113a917678b2"
)

# NIST SP 800-38A F.5.1 (AES-128 CTR) first two blocks.
NIST_CTR_INITIAL_COUNTER = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
NIST_CTR_CIPHERTEXT = bytes.fromhex(
    "874d6191b620e3261bef6864990db6ce9806f66b7970fdff8617187bb9fffdff"
)


class TestXorBytes:
    def test_xor_basics(self):
        assert xor_bytes(b"\x00\xff", b"\xff\xff") == b"\xff\x00"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"\x00", b"\x00\x01")

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_xor_is_involutive(self, data):
        mask = bytes((i * 37) & 0xFF for i in range(len(data)))
        assert xor_bytes(xor_bytes(data, mask), mask) == data


class TestPkcs7:
    def test_pad_length_is_multiple_of_block(self):
        for length in range(0, 40):
            padded = pkcs7_pad(b"x" * length, 16)
            assert len(padded) % 16 == 0
            assert pkcs7_unpad(padded, 16) == b"x" * length

    def test_pad_full_block_when_aligned(self):
        padded = pkcs7_pad(b"a" * 16, 16)
        assert len(padded) == 32
        assert padded[-1] == 16

    def test_unpad_rejects_corrupt_padding(self):
        padded = bytearray(pkcs7_pad(b"hello", 16))
        padded[-2] ^= 0xFF
        with pytest.raises(ValueError):
            pkcs7_unpad(bytes(padded), 16)

    def test_unpad_rejects_bad_length(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"123", 16)

    def test_pad_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            pkcs7_pad(b"x", 0)


class TestECB:
    def test_nist_vector(self):
        mode = ECBMode(AES128(KEY))
        assert mode.encrypt(NIST_ECB_PLAINTEXT) == NIST_ECB_CIPHERTEXT
        assert mode.decrypt(NIST_ECB_CIPHERTEXT) == NIST_ECB_PLAINTEXT

    def test_rejects_partial_blocks(self):
        mode = ECBMode(AES128(KEY))
        with pytest.raises(ValueError):
            mode.encrypt(b"not a block multiple")

    def test_identical_blocks_leak_in_ecb(self):
        # The well-known ECB weakness: equal plaintext blocks give equal
        # ciphertext blocks (this is why the LCF uses CTR, not ECB).
        mode = ECBMode(AES128(KEY))
        ciphertext = mode.encrypt(b"A" * 32)
        assert ciphertext[:16] == ciphertext[16:]


class TestCBC:
    def test_nist_vector(self):
        mode = CBCMode(AES128(KEY))
        assert mode.encrypt(NIST_ECB_PLAINTEXT, NIST_CBC_IV) == NIST_CBC_CIPHERTEXT
        assert mode.decrypt(NIST_CBC_CIPHERTEXT, NIST_CBC_IV) == NIST_ECB_PLAINTEXT

    def test_iv_length_validated(self):
        mode = CBCMode(AES128(KEY))
        with pytest.raises(ValueError):
            mode.encrypt(b"0" * 16, b"shortiv")

    def test_identical_blocks_do_not_leak(self):
        mode = CBCMode(AES128(KEY))
        ciphertext = mode.encrypt(b"A" * 32, NIST_CBC_IV)
        assert ciphertext[:16] != ciphertext[16:]

    @given(st.binary(min_size=16, max_size=16), st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip(self, iv, n_blocks):
        mode = CBCMode(AES128(KEY))
        plaintext = bytes(range(16)) * n_blocks
        assert mode.decrypt(mode.encrypt(plaintext, iv), iv) == plaintext


class TestCTR:
    def test_nist_vector(self):
        # The NIST CTR vector uses the full 16-byte counter block as the
        # initial counter; reproduce it by splitting into nonce and counter.
        nonce = NIST_CTR_INITIAL_COUNTER[:8]
        initial = int.from_bytes(NIST_CTR_INITIAL_COUNTER[8:], "big")
        mode = CTRMode(AES128(KEY))
        assert mode.encrypt(NIST_ECB_PLAINTEXT, nonce, initial) == NIST_CTR_CIPHERTEXT

    def test_arbitrary_length_no_padding(self):
        mode = CTRMode(AES128(KEY))
        message = b"odd-length message!"
        nonce = b"\x01" * 8
        assert mode.decrypt(mode.encrypt(message, nonce), nonce) == message

    def test_counter_block_layout(self):
        block = CTRMode.make_counter_block(b"\xaa" * 8, 5)
        assert block == b"\xaa" * 8 + (5).to_bytes(8, "big")

    def test_counter_block_rejects_bad_nonce(self):
        with pytest.raises(ValueError):
            CTRMode.make_counter_block(b"\x00" * 7, 0)

    def test_keystream_negative_length(self):
        mode = CTRMode(AES128(KEY))
        with pytest.raises(ValueError):
            mode.keystream(b"\x00" * 8, -1)

    def test_different_nonces_give_different_ciphertext(self):
        mode = CTRMode(AES128(KEY))
        message = b"0" * 32
        assert mode.encrypt(message, b"\x00" * 8) != mode.encrypt(message, b"\x01" * 8)

    @given(st.binary(min_size=0, max_size=100), st.binary(min_size=8, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, message, nonce):
        mode = CTRMode(AES128(KEY))
        assert mode.decrypt(mode.encrypt(message, nonce), nonce) == message
