"""Static analyzer: finding catalog, severity calibration, witness shapes."""

import dataclasses

import pytest

from repro.scenarios.registry import get_scenario, list_scenarios
from repro.scenarios.spec import (
    BridgeSpec,
    MasterSpec,
    ScenarioSpec,
    SegmentSpec,
    SlaveSpec,
    TopologySpec,
    WindowSpec,
    WorkloadSpec,
)
from repro.staticcheck import SEVERITIES, verify_scenario, verify_spec
from repro.staticcheck.analyzer import segment_paths


def bypass_spec(**overrides) -> ScenarioSpec:
    """A protected region reachable via a firewall-free bridge route.

    ``rogue`` has no leaf firewall and is restricted to ``bram``, yet under
    leaf placement nothing on the seg_a -> br -> seg_b route can stop it
    from reading ``secret``.
    """
    params = dict(
        name="bypass_probe",
        description="firewall-free master reaches a restricted slave across a bridge",
        topology=TopologySpec(
            masters=(
                MasterSpec("cpu0", kind="cpu", segment="seg_a"),
                MasterSpec("rogue", kind="dma", firewall=False, segment="seg_a",
                           accessible=("bram",)),
            ),
            slaves=(
                SlaveSpec("bram", "bram", base=0x0, size=0x2000, segment="seg_a"),
                SlaveSpec("secret", "bram", base=0x1000_0000, size=0x2000,
                          segment="seg_b"),
            ),
            segments=(SegmentSpec("seg_a"), SegmentSpec("seg_b")),
            bridges=(BridgeSpec("br", "seg_a", "seg_b"),),
        ),
        workload=WorkloadSpec(n_operations=16),
        placement="leaf",
    )
    params.update(overrides)
    return ScenarioSpec(**params)


class TestRegisteredScenarios:
    def test_zero_error_findings_on_every_registered_scenario(self):
        for name in list_scenarios():
            report = verify_scenario(name)
            assert not report.has_errors, (
                name, [f.to_dict() for f in report.errors]
            )

    def test_reports_sorted_most_severe_first(self):
        for name in list_scenarios():
            report = verify_scenario(name)
            ranks = [SEVERITIES.index(f.severity) for f in report.findings]
            assert ranks == sorted(ranks)

    def test_coverage_witnesses_name_their_enforcing_hop(self):
        for name in list_scenarios():
            for witness in verify_scenario(name).coverage:
                assert witness.expectation == "blocked_or_alerted"
                assert witness.enforced_by

    def test_centralized_scenario_reports_scope_note_only(self):
        report = verify_scenario("centralized_baseline_mirror")
        assert [f.code for f in report.findings] == ["centralized-enforcement"]
        assert report.verdict() == "1I"

    def test_bridge_placement_gap_is_warning_not_error(self):
        report = verify_scenario("bridge_firewalled_centralized")
        gaps = [f for f in report.findings if f.code == "placement-gap"]
        assert len(gaps) == 1
        assert gaps[0].severity == "warning"
        assert gaps[0].subject == "cpu2->ip0"
        assert gaps[0].witness is not None
        assert gaps[0].witness.expectation == "reaches_silently"

    def test_posted_bridge_scenarios_carry_ack_hazard_infos(self):
        report = verify_scenario("two_segment_dma_isolation")
        codes = [f.code for f in report.findings]
        assert "posted-ack-before-check" in codes
        assert "posted-buffer-hazard" in codes
        assert all(f.severity == "info" for f in report.findings)


class TestBypassScenario:
    def test_unguarded_path_error_with_reaching_witness(self):
        report = verify_spec(bypass_spec())
        assert report.has_errors
        errors = report.errors
        assert [f.code for f in errors] == ["unguarded-path"]
        witness = errors[0].witness
        assert witness is not None
        assert witness.master == "rogue"
        assert witness.target == "secret"
        assert witness.expectation == "reaches_silently"
        assert witness.route_bridges == ("br",)
        assert witness.route_segments == ("seg_a", "seg_b")

    def test_leaf_firewall_on_master_closes_the_path(self):
        spec = bypass_spec(topology=TopologySpec(
            masters=(
                MasterSpec("cpu0", kind="cpu", segment="seg_a"),
                MasterSpec("rogue", kind="dma", firewall=True, segment="seg_a",
                           accessible=("bram",)),
            ),
            slaves=(
                SlaveSpec("bram", "bram", base=0x0, size=0x2000, segment="seg_a"),
                SlaveSpec("secret", "bram", base=0x1000_0000, size=0x2000,
                          segment="seg_b"),
            ),
            segments=(SegmentSpec("seg_a"), SegmentSpec("seg_b")),
            bridges=(BridgeSpec("br", "seg_a", "seg_b"),),
        ))
        report = verify_spec(spec)
        assert not report.has_errors
        assert any(
            w.master == "rogue" and w.target == "secret" and w.enforced_by == "lf_rogue"
            for w in report.coverage
        )

    def test_bridge_deny_closes_the_path_under_both_placement(self):
        spec = bypass_spec(placement="both", topology=TopologySpec(
            masters=(
                MasterSpec("cpu0", kind="cpu", segment="seg_a"),
                MasterSpec("rogue", kind="dma", firewall=False, segment="seg_a",
                           accessible=("bram",)),
            ),
            slaves=(
                SlaveSpec("bram", "bram", base=0x0, size=0x2000, segment="seg_a"),
                SlaveSpec("secret", "bram", base=0x1000_0000, size=0x2000,
                          segment="seg_b"),
            ),
            segments=(SegmentSpec("seg_a"), SegmentSpec("seg_b")),
            bridges=(BridgeSpec("br", "seg_a", "seg_b", deny=("secret",)),),
        ))
        report = verify_spec(spec)
        assert not report.has_errors
        assert any(
            w.master == "rogue" and w.enforced_by == "lf_br" for w in report.coverage
        )

    def test_readonly_without_leaf_firewall_is_unguarded(self):
        spec = bypass_spec(topology=TopologySpec(
            masters=(
                MasterSpec("cpu0", kind="cpu", segment="seg_a"),
                MasterSpec("rogue", kind="dma", firewall=False, segment="seg_a",
                           readonly=("secret",)),
            ),
            slaves=(
                SlaveSpec("bram", "bram", base=0x0, size=0x2000, segment="seg_a"),
                SlaveSpec("secret", "bram", base=0x1000_0000, size=0x2000,
                          segment="seg_b"),
            ),
            segments=(SegmentSpec("seg_a"), SegmentSpec("seg_b")),
            bridges=(BridgeSpec("br", "seg_a", "seg_b"),),
        ))
        report = verify_spec(spec)
        errors = report.errors
        assert [f.code for f in errors] == ["unguarded-path"]
        assert errors[0].witness is not None
        assert errors[0].witness.op == "write"


class TestMapAndRuleChecks:
    def test_overlapping_regions_is_an_error_and_stops_analysis(self):
        spec = bypass_spec(topology=TopologySpec(
            masters=(MasterSpec("cpu0", kind="cpu"),),
            slaves=(
                SlaveSpec("a", "bram", base=0x0, size=0x2000),
                SlaveSpec("b", "bram", base=0x1000, size=0x2000),
            ),
        ), placement="leaf")
        report = verify_spec(spec)
        assert [f.code for f in report.findings] == ["overlapping-regions"]
        assert report.findings[0].severity == "error"

    def test_unenforced_window_is_an_error(self):
        spec = bypass_spec(topology=TopologySpec(
            masters=(MasterSpec("cpu0", kind="cpu"),),
            slaves=(
                SlaveSpec("bram", "bram", base=0x0, size=0x2000),
                SlaveSpec("ddr", "ddr", base=0x9000_0000, size=0x4000,
                          firewall=False,
                          windows=(WindowSpec("plain", 0x2000),
                                   WindowSpec("secure", 0x2000))),
            ),
        ))
        report = verify_spec(spec)
        assert any(
            f.code == "unenforced-window" and f.severity == "error"
            for f in report.findings
        )

    def test_dead_bridge_rules_flagged_on_deep_hierarchy(self):
        report = verify_scenario("deep_hierarchy_3seg")
        dead = [f for f in report.findings if f.code == "dead-rule"]
        assert {f.subject for f in dead} == {"lf_br12:bram", "lf_br12:bram1"}
        assert all(f.severity == "warning" for f in dead)

    def test_bridge_cycle_detected(self):
        spec = bypass_spec(topology=TopologySpec(
            masters=(MasterSpec("cpu0", kind="cpu", segment="s0"),),
            slaves=(
                SlaveSpec("bram", "bram", base=0x0, size=0x2000, segment="s0"),
                SlaveSpec("far", "bram", base=0x1000_0000, size=0x2000,
                          segment="s2"),
            ),
            segments=(SegmentSpec("s0"), SegmentSpec("s1"), SegmentSpec("s2")),
            bridges=(
                BridgeSpec("b01", "s0", "s1"),
                BridgeSpec("b12", "s1", "s2"),
                BridgeSpec("b20", "s2", "s0"),
            ),
        ))
        report = verify_spec(spec)
        cycles = [f for f in report.findings if f.code == "bridge-cycle"]
        assert [f.subject for f in cycles] == ["b20"]


class TestSegmentPaths:
    def test_paths_mirror_fabric_router_bfs(self):
        spec = get_scenario("deep_hierarchy_3seg")
        paths = segment_paths(spec.topology)
        assert paths[("seg0", "seg2")] == ("br01", "br12")
        assert paths[("seg2", "seg0")] == ("br12", "br01")
        assert paths[("seg1", "seg1")] == ()

    def test_unreachable_segments_have_no_path_entry(self):
        topology = TopologySpec(
            masters=(MasterSpec("cpu0", kind="cpu", segment="s0"),),
            slaves=(SlaveSpec("bram", "bram", base=0x0, size=0x2000, segment="s0"),),
            segments=(SegmentSpec("s0"), SegmentSpec("s1")),
        )
        paths = segment_paths(topology)
        assert ("s0", "s1") not in paths


def test_invalid_spec_becomes_finding_not_exception():
    spec = bypass_spec()
    broken = dataclasses.replace(spec, placement="bridge", topology=TopologySpec(
        masters=(MasterSpec("cpu0", kind="cpu"),),
        slaves=(SlaveSpec("bram", "bram", base=0x0, size=0x2000),),
    ))
    report = verify_spec(broken)
    assert [f.code for f in report.findings] == ["invalid-spec"]
    assert report.has_errors


def test_witness_validation_rejects_bad_ops():
    from repro.staticcheck import Witness

    with pytest.raises(ValueError):
        Witness(master="m", address=0, op="jump", width=4, target="s",
                region="s", expectation="reaches_silently")
    with pytest.raises(ValueError):
        Witness(master="m", address=0, op="read", width=4, target="s",
                region="s", expectation="maybe")
