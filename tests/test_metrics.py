"""Tests for the area model (Table I), the latency model (Table II) and the
execution-overhead analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constants import (
    CONFIDENTIALITY_CORE_CYCLES,
    INTEGRITY_CORE_CYCLES,
    SECURITY_BUILDER_CYCLES,
)
from repro.metrics.area import (
    AreaModel,
    PAPER_REFERENCE_LF_COUNT,
    PAPER_TABLE1,
    generate_table1,
)
from repro.metrics.latency import LatencyModel, PAPER_TABLE2, generate_table2
from repro.metrics.perf import measure_execution_overhead, run_workload
from repro.metrics.resources import ResourceVector
from repro.soc.processor import MemoryOperation, ProcessorProgram
from repro.workloads.generators import make_uniform_programs

from tests.conftest import make_security_config


class TestResourceVector:
    def test_arithmetic(self):
        a = ResourceVector(10, 20, 30, 1)
        b = ResourceVector(1, 2, 3, 0)
        assert (a + b).slice_registers == 11
        assert (a - b).slice_luts == 18
        assert (a * 2).lut_ff_pairs == 60
        assert (2 * a).brams == 2

    def test_overhead_vs(self):
        base = ResourceVector(100, 100, 100, 10)
        grown = ResourceVector(110, 150, 100, 10)
        overhead = grown.overhead_vs(base)
        assert overhead["slice_registers"] == pytest.approx(0.10)
        assert overhead["slice_luts"] == pytest.approx(0.50)
        assert overhead["brams"] == 0.0

    def test_rounded_and_dict(self):
        vec = ResourceVector(1.4, 2.6, 3.5, 0.2)
        rounded = vec.rounded()
        assert rounded.slice_registers == 1 and rounded.slice_luts == 3
        assert set(vec.as_dict()) == set(ResourceVector.FIELDS)

    def test_total(self):
        total = ResourceVector.total([ResourceVector(1, 1, 1, 1)] * 3)
        assert total.slice_registers == 3

    def test_is_nonnegative(self):
        assert ResourceVector(0, 0, 0, 0).is_nonnegative()
        assert not ResourceVector(-1, 0, 0, 0).is_nonnegative()


class TestAreaModel:
    def test_reference_configuration_reproduces_paper_totals_exactly(self):
        model = AreaModel()
        protected = model.platform_with_firewalls(n_local_firewalls=PAPER_REFERENCE_LF_COUNT)
        paper = PAPER_TABLE1["generic_with_firewalls"]
        assert protected.rounded().slice_registers == paper.slice_registers
        assert protected.rounded().slice_luts == paper.slice_luts
        assert protected.rounded().lut_ff_pairs == paper.lut_ff_pairs
        assert protected.rounded().brams == paper.brams

    def test_baseline_is_paper_baseline(self):
        assert AreaModel().platform_without_firewalls() == PAPER_TABLE1["generic_without_firewalls"]

    def test_lcf_dominated_by_crypto_cores(self):
        # The paper: "about 90% of Local Ciphering Firewall area" is CC + IC.
        share = AreaModel().lcf_component_share()
        assert 0.85 < share < 0.95

    def test_local_firewall_cost_is_small_compared_to_lcf(self):
        model = AreaModel()
        lf = model.local_firewall_area()
        lcf = model.ciphering_firewall_area()
        assert lf.slice_luts < 0.2 * lcf.slice_luts

    def test_area_scales_with_number_of_rules(self):
        model = AreaModel()
        small = model.local_firewall_area(n_rules=8)
        large = model.local_firewall_area(n_rules=64)
        assert large.slice_luts > small.slice_luts
        assert large.slice_registers > small.slice_registers

    def test_area_scales_with_number_of_firewalls(self):
        model = AreaModel()
        few = model.platform_with_firewalls(n_local_firewalls=2)
        many = model.platform_with_firewalls(n_local_firewalls=8)
        assert many.slice_luts > few.slice_luts

    def test_disabling_integrity_core_reduces_area(self):
        model = AreaModel()
        with_ic = model.ciphering_firewall_area(with_integrity=True)
        without_ic = model.ciphering_firewall_area(with_integrity=False)
        assert without_ic.slice_registers < with_ic.slice_registers

    def test_integration_overhead_is_nonnegative(self):
        assert AreaModel().integration_overhead_per_firewall.is_nonnegative()

    def test_platform_area_from_secured(self, secured):
        _, security = secured
        model = AreaModel()
        area = model.platform_area_from_secured(security)
        baseline = model.platform_without_firewalls()
        assert area.slice_luts > baseline.slice_luts
        assert area.brams >= baseline.brams

    def test_generate_table1_layout(self):
        rows = generate_table1()
        labels = [row.label for row in rows]
        assert labels[0].startswith("Generic w/o")
        assert labels[1].startswith("Generic w/")
        assert any("CC" in label for label in labels)
        assert rows[1].overhead_percent is not None
        assert rows[1].overhead_percent["brams"] == pytest.approx(18.87, abs=0.05)

    @given(st.integers(min_value=0, max_value=12), st.integers(min_value=1, max_value=128))
    @settings(max_examples=25, deadline=None)
    def test_model_is_monotone_in_firewalls_and_rules(self, n_firewalls, n_rules):
        model = AreaModel()
        area = model.platform_with_firewalls(
            n_local_firewalls=n_firewalls, rules_per_local_firewall=n_rules
        )
        assert area.is_nonnegative()
        more = model.platform_with_firewalls(
            n_local_firewalls=n_firewalls + 1, rules_per_local_firewall=n_rules
        )
        assert more.slice_luts >= area.slice_luts


class TestLatencyModel:
    def test_cycles_to_us(self):
        model = LatencyModel(clock_hz=100e6)
        assert model.cycles_to_us(100) == pytest.approx(1.0)

    def test_pipeline_throughput(self):
        model = LatencyModel(clock_hz=100e6)
        # 128 bits every 11 cycles at 100 MHz.
        assert model.pipeline_throughput_mbps(128, 11) == pytest.approx(1163.6, rel=0.01)
        with pytest.raises(ValueError):
            model.pipeline_throughput_mbps(128, 0)

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            LatencyModel(clock_hz=0)

    def test_paper_table2_constants(self):
        assert PAPER_TABLE2["SB (LF/LCF)"][0] == 12
        assert PAPER_TABLE2["CC"] == (11, 450.0)
        assert PAPER_TABLE2["IC"] == (20, 131.0)

    def test_generate_table2_from_live_platform(self, secured):
        system, security = secured
        cfg = system.config
        program = ProcessorProgram([
            MemoryOperation.write(cfg.ddr_base + 0x40, bytes(range(32))),
            MemoryOperation.read(cfg.ddr_base + 0x40, width=4, burst_length=8),
            MemoryOperation.read(cfg.bram_base, width=4),
        ])
        system.processors["cpu0"].load_program(program)
        system.processors["cpu0"].start()
        system.run()

        rows = generate_table2(
            [fw for fw in security.all_firewalls if fw is not security.ciphering_firewall],
            security.ciphering_firewall,
        )
        by_module = {row.module: row for row in rows}
        assert by_module["SB (LF/LCF)"].measured_cycles == SECURITY_BUILDER_CYCLES
        assert by_module["CC"].measured_cycles == CONFIDENTIALITY_CORE_CYCLES
        assert by_module["IC"].measured_cycles == INTEGRITY_CORE_CYCLES
        assert all(row.cycles_match_paper for row in rows)
        assert by_module["CC"].operations > 0
        assert by_module["IC"].operations > 0
        assert by_module["CC"].ideal_throughput_mbps > by_module["IC"].ideal_throughput_mbps


class TestExecutionOverhead:
    def make_programs(self, external_share, n_operations=60):
        from repro.soc.system import SoCConfig

        return make_uniform_programs(
            SoCConfig(),
            ["cpu0", "cpu1", "cpu2"],
            n_operations=n_operations,
            communication_ratio=0.6,
            external_share=external_share,
            external_working_set=1024,
            seed=3,
        )

    def test_run_workload_basic(self):
        programs = self.make_programs(external_share=0.2)
        result = run_workload(programs, protected=False)
        assert result.makespan_cycles > 0
        assert result.total_transactions > 0
        assert result.blocked_transactions == 0
        assert 0.0 < result.communication_share < 1.0

    def test_protection_adds_overhead(self):
        programs = self.make_programs(external_share=0.3)
        overhead = measure_execution_overhead(
            programs, security_config=make_security_config()
        )
        assert overhead.slowdown > 1.0
        assert overhead.overhead_percent > 0.0
        assert overhead.protected.security_cycles > 0
        assert overhead.baseline.security_cycles == 0
        assert 0.0 < overhead.security_cycle_share < 1.0

    def test_overhead_grows_with_external_share(self):
        low = measure_execution_overhead(
            self.make_programs(external_share=0.05),
            security_config=make_security_config(),
        )
        high = measure_execution_overhead(
            self.make_programs(external_share=0.8),
            security_config=make_security_config(),
        )
        assert high.slowdown > low.slowdown
