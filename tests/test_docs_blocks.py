"""The documentation's fenced code blocks: extraction semantics + sanity.

Execution of every runnable block happens in CI's ``docs`` job
(``python tools/check_docs.py README.md docs/*.md``); the tier-1 suite keeps
the fast checks — the extractor's parsing rules, that each documented page
exists and carries runnable blocks, and that every runnable ``python`` block
at least compiles.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).parent.parent
DOC_FILES = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "architecture.md",
    REPO_ROOT / "docs" / "reproducing-the-paper.md",
    REPO_ROOT / "docs" / "scenario-catalog.md",
]


def _check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    # Registration is required for dataclass annotation resolution under
    # ``from __future__ import annotations``.
    sys.modules["check_docs"] = module
    spec.loader.exec_module(module)
    return module


class TestExtractor:
    def test_extracts_languages_and_skip_markers(self, tmp_path):
        check_docs = _check_docs()
        page = tmp_path / "page.md"
        page.write_text(
            "# t\n"
            "```bash\necho hi\n```\n"
            "```bash no-run\nexit 1\n```\n"
            "```python\nprint(1)\n```\n"
            "```text\nnot code\n```\n"
            "```\nplain\n```\n",
            encoding="utf-8",
        )
        blocks = check_docs.extract_blocks(page)
        assert [b.info for b in blocks] == ["bash", "bash no-run", "python", "text", ""]
        assert [b.runnable for b in blocks] == [True, False, True, False, False]
        assert blocks[0].code == "echo hi"
        assert blocks[0].lineno == 2

    def test_run_block_executes_bash_and_python(self, tmp_path):
        check_docs = _check_docs()
        page = tmp_path / "page.md"
        page.write_text("```bash\ntrue\n```\n```python\nimport repro\n```\n")
        for block in check_docs.extract_blocks(page):
            result = check_docs.run_block(block)
            assert result.returncode == 0, result.stderr

    def test_run_block_reports_failures(self, tmp_path):
        check_docs = _check_docs()
        page = tmp_path / "page.md"
        page.write_text("```bash\nfalse\n```\n")
        [block] = check_docs.extract_blocks(page)
        assert check_docs.run_block(block).returncode != 0


class TestDocumentationPages:
    def test_every_page_exists(self):
        for path in DOC_FILES:
            assert path.exists(), f"missing documentation page: {path}"

    def test_docs_carry_runnable_blocks(self):
        check_docs = _check_docs()
        runnable = [
            block
            for path in DOC_FILES
            for block in check_docs.extract_blocks(path)
            if block.runnable
        ]
        assert len(runnable) >= 5, "the docs should document runnable commands"

    def test_every_runnable_python_block_compiles(self):
        check_docs = _check_docs()
        for path in DOC_FILES:
            for block in check_docs.extract_blocks(path):
                if block.runnable and block.language == "python":
                    compile(block.code, str(block.label), "exec")

    def test_no_unclosed_fences(self):
        for path in DOC_FILES:
            fence_lines = [
                line for line in path.read_text(encoding="utf-8").splitlines()
                if line.strip().startswith("```")
            ]
            assert len(fence_lines) % 2 == 0, f"unbalanced code fences in {path}"
