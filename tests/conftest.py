"""Shared fixtures for the test suite.

The secured-platform fixtures use deliberately small protected windows so the
pure-Python crypto stays fast; all behavioural properties are independent of
the window size.
"""

from __future__ import annotations

import pytest

from repro.core.manager import ReactionPolicy
from repro.core.secure import SecurityConfiguration, secure_platform
from repro.soc.system import SoCConfig, build_reference_platform


SMALL_SECURE_WINDOW = 1024
SMALL_CIPHER_ONLY_WINDOW = 1024


def make_soc_config(**overrides) -> SoCConfig:
    """A reference SoC configuration, optionally overridden per test."""
    return SoCConfig(**overrides)


def make_security_config(**overrides) -> SecurityConfiguration:
    """A small-window security configuration for fast tests."""
    params = dict(
        ddr_secure_size=SMALL_SECURE_WINDOW,
        ddr_cipher_only_size=SMALL_CIPHER_ONLY_WINDOW,
        reaction=ReactionPolicy(quarantine_after=3),
    )
    params.update(overrides)
    return SecurityConfiguration(**params)


@pytest.fixture
def soc_config() -> SoCConfig:
    return make_soc_config()


@pytest.fixture
def security_config() -> SecurityConfiguration:
    return make_security_config()


@pytest.fixture
def plain_platform(soc_config):
    """An unprotected reference platform."""
    return build_reference_platform(soc_config)


@pytest.fixture
def secured(soc_config, security_config):
    """A protected reference platform: returns (system, security)."""
    system = build_reference_platform(soc_config)
    security = secure_platform(system, security_config)
    return system, security


@pytest.fixture
def platform_factory(soc_config, security_config):
    """Factory building fresh (system, security-or-None) pairs per call."""

    def factory(protected: bool = True):
        system = build_reference_platform(make_soc_config())
        if not protected:
            return system, None
        return system, secure_platform(system, make_security_config())

    return factory
