"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.kernel import Component, SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, order.append, "late")
        sim.schedule(10, order.append, "early")
        sim.schedule(20, order.append, "middle")
        sim.run()
        assert order == ["early", "middle", "late"]
        assert sim.now == 30

    def test_same_cycle_events_run_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(5, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_schedule_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(7, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.schedule(3, outer)
        sim.run()
        assert seen == [("outer", 3), ("inner", 10)]

    def test_event_cancellation(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(5, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []
        assert sim.pending_events == 0

    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, "a")
        sim.schedule(100, fired.append, "b")
        sim.run(until=50)
        assert fired == ["a"]
        assert sim.now == 50
        # Resume past the horizon.
        sim.run()
        assert fired == ["a", "b"]

    def test_run_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(i, fired.append, i)
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_cannot_nest_run(self):
        sim = Simulator()

        def recurse():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(0, recurse)
        sim.run()


class TestTimeConversion:
    def test_cycles_to_seconds_at_100mhz(self):
        sim = Simulator(clock_frequency_hz=100e6)
        assert sim.cycles_to_seconds(100_000_000) == pytest.approx(1.0)
        assert sim.cycles_to_us(100) == pytest.approx(1.0)

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            Simulator(clock_frequency_hz=0)


class TestComponent:
    def test_registration_and_stats(self):
        sim = Simulator()
        component = Component(sim, "thing")
        component.bump("events")
        component.bump("events", 4)
        component.record("mode", "fast")
        assert component.stats == {"events": 5, "mode": "fast"}
        assert sim.collect_stats()["thing"]["events"] == 5

    def test_multiple_components_collected(self):
        sim = Simulator()
        Component(sim, "a").bump("x")
        Component(sim, "b").bump("y", 2)
        stats = sim.collect_stats()
        assert set(stats) == {"a", "b"}


class TestDeterminism:
    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_event_order_is_deterministic(self, delays):
        def run_once():
            sim = Simulator()
            order = []
            for index, delay in enumerate(delays):
                sim.schedule(delay, order.append, (delay, index))
            sim.run()
            return order

        first = run_once()
        second = run_once()
        assert first == second
        # Events sorted by (time, insertion order).
        assert first == sorted(first, key=lambda item: (item[0], item[1]))
