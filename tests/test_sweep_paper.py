"""``repro paper``: cold regeneration, full cache service, artifact content."""

from __future__ import annotations

import json

from repro.api.cli import main as cli_main
from repro.sweep import ResultStore, regenerate_paper
from repro.sweep.paper import PAPER_FAST_SCENARIOS, paper_sweep_spec

EXPECTED_ARTIFACTS = {
    "figure1_architecture.txt",
    "table1_area.txt",
    "table2_latency.txt",
    "detection_matrix.txt",
    "per_hop_latency.txt",
    "placement_split.txt",
    "index.json",
}


class TestPaperRegeneration:
    def test_fast_cold_run_then_fully_cached_second_invocation(self, tmp_path):
        store = tmp_path / "store"

        # Cold store: every sweep point computes, every artifact appears.
        first = regenerate_paper(store, tmp_path / "out1", fast=True)
        assert sorted({p.split("/")[0] for p in first.sweep.computed}) == sorted(
            PAPER_FAST_SCENARIOS
        )
        assert not first.sweep.cached
        assert set(first.artifacts) == EXPECTED_ARTIFACTS
        for path in first.artifacts.values():
            content = open(path, encoding="utf-8").read()
            assert content.strip(), f"empty artifact: {path}"

        # Warm store: nothing recomputes, artifacts are identical.
        second = regenerate_paper(store, tmp_path / "out2", fast=True)
        assert second.sweep.computed == []
        assert sorted(second.sweep.cached) == sorted(first.sweep.computed)
        assert second.sweep.store_digest == first.sweep.store_digest
        for name in EXPECTED_ARTIFACTS - {"index.json"}:
            assert (tmp_path / "out1" / name).read_text() == (
                tmp_path / "out2" / name
            ).read_text()

    def test_table2_artifact_reproduces_the_paper_cycles(self, tmp_path):
        report = regenerate_paper(tmp_path / "store", tmp_path / "out", fast=True)
        store = ResultStore(tmp_path / "store")
        entry = next(
            store.get(key)
            for point_id, key in report.sweep.keys.items()
            if point_id.startswith("paper_baseline/")
        )
        rows = {row["module"]: row for row in entry["result"]["latency"]["table2"]}
        assert rows["SB (LF/LCF)"]["measured_cycles"] == rows["SB (LF/LCF)"]["paper_cycles"] == 12
        assert rows["CC"]["measured_cycles"] == rows["CC"]["paper_cycles"] == 11
        assert rows["IC"]["measured_cycles"] == rows["IC"]["paper_cycles"] == 20
        text = (tmp_path / "out" / "table2_latency.txt").read_text()
        assert "SB (LF/LCF)" in text and "paper_baseline" in text

    def test_index_records_the_sweep_outcome(self, tmp_path):
        regenerate_paper(tmp_path / "store", tmp_path / "out", fast=True)
        index = json.loads((tmp_path / "out" / "index.json").read_text())
        assert index["fast"] is True
        assert index["sweep"]["total"] == len(index["sweep"]["computed"])
        assert set(index["artifacts"]) == EXPECTED_ARTIFACTS

    def test_full_spec_covers_the_whole_registry(self):
        from repro.scenarios import list_scenarios

        assert paper_sweep_spec(fast=False).scenarios == tuple(list_scenarios())
        assert paper_sweep_spec(fast=True).scenarios == PAPER_FAST_SCENARIOS


class TestPaperCli:
    def test_cli_json_reports_cache_service(self, tmp_path, capsys):
        store, out = str(tmp_path / "store"), str(tmp_path / "out")
        assert cli_main(["paper", "--fast", "--store", store, "--out", out]) == 0
        human = capsys.readouterr().out
        assert "computed" in human

        assert cli_main(
            ["paper", "--fast", "--store", store, "--out", out, "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sweep"]["computed"] == []
        assert len(payload["sweep"]["cached"]) == len(PAPER_FAST_SCENARIOS)
