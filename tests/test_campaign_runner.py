"""Tests for the parallel campaign runner and the sharded map helper.

The contract under test: for any worker count, a sharded campaign produces
exactly the rows the serial :class:`AttackCampaign` produces, in the same
order, with the protected-monitor summaries merged deterministically.
"""

from __future__ import annotations

from repro.attacks import (
    AttackCampaign,
    CampaignRunner,
    DoSFloodAttack,
    HijackedIPAttack,
    SpoofingAttack,
    parallel_map,
)
from repro.attacks.campaign import default_platform_factory
from repro.attacks.runner import default_worker_count, shard_seed
from repro.core.secure import SecurityConfiguration

SECURITY = SecurityConfiguration(
    ddr_secure_size=1024, ddr_cipher_only_size=1024, flood_threshold=20
)


def _attacks():
    return [SpoofingAttack(), HijackedIPAttack(), DoSFloodAttack(n_requests=40)]


def _row_fingerprint(report):
    return [
        (
            row.attack,
            row.unprotected.outcome.value,
            row.protected.outcome.value,
            row.detected,
            row.protected.detection_cycle,
        )
        for row in report.rows
    ]


class TestCampaignRunner:
    def test_serial_matches_legacy_campaign(self):
        legacy = AttackCampaign(
            _attacks(), platform_factory=default_platform_factory(security_config=SECURITY)
        ).run()
        serial = CampaignRunner(_attacks(), security_config=SECURITY, n_workers=1).run()
        assert _row_fingerprint(serial) == _row_fingerprint(legacy)

    def test_parallel_matches_serial_and_merges_monitors(self):
        serial = CampaignRunner(_attacks(), security_config=SECURITY, n_workers=1).run()
        parallel = CampaignRunner(_attacks(), security_config=SECURITY, n_workers=3).run()
        assert _row_fingerprint(parallel) == _row_fingerprint(serial)
        assert parallel.monitor_totals == serial.monitor_totals
        assert parallel.monitor_totals  # protected runs raised alerts
        assert parallel.metrics["n_workers"] == 3
        assert len(parallel.metrics["shards"]) == 3

    def test_worker_count_clamped_to_attacks(self):
        report = CampaignRunner(
            [SpoofingAttack()], security_config=SECURITY, n_workers=16
        ).run()
        assert report.metrics["n_workers"] == 1
        assert report.n_attacks == 1

    def test_rejects_empty_attack_list(self):
        try:
            CampaignRunner([])
        except ValueError:
            pass
        else:
            raise AssertionError("empty campaign should be rejected")


class TestShardingHelpers:
    def test_shard_seeds_are_deterministic_and_distinct(self):
        seeds = [shard_seed(42, index) for index in range(16)]
        assert seeds == [shard_seed(42, index) for index in range(16)]
        assert len(set(seeds)) == len(seeds)

    def test_default_worker_count_bounds(self):
        assert default_worker_count(1) == 1
        assert 1 <= default_worker_count(100) <= 8

    def test_parallel_map_preserves_order(self):
        items = list(range(23))
        assert parallel_map(_square, items, n_workers=4) == [i * i for i in items]
        assert parallel_map(_square, items, n_workers=1) == [i * i for i in items]
        assert parallel_map(_square, []) == []


def _square(x: int) -> int:
    return x * x
