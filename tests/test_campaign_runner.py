"""Tests for the parallel campaign runner and the sharded map helper.

The contract under test: for any worker count, a sharded campaign produces
exactly the rows the serial :class:`AttackCampaign` produces, in the same
order, with the protected-monitor summaries merged deterministically.
"""

from __future__ import annotations

import pytest

from repro.attacks import (
    AttackCampaign,
    CampaignRunner,
    DoSFloodAttack,
    HijackedIPAttack,
    SpoofingAttack,
    parallel_map,
)
from repro.attacks.campaign import default_platform_factory
from repro.attacks.runner import default_worker_count, shard_seed
from repro.core.secure import SecurityConfiguration

SECURITY = SecurityConfiguration(
    ddr_secure_size=1024, ddr_cipher_only_size=1024, flood_threshold=20
)


def _attacks():
    return [SpoofingAttack(), HijackedIPAttack(), DoSFloodAttack(n_requests=40)]


def _row_fingerprint(report):
    return [
        (
            row.attack,
            row.unprotected.outcome.value,
            row.protected.outcome.value,
            row.detected,
            row.protected.detection_cycle,
        )
        for row in report.rows
    ]


class TestCampaignRunner:
    def test_serial_matches_legacy_campaign(self):
        legacy = AttackCampaign(
            _attacks(), platform_factory=default_platform_factory(security_config=SECURITY)
        ).run()
        serial = CampaignRunner(_attacks(), security_config=SECURITY, n_workers=1).run()
        assert _row_fingerprint(serial) == _row_fingerprint(legacy)

    def test_parallel_matches_serial_and_merges_monitors(self):
        serial = CampaignRunner(_attacks(), security_config=SECURITY, n_workers=1).run()
        parallel = CampaignRunner(_attacks(), security_config=SECURITY, n_workers=3).run()
        assert _row_fingerprint(parallel) == _row_fingerprint(serial)
        assert parallel.monitor_totals == serial.monitor_totals
        assert parallel.monitor_totals  # protected runs raised alerts
        assert parallel.metrics["n_workers"] == 3
        assert len(parallel.metrics["shards"]) == 3

    def test_worker_count_clamped_to_attacks(self):
        report = CampaignRunner(
            [SpoofingAttack()], security_config=SECURITY, n_workers=16
        ).run()
        assert report.metrics["n_workers"] == 1
        assert report.n_attacks == 1

    def test_rejects_empty_attack_list(self):
        try:
            CampaignRunner([])
        except ValueError:
            pass
        else:
            raise AssertionError("empty campaign should be rejected")

    def test_empty_campaign_rejected_everywhere(self):
        """Every campaign entry point refuses an empty battery the same way."""
        import pytest

        with pytest.raises(ValueError):
            AttackCampaign([])
        with pytest.raises(ValueError):
            CampaignRunner([], security_config=SECURITY)
        with pytest.raises(ValueError):
            CampaignRunner([], security_config=SECURITY, n_workers=8)

    def test_single_worker_vs_eight_workers_row_identity(self):
        """workers=8 (more shards than most batteries) must reproduce the
        serial rows bit for bit, monitor totals included."""
        serial = CampaignRunner(_attacks(), security_config=SECURITY, n_workers=1).run()
        eight = CampaignRunner(_attacks(), security_config=SECURITY, n_workers=8).run()
        assert _row_fingerprint(eight) == _row_fingerprint(serial)
        assert eight.monitor_totals == serial.monitor_totals
        # Worker count is clamped to the attack count, never above it.
        assert eight.metrics["n_workers"] == len(_attacks())

    def test_shard_count_exceeding_attack_count(self):
        """Requesting far more shards than attacks degenerates gracefully:
        one shard per attack, rows in original order."""
        attacks = [SpoofingAttack(), HijackedIPAttack()]
        report = CampaignRunner(
            attacks, security_config=SECURITY, n_workers=64
        ).run()
        assert report.metrics["n_workers"] == 2
        assert len(report.metrics["shards"]) == 2
        assert [row.attack for row in report.rows] == [a.name for a in attacks]
        assert all(shard["attacks"] == 1 for shard in report.metrics["shards"])


class TestScenarioCampaigns:
    def test_from_scenario_matches_serial_rows(self):
        serial = CampaignRunner.from_scenario("paper_baseline", n_workers=1).run()
        sharded = CampaignRunner.from_scenario("paper_baseline", n_workers=3).run()
        assert _row_fingerprint(sharded) == _row_fingerprint(serial)
        assert sharded.monitor_totals == serial.monitor_totals
        assert serial.metrics["scenario"] == "paper_baseline"
        assert serial.n_attacks == 7

    def test_from_scenario_unknown_name(self):
        import pytest

        with pytest.raises(KeyError):
            CampaignRunner.from_scenario("no_such_scenario")

    def test_scenario_without_attack_mix_is_rejected(self):
        import pytest

        from repro.scenarios import get_scenario, register_scenario

        spec = get_scenario("minimal_1x1")
        spec.name = "minimal_no_attacks"
        spec.attacks = ()
        register_scenario(lambda: spec)
        try:
            with pytest.raises(ValueError):
                CampaignRunner.from_scenario("minimal_no_attacks")
        finally:
            from repro.scenarios import registry

            registry._REGISTRY.pop("minimal_no_attacks", None)


class TestFromSpecRouting:
    """``from_spec`` supersedes direct ``CampaignRunner(..., scenario=...)``
    construction: identical results, one deprecation warning per process."""

    def test_from_spec_matches_direct_construction(self):
        import warnings

        from repro.scenarios import get_scenario, instantiate_attacks

        spec = get_scenario("minimal_1x1")
        new = CampaignRunner.from_spec(spec, n_workers=1).run()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = CampaignRunner(
                instantiate_attacks(spec), scenario=spec, n_workers=1
            ).run()
        assert _row_fingerprint(old) == _row_fingerprint(new)
        assert old.monitor_totals == new.monitor_totals
        assert new.metrics["scenario"] == "minimal_1x1"

    def test_direct_scenario_construction_warns_once_per_process(self):
        import warnings

        import pytest

        from repro import _deprecation
        from repro.scenarios import get_scenario, instantiate_attacks

        spec = get_scenario("minimal_1x1")
        _deprecation.reset()
        with pytest.warns(DeprecationWarning, match="from_spec"):
            CampaignRunner(instantiate_attacks(spec), scenario=spec, n_workers=1)
        # Second construction is silent (once-per-process dedup) ...
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            CampaignRunner(instantiate_attacks(spec), scenario=spec, n_workers=1)

    def test_config_path_construction_never_warns(self):
        import warnings

        from repro import _deprecation

        # ... and the raw-config path (no scenario) is not deprecated at all.
        _deprecation.reset()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            CampaignRunner(_attacks(), security_config=SECURITY, n_workers=1)

    def test_from_spec_rejects_attackless_scenario(self):
        from dataclasses import replace

        import pytest

        from repro.scenarios import get_scenario

        spec = replace(get_scenario("minimal_1x1"), attacks=())
        with pytest.raises(ValueError, match="no attack mix"):
            CampaignRunner.from_spec(spec)


class TestShardingHelpers:
    def test_shard_seeds_are_deterministic_and_distinct(self):
        seeds = [shard_seed(42, index) for index in range(16)]
        assert seeds == [shard_seed(42, index) for index in range(16)]
        assert len(set(seeds)) == len(seeds)

    def test_default_worker_count_bounds(self):
        assert default_worker_count(1) == 1
        assert 1 <= default_worker_count(100) <= 8

    def test_parallel_map_preserves_order(self):
        items = list(range(23))
        assert parallel_map(_square, items, n_workers=4) == [i * i for i in items]
        assert parallel_map(_square, items, n_workers=1) == [i * i for i in items]
        assert parallel_map(_square, []) == []

    def test_parallel_map_reuses_a_persistent_pool(self):
        from repro.attacks.runner import PersistentPool

        items = list(range(17))
        with PersistentPool(3) as pool:
            first = parallel_map(_square, items, n_workers=3, pool=pool)
            second = parallel_map(_square, items, n_workers=3, pool=pool)
        assert first == second == [i * i for i in items]

    def test_persistent_pool_submit_is_seeded_and_async(self):
        from repro.attacks.runner import PersistentPool

        with PersistentPool(2) as pool:
            handles = [pool.submit(_square, i) for i in range(6)]
            assert [h.get(timeout=60) for h in handles] == [i * i for i in range(6)]

    def test_persistent_pool_rejects_zero_workers(self):
        from repro.attacks.runner import PersistentPool

        with pytest.raises(ValueError):
            PersistentPool(0)

    def test_parallel_map_degrades_serially_inside_a_worker(self, monkeypatch):
        import warnings

        from repro import _deprecation
        from repro.attacks import runner as attacks_runner

        items = list(range(9))
        reference = parallel_map(_square, items, n_workers=3)
        monkeypatch.setattr(attacks_runner, "in_worker_process", lambda: True)
        _deprecation.reset()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            degraded = parallel_map(_square, items, n_workers=3)
        assert degraded == reference
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)
        _deprecation.reset()

    def test_campaign_degrades_serially_inside_a_worker(self, monkeypatch):
        from repro import _deprecation
        from repro.attacks import runner as attacks_runner
        from repro.scenarios import get_scenario

        spec = get_scenario("minimal_1x1")
        reference = CampaignRunner.from_spec(spec, n_workers=1).run()
        monkeypatch.setattr(attacks_runner, "in_worker_process", lambda: True)
        _deprecation.reset()
        degraded = CampaignRunner.from_spec(spec, n_workers=2).run()
        assert degraded.as_table_rows() == reference.as_table_rows()
        assert degraded.monitor_totals == reference.monitor_totals
        _deprecation.reset()


def _square(x: int) -> int:
    return x * x
