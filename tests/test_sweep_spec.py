"""SweepSpec grid expansion, filters, point identity and key invalidation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.scenarios import get_scenario, list_scenarios
from repro.sweep import SweepSpec, point_key, spec_hash
from repro.sweep.spec import SweepPoint


class TestExpansion:
    def test_default_spec_covers_every_registered_scenario(self):
        plan = SweepSpec().plan()
        assert [p.scenario for p in plan.points] == list_scenarios()
        assert plan.skipped == ()

    def test_axes_multiply(self):
        plan = SweepSpec(
            scenarios=("minimal_1x1",), seeds=(0, 1), protected=(True, False)
        ).plan()
        assert len(plan.points) == 4
        assert len({p.point_id for p in plan.points}) == 4

    def test_invalid_placement_is_skipped_with_reason(self):
        plan = SweepSpec(
            scenarios=("minimal_1x1", "two_segment_dma_isolation"),
            placements=("bridge",),
        ).plan()
        assert [p.scenario for p in plan.points] == ["two_segment_dma_isolation"]
        assert len(plan.skipped) == 1
        assert plan.skipped[0]["point_id"].startswith("minimal_1x1/")
        assert "bridges" in plan.skipped[0]["reason"]

    def test_placement_equal_to_the_scenario_default_collapses(self):
        # minimal_1x1's own placement is "leaf": an explicit leaf axis value
        # must share the default point's identity (and thus its cache key).
        plan = SweepSpec(
            scenarios=("minimal_1x1",), placements=(None, "leaf")
        ).plan()
        assert len(plan.points) == 1
        assert plan.points[0].placement is None

    def test_workload_ops_equal_to_the_scenario_default_collapses(self):
        base_ops = get_scenario("minimal_1x1").workload.n_operations
        plan = SweepSpec(
            scenarios=("minimal_1x1",), workload_ops=(None, base_ops, 7)
        ).plan()
        assert [p.workload_ops for p in plan.points] == [None, 7]

    def test_engine_equal_to_the_scenario_default_collapses(self):
        # Every stock scenario's own engine is "object": an explicit object
        # axis value must share the default point's identity (and thus its
        # cache key), exactly like the placement collapse above.
        plan = SweepSpec(
            scenarios=("minimal_1x1",), engines=(None, "object", "vector")
        ).plan()
        assert [p.engine for p in plan.points] == [None, "vector"]
        assert plan.points[0].point_id.endswith("/engine=default")
        assert plan.points[1].point_id.endswith("/engine=vector")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            SweepSpec(engines=("warp",))

    def test_plan_carries_the_resolved_base_specs(self):
        plan = SweepSpec(scenarios=("minimal_1x1",)).plan()
        assert set(plan.bases) == {"minimal_1x1"}
        assert plan.bases["minimal_1x1"].name == "minimal_1x1"

    def test_include_exclude_patterns(self):
        plan = SweepSpec(include=("minimal_*", "paper_baseline")).plan()
        assert {p.scenario for p in plan.points} == {"minimal_1x1", "paper_baseline"}
        plan = SweepSpec(include=("minimal_*",), exclude=("*seed=0*",),
                         seeds=(0, 1)).plan()
        assert [p.seed for p in plan.points] == [1]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="axis"):
            SweepSpec(seeds=())

    def test_unknown_attack_mode_rejected(self):
        with pytest.raises(ValueError, match="attack mode"):
            SweepSpec(attack_modes=("everything",))

    def test_sweep_hash_changes_with_the_grid(self):
        assert SweepSpec().sweep_hash() != SweepSpec(seeds=(1,)).sweep_hash()
        assert SweepSpec().sweep_hash() == SweepSpec().sweep_hash()


class TestPointResolution:
    def _point(self, **overrides) -> SweepPoint:
        params = dict(
            scenario="two_segment_dma_isolation", placement=None, seed=0,
            campaign_workers=1, protected=True, workload_ops=None,
            attack_mode="scenario",
        )
        params.update(overrides)
        return SweepPoint(**params)

    def test_placement_override_is_applied(self):
        base = get_scenario("two_segment_dma_isolation")
        resolved = self._point(placement="leaf").resolve_spec(base)
        assert resolved.placement == "leaf"
        resolved.validate()

    def test_workload_override_is_applied(self):
        base = get_scenario("two_segment_dma_isolation")
        resolved = self._point(workload_ops=17).resolve_spec(base)
        assert resolved.workload.n_operations == 17

    def test_engine_override_is_applied(self):
        base = get_scenario("two_segment_dma_isolation")
        resolved = self._point(engine="vector").resolve_spec(base)
        assert resolved.engine.mode == "vector"
        resolved.validate()

    def test_defaults_keep_the_base_spec(self):
        base = get_scenario("two_segment_dma_isolation")
        assert self._point().resolve_spec(base) == base


class TestKeys:
    def test_key_is_stable_for_identical_inputs(self):
        point = SweepPoint("minimal_1x1", None, 0, 1, True, None, "scenario")
        spec = get_scenario("minimal_1x1")
        assert point_key(point, spec, "fp") == point_key(point, spec, "fp")

    def test_key_changes_when_the_scenario_definition_changes(self):
        point = SweepPoint("minimal_1x1", None, 0, 1, True, None, "scenario")
        spec = get_scenario("minimal_1x1")
        edited = dataclasses.replace(
            spec, workload=dataclasses.replace(spec.workload, n_operations=999)
        )
        assert point_key(point, spec, "fp") != point_key(point, edited, "fp")
        assert spec_hash(spec) != spec_hash(edited)

    def test_key_changes_with_the_code_fingerprint(self):
        point = SweepPoint("minimal_1x1", None, 0, 1, True, None, "scenario")
        spec = get_scenario("minimal_1x1")
        assert point_key(point, spec, "fp-a") != point_key(point, spec, "fp-b")

    def test_key_changes_with_point_parameters(self):
        spec = get_scenario("minimal_1x1")
        a = SweepPoint("minimal_1x1", None, 0, 1, True, None, "scenario")
        b = SweepPoint("minimal_1x1", None, 1, 1, True, None, "scenario")
        assert point_key(a, spec, "fp") != point_key(b, spec, "fp")

    def test_engine_fingerprint_only_keys_engine_cells(self):
        spec = get_scenario("minimal_1x1")
        obj = SweepPoint("minimal_1x1", None, 0, 1, True, None, "scenario")
        vec = SweepPoint("minimal_1x1", None, 0, 1, True, None, "scenario", "vector")
        assert obj.point_id != vec.point_id
        # An object cell's key ignores the engine fingerprint entirely ...
        assert point_key(obj, spec, "fp") == point_key(obj, spec, "fp", None)
        # ... while an engine cell's key changes with it.
        assert point_key(vec, spec, "fp", "eng-a") != point_key(vec, spec, "fp", "eng-b")
        assert point_key(vec, spec, "fp", "eng-a") != point_key(obj, spec, "fp")
