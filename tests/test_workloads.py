"""Tests for the workload generators, application patterns and trace tools."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.processor import OperationKind, ProcessorProgram
from repro.soc.system import SoCConfig, build_reference_platform
from repro.soc.transaction import TransactionStatus
from repro.workloads.generators import (
    SyntheticWorkloadConfig,
    SyntheticWorkloadGenerator,
    make_uniform_programs,
)
from repro.workloads.patterns import (
    dma_offload_scenario,
    firmware_update_program,
    producer_consumer_programs,
)
from repro.workloads.traces import TraceRecord, TraceRecorder, replay_program_from_trace


class TestSyntheticGenerator:
    def test_determinism(self):
        generator = SyntheticWorkloadGenerator()
        cfg = SyntheticWorkloadConfig(seed=5, n_operations=100)
        a = generator.generate(cfg)
        b = generator.generate(cfg)
        assert [op.kind for op in a.operations] == [op.kind for op in b.operations]
        assert [op.address for op in a.operations] == [op.address for op in b.operations]

    def test_communication_ratio_respected(self):
        generator = SyntheticWorkloadGenerator()
        cfg = SyntheticWorkloadConfig(n_operations=2000, communication_ratio=0.3, seed=2)
        program = generator.generate(cfg)
        ratio = program.memory_operation_count() / len(program)
        assert 0.25 < ratio < 0.35

    def test_extreme_ratios(self):
        generator = SyntheticWorkloadGenerator()
        all_compute = generator.generate(
            SyntheticWorkloadConfig(n_operations=50, communication_ratio=0.0)
        )
        assert all_compute.memory_operation_count() == 0
        all_memory = generator.generate(
            SyntheticWorkloadConfig(n_operations=50, communication_ratio=1.0)
        )
        assert all_memory.memory_operation_count() == 50

    def test_external_share_respected(self):
        soc = SoCConfig()
        generator = SyntheticWorkloadGenerator(soc)
        cfg = SyntheticWorkloadConfig(
            n_operations=2000, communication_ratio=1.0, external_share=0.7, seed=3
        )
        program = generator.generate(cfg)
        external = sum(
            1 for op in program.operations
            if op.is_memory_access and op.address >= soc.ddr_base
        )
        share = external / program.memory_operation_count()
        assert 0.63 < share < 0.77

    def test_addresses_stay_inside_regions(self):
        soc = SoCConfig()
        generator = SyntheticWorkloadGenerator(soc)
        cfg = SyntheticWorkloadConfig(n_operations=500, communication_ratio=1.0,
                                      external_share=0.5, ip_share_of_internal=0.3, seed=9)
        program = generator.generate(cfg)
        for op in program.operations:
            if not op.is_memory_access:
                continue
            end = op.address + op.width * op.burst_length
            in_bram = soc.bram_base <= op.address and end <= soc.bram_base + soc.bram_size
            in_ip = soc.ip_regs_base <= op.address and end <= soc.ip_regs_base + 4 * soc.ip_n_registers
            in_ddr = soc.ddr_base <= op.address and end <= soc.ddr_base + soc.ddr_size
            assert in_bram or in_ip or in_ddr

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticWorkloadConfig(n_operations=0).validate()
        with pytest.raises(ValueError):
            SyntheticWorkloadConfig(communication_ratio=1.5).validate()
        with pytest.raises(ValueError):
            SyntheticWorkloadConfig(width=3).validate()

    def test_per_cpu_programs_are_decorrelated(self):
        generator = SyntheticWorkloadGenerator()
        cfg = SyntheticWorkloadConfig(n_operations=100, communication_ratio=1.0, seed=1)
        programs = generator.generate_per_cpu(cfg, ["cpu0", "cpu1"])
        addresses_0 = [op.address for op in programs["cpu0"].operations]
        addresses_1 = [op.address for op in programs["cpu1"].operations]
        assert addresses_0 != addresses_1

    def test_make_uniform_programs(self):
        programs = make_uniform_programs(SoCConfig(), ["cpu0", "cpu1", "cpu2"], n_operations=20)
        assert set(programs) == {"cpu0", "cpu1", "cpu2"}
        assert all(len(p) == 20 for p in programs.values())

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=20, deadline=None)
    def test_generator_never_produces_invalid_operations(self, comm, ext, n_ops):
        generator = SyntheticWorkloadGenerator()
        cfg = SyntheticWorkloadConfig(
            n_operations=n_ops, communication_ratio=comm, external_share=ext, seed=11
        )
        program = generator.generate(cfg)
        assert len(program) == n_ops
        for op in program.operations:
            if op.kind is OperationKind.WRITE:
                assert op.data is not None and len(op.data) == op.width * op.burst_length


class TestPatterns:
    def test_producer_consumer_runs_clean_on_secured_platform(self, secured):
        system, security = secured
        programs = producer_consumer_programs(system.config, n_items=8)
        system.load_programs(programs)
        system.start_all()
        system.run()
        assert system.all_done()
        assert security.monitor.count() == 0
        consumer = system.processors["cpu1"]
        blocked = [t for t in consumer.transactions if t.status is not TransactionStatus.COMPLETED]
        assert not blocked

    def test_producer_consumer_item_size_validation(self):
        with pytest.raises(ValueError):
            producer_consumer_programs(SoCConfig(), item_size=10)

    def test_firmware_update_roundtrip(self, secured):
        system, security = secured
        program, image = firmware_update_program(system.config, image_size=256, chunk_size=16)
        system.processors["cpu0"].load_program(program)
        system.processors["cpu0"].start()
        system.run()
        cpu = system.processors["cpu0"]
        reads = [t for t in cpu.transactions if t.is_read]
        readback = b"".join(t.data for t in reads)
        assert readback == image
        # External memory never stores the image in plaintext.
        raw = system.ddr.peek(system.config.ddr_base, 256)
        assert raw != image
        assert security.monitor.count() == 0

    def test_firmware_update_validation(self):
        with pytest.raises(ValueError):
            firmware_update_program(SoCConfig(), image_size=100, chunk_size=13)
        with pytest.raises(ValueError):
            firmware_update_program(SoCConfig(), image_size=100, chunk_size=16)

    def test_dma_offload_scenario(self, plain_platform):
        system = plain_platform
        program, staging, destination = dma_offload_scenario(system, buffer_size=64)
        system.processors["cpu0"].load_program(program)
        system.processors["cpu0"].start()
        system.run()
        system.dma.kickoff(staging, destination, 64)
        system.run()
        assert system.ddr.peek(destination, 64) == system.bram.peek(staging, 64)

    def test_dma_offload_validation(self, plain_platform):
        with pytest.raises(ValueError):
            dma_offload_scenario(plain_platform, buffer_size=10)


class TestTraces:
    def run_simple_workload(self, platform):
        from repro.soc.processor import MemoryOperation, ProcessorProgram

        cfg = platform.config
        program = ProcessorProgram([
            MemoryOperation.write(cfg.bram_base + 0x10, b"\x01\x02\x03\x04"),
            MemoryOperation.read(cfg.bram_base + 0x10),
        ])
        platform.processors["cpu0"].load_program(program)
        platform.processors["cpu0"].start()
        platform.run()
        return platform.processors["cpu0"].transactions

    def test_capture_and_statistics(self, plain_platform):
        transactions = self.run_simple_workload(plain_platform)
        recorder = TraceRecorder(include_data=True)
        recorder.capture_all(transactions)
        assert recorder.count() == 2
        assert recorder.blocked_count() == 0
        assert recorder.mean_latency() > 0
        assert recorder.mean_security_latency() == 0  # unprotected platform

    def test_json_roundtrip(self, plain_platform):
        transactions = self.run_simple_workload(plain_platform)
        recorder = TraceRecorder(include_data=True)
        recorder.capture_all(transactions)
        payload = recorder.to_json(indent=2)
        parsed = json.loads(payload)
        assert len(parsed) == 2
        restored = TraceRecorder.from_json(payload)
        assert restored.count() == 2
        assert restored.records[0].master == "cpu0"

    def test_capture_bus_history(self, plain_platform):
        self.run_simple_workload(plain_platform)
        recorder = TraceRecorder()
        recorder.capture_bus_history(plain_platform.bus)
        assert recorder.count() == 2

    def test_replay_program(self, plain_platform):
        transactions = self.run_simple_workload(plain_platform)
        recorder = TraceRecorder(include_data=True)
        recorder.capture_all(transactions)
        program = replay_program_from_trace(recorder.records, "cpu0")
        assert len(program) == 2
        assert program.operations[0].kind is OperationKind.WRITE
        assert program.operations[0].data == b"\x01\x02\x03\x04"
        assert program.operations[1].kind is OperationKind.READ
        # Replay on a fresh platform reproduces the same memory state.
        fresh = build_reference_platform()
        fresh.processors["cpu0"].load_program(program)
        fresh.processors["cpu0"].start()
        fresh.run()
        assert fresh.bram.peek(fresh.config.bram_base + 0x10, 4) == b"\x01\x02\x03\x04"
