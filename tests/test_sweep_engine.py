"""Sweep engine semantics: caching, resume after a kill, invalidation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.scenarios import get_scenario
from repro.sweep import ResultStore, SweepRunner, SweepSpec

#: Cheap two-point grid used throughout (minimal scenario, two seeds).
GRID = SweepSpec(scenarios=("minimal_1x1",), seeds=(0, 1))


class TestCaching:
    def test_cold_run_computes_warm_run_serves_from_cache(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cold = SweepRunner(GRID, store).run()
        assert len(cold.computed) == 2 and not cold.cached

        warm = SweepRunner(GRID, store).run()
        assert not warm.computed
        assert sorted(warm.cached) == sorted(cold.computed)
        assert warm.store_digest == cold.store_digest
        assert warm.keys == cold.keys

    def test_stored_payload_is_a_full_experiment_result(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        report = SweepRunner(GRID, store).run()
        entry = store.get(report.keys[report.computed[0]])
        result = entry["result"]
        assert result["scenario"] == "minimal_1x1"
        assert result["campaign"]["summary"]["attacks"] == 1
        assert result["latency"]["table2"], "Table-II rows missing from the record"


class TestResume:
    def test_killed_sweep_resumes_to_an_identical_store(self, tmp_path):
        # Uninterrupted reference run.
        reference = ResultStore(tmp_path / "reference")
        SweepRunner(GRID, reference).run()

        # Same grid, killed after the first point completes.
        interrupted = ResultStore(tmp_path / "interrupted")
        executed = []

        def kill_before_second(point):
            if executed:
                raise KeyboardInterrupt("simulated kill")
            executed.append(point.point_id)

        with pytest.raises(KeyboardInterrupt):
            SweepRunner(GRID, interrupted, point_hook=kill_before_second).run()
        assert len(interrupted) == 1  # the completed point survived the kill

        # Rerun: only the missing point computes, and the store is identical
        # to the uninterrupted run.
        resumed = SweepRunner(GRID, ResultStore(tmp_path / "interrupted")).run()
        assert len(resumed.computed) == 1 and len(resumed.cached) == 1
        assert ResultStore(tmp_path / "interrupted").digest() == reference.digest()


class TestInvalidation:
    def test_code_fingerprint_change_recomputes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = SweepRunner(GRID, store, fingerprint="fp-a").run()
        assert len(first.computed) == 2

        second = SweepRunner(GRID, store, fingerprint="fp-b").run()
        assert len(second.computed) == 2 and not second.cached
        assert len(store) == 4  # old-fingerprint entries remain as history

    def test_scenario_definition_change_recomputes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        SweepRunner(GRID, store).run()

        def edited_resolver(name):
            spec = get_scenario(name)
            return dataclasses.replace(
                spec, workload=dataclasses.replace(spec.workload, n_operations=33)
            )

        edited = SweepRunner(GRID, store, resolver=edited_resolver).run()
        assert len(edited.computed) == 2 and not edited.cached

    def test_engine_code_edit_invalidates_exactly_the_vector_cells(self, tmp_path):
        # Grid with one object-default cell and one vector cell per seed.
        grid = dataclasses.replace(GRID, engines=(None, "vector"))
        store = ResultStore(tmp_path / "store")
        warm = SweepRunner(grid, store, engine_fp="eng-a").run()
        assert len(warm.computed) == 4

        # A simulated edit under repro/engine/ changes only the engine
        # fingerprint: the two vector cells recompute, the two object cells
        # stay served from the store.
        edited = SweepRunner(grid, store, engine_fp="eng-b").run()
        assert sorted(edited.computed) == sorted(
            pid for pid in warm.computed if pid.endswith("/engine=vector")
        )
        assert sorted(edited.cached) == sorted(
            pid for pid in warm.computed if pid.endswith("/engine=default")
        )

    def test_engine_cells_record_used_engine_in_stored_meta(self, tmp_path):
        # Cached sweep results must be auditable: each engine cell's stored
        # record says what actually ran, fabric scenarios included.
        grid = SweepSpec(
            scenarios=("two_segment_dma_isolation",), seeds=(0,),
            engines=(None, "vector"),
        )
        store = ResultStore(tmp_path / "store")
        report = SweepRunner(grid, store).run()
        for pid in report.computed:
            engine = store.get(report.keys[pid])["result"]["meta"]["engine"]
            assert engine["used"] in ("object", "vector")
            if pid.endswith("/engine=vector"):
                assert engine["requested"] == "vector"
                assert engine["used"] == "vector"
                assert engine["fallback_reason"] is None


class TestSharding:
    def test_sharded_sweep_matches_serial_digest(self, tmp_path):
        serial = ResultStore(tmp_path / "serial")
        SweepRunner(GRID, serial).run()
        sharded = ResultStore(tmp_path / "sharded")
        report = SweepRunner(GRID, sharded, sweep_workers=2).run()
        assert len(report.computed) == 2
        assert sharded.digest() == serial.digest()

    def test_sharded_sweep_persists_per_batch_and_resumes(self, tmp_path):
        grid = SweepSpec(scenarios=("minimal_1x1",), seeds=(0, 1, 2, 3))
        store = ResultStore(tmp_path / "store")
        seen = []

        def kill_on_second_batch(point):
            seen.append(point.point_id)
            if len(seen) == 3:  # first point of the second 2-wide batch
                raise KeyboardInterrupt("simulated kill")

        with pytest.raises(KeyboardInterrupt):
            SweepRunner(grid, store, sweep_workers=2,
                        point_hook=kill_on_second_batch).run()
        assert len(store) == 2  # the completed first batch survived

        resumed = SweepRunner(grid, ResultStore(tmp_path / "store"),
                              sweep_workers=2).run()
        assert len(resumed.computed) == 2 and len(resumed.cached) == 2

        reference = ResultStore(tmp_path / "reference")
        SweepRunner(grid, reference).run()
        assert ResultStore(tmp_path / "store").digest() == reference.digest()

    def test_nested_pools_are_rejected(self, tmp_path):
        grid = SweepSpec(scenarios=("minimal_1x1",), campaign_workers=(2,))
        runner = SweepRunner(grid, ResultStore(tmp_path / "store"), sweep_workers=2)
        with pytest.raises(ValueError, match="campaign_workers"):
            runner.run()

    def test_worker_process_degrades_to_serial_with_one_warning(
        self, tmp_path, monkeypatch
    ):
        """Inside a daemonic pool worker a sharded sweep must not crash the
        job — it degrades to serial per-point execution, warning once."""
        import warnings

        from repro import _deprecation
        from repro.attacks import runner as attacks_runner

        monkeypatch.setattr(attacks_runner, "in_worker_process", lambda: True)
        _deprecation.reset()

        reference = ResultStore(tmp_path / "reference")
        SweepRunner(GRID, reference).run()

        store = ResultStore(tmp_path / "store")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = SweepRunner(GRID, store, sweep_workers=2).run()
            SweepRunner(GRID, ResultStore(tmp_path / "again"),
                        sweep_workers=2).run()
        degrade = [w for w in caught if issubclass(w.category, RuntimeWarning)
                   and "nested pool" in str(w.message)]
        assert len(degrade) == 1  # once per process, not once per sweep
        assert len(report.computed) == 2
        assert store.digest() == reference.digest()
        _deprecation.reset()

    def test_invalid_sweep_workers_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="sweep_workers"):
            SweepRunner(GRID, ResultStore(tmp_path / "store"), sweep_workers=0)


class TestSkips:
    def test_skipped_placements_are_reported_not_run(self, tmp_path):
        grid = SweepSpec(scenarios=("minimal_1x1",), placements=("bridge",))
        report = SweepRunner(grid, ResultStore(tmp_path / "store")).run()
        assert not report.computed and not report.cached
        assert len(report.skipped) == 1
