"""Tests for security policies, rules and configuration memories."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import (
    ConfidentialityMode,
    ConfigurationMemory,
    ConfigurationMemoryFull,
    IntegrityMode,
    PolicyLookupError,
    PolicyRule,
    ReadWriteAccess,
    SecurityPolicy,
)


def make_policy(**overrides):
    params = dict(spi=1)
    params.update(overrides)
    return SecurityPolicy(**params)


class TestReadWriteAccess:
    @pytest.mark.parametrize(
        "rwa,reads,writes",
        [
            (ReadWriteAccess.READ_ONLY, True, False),
            (ReadWriteAccess.WRITE_ONLY, False, True),
            (ReadWriteAccess.READ_WRITE, True, True),
            (ReadWriteAccess.NO_ACCESS, False, False),
        ],
    )
    def test_direction_predicates(self, rwa, reads, writes):
        assert rwa.allows_read() is reads
        assert rwa.allows_write() is writes


class TestSecurityPolicy:
    def test_defaults(self):
        policy = make_policy()
        assert policy.allows_operation(is_write=True)
        assert policy.allows_operation(is_write=False)
        assert policy.allows_format(1) and policy.allows_format(2) and policy.allows_format(4)
        assert not policy.needs_ciphering and not policy.needs_integrity

    def test_validation(self):
        with pytest.raises(ValueError):
            make_policy(spi=-1)
        with pytest.raises(ValueError):
            make_policy(allowed_formats=frozenset())
        with pytest.raises(ValueError):
            make_policy(allowed_formats=frozenset({8}))
        with pytest.raises(ValueError):
            make_policy(max_burst_length=0)
        with pytest.raises(ValueError):
            make_policy(confidentiality=ConfidentialityMode.CIPHER)  # missing key_spi

    def test_ciphering_policy_with_key(self):
        policy = make_policy(
            confidentiality=ConfidentialityMode.CIPHER,
            integrity=IntegrityMode.HASH_TREE,
            key_spi=7,
        )
        assert policy.needs_ciphering and policy.needs_integrity

    def test_format_and_burst_checks(self):
        policy = make_policy(allowed_formats=frozenset({4}), max_burst_length=2)
        assert policy.allows_format(4) and not policy.allows_format(1)
        assert policy.allows_burst(2) and not policy.allows_burst(3)

    def test_with_updates_creates_modified_copy(self):
        policy = make_policy()
        tightened = policy.with_updates(rwa=ReadWriteAccess.READ_ONLY)
        assert tightened.rwa is ReadWriteAccess.READ_ONLY
        assert policy.rwa is ReadWriteAccess.READ_WRITE
        assert tightened.spi == policy.spi

    def test_rule_count_scales_with_features(self):
        plain = make_policy(allowed_formats=frozenset({4}))
        rich = make_policy(
            allowed_formats=frozenset({1, 2, 4}),
            confidentiality=ConfidentialityMode.CIPHER,
            integrity=IntegrityMode.HASH_TREE,
            key_spi=1,
        )
        assert rich.rule_count() > plain.rule_count()

    def test_policies_are_hashable_and_frozen(self):
        policy = make_policy()
        with pytest.raises(AttributeError):
            policy.spi = 5  # type: ignore[misc]
        assert {policy: "x"}[policy] == "x"


class TestPolicyRule:
    def test_covers(self):
        rule = PolicyRule(base=0x100, size=0x100, policy=make_policy())
        assert rule.covers(0x100)
        assert rule.covers(0x1FC, 4)
        assert not rule.covers(0x1FD, 4)
        assert not rule.covers(0xFF)
        assert rule.end == 0x200

    def test_validation(self):
        with pytest.raises(ValueError):
            PolicyRule(base=-1, size=4, policy=make_policy())
        with pytest.raises(ValueError):
            PolicyRule(base=0, size=0, policy=make_policy())

    def test_overlaps(self):
        a = PolicyRule(base=0, size=0x100, policy=make_policy())
        b = PolicyRule(base=0x80, size=0x100, policy=make_policy())
        c = PolicyRule(base=0x100, size=0x100, policy=make_policy())
        assert a.overlaps(b) and not a.overlaps(c)


class TestConfigurationMemory:
    def test_lookup_hits_the_covering_rule(self):
        memory = ConfigurationMemory("cfg")
        read_only = make_policy(spi=2, rwa=ReadWriteAccess.READ_ONLY)
        memory.add(0x0, 0x100, make_policy(spi=1))
        memory.add(0x100, 0x100, read_only)
        assert memory.lookup(0x40).spi == 1
        assert memory.lookup(0x140).spi == 2
        assert memory.lookup_count == 2

    def test_lookup_miss_default_deny(self):
        memory = ConfigurationMemory("cfg")
        memory.add(0x0, 0x100, make_policy())
        with pytest.raises(PolicyLookupError):
            memory.lookup(0x1000)
        assert memory.miss_count == 1

    def test_lookup_miss_with_default_policy(self):
        default = make_policy(spi=99, rwa=ReadWriteAccess.READ_ONLY)
        memory = ConfigurationMemory("cfg", default_policy=default)
        assert memory.lookup(0x5000).spi == 99

    def test_capacity_enforced(self):
        memory = ConfigurationMemory("cfg", capacity=2)
        memory.add(0x0, 0x10, make_policy())
        memory.add(0x10, 0x10, make_policy())
        with pytest.raises(ConfigurationMemoryFull):
            memory.add(0x20, 0x10, make_policy())

    def test_overlapping_rules_rejected(self):
        memory = ConfigurationMemory("cfg")
        memory.add(0x0, 0x100, make_policy())
        with pytest.raises(ValueError):
            memory.add(0x80, 0x100, make_policy())

    def test_remove_and_replace(self):
        memory = ConfigurationMemory("cfg")
        memory.add(0x0, 0x100, make_policy(spi=1))
        assert memory.replace_policy(0x0, make_policy(spi=5))
        assert memory.lookup(0x0).spi == 5
        assert not memory.replace_policy(0x900, make_policy(spi=6))
        assert memory.remove(0x0)
        assert not memory.remove(0x0)
        assert memory.reconfiguration_count == 2
        assert len(memory) == 0

    def test_rule_for_and_iteration(self):
        memory = ConfigurationMemory("cfg")
        rule = memory.add(0x0, 0x100, make_policy(), label="window")
        assert memory.rule_for(0x50) is rule
        assert memory.rule_for(0x500) is None
        assert list(memory) == [rule]
        assert memory.rules == (rule,)

    def test_total_rule_count_and_policies(self):
        memory = ConfigurationMemory("cfg")
        memory.add(0x0, 0x100, make_policy(spi=1))
        memory.add(0x100, 0x100, make_policy(spi=1))
        memory.add(0x200, 0x100, make_policy(spi=2, allowed_formats=frozenset({4})))
        assert len(memory.policies()) == 2
        assert memory.total_rule_count() > 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ConfigurationMemory("cfg", capacity=0)

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=63), st.integers(min_value=1, max_value=8)),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_lookup_never_returns_non_covering_rule(self, windows):
        memory = ConfigurationMemory("cfg", capacity=64)
        installed = []
        for index, (slot, length) in enumerate(windows):
            base = slot * 0x100
            size = length * 0x10
            rule = PolicyRule(base=base, size=size, policy=make_policy(spi=index))
            if any(rule.overlaps(other) for other in installed):
                continue
            memory.add_rule(rule)
            installed.append(rule)
        for rule in installed:
            policy = memory.lookup(rule.base, 1)
            assert rule.covers(rule.base)
            assert policy.spi == rule.policy.spi
