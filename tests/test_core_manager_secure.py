"""Tests for the security manager (reactions/reconfiguration) and for
secure_platform wiring."""


from repro.core.alerts import SecurityAlert, SecurityMonitor, ViolationType
from repro.core.ciphering_firewall import LocalCipheringFirewall
from repro.core.local_firewall import LocalFirewall
from repro.core.manager import ReactionPolicy, SecurityPolicyManager
from repro.core.policy import ConfigurationMemory, ReadWriteAccess, SecurityPolicy
from repro.core.secure import default_policies, secure_platform
from repro.crypto.keys import KeyStore
from repro.soc.kernel import Simulator
from repro.soc.processor import MemoryOperation, ProcessorProgram
from repro.soc.system import build_reference_platform
from repro.soc.transaction import TransactionStatus

from tests.conftest import make_security_config


def make_manager(reaction=None, key_store=None):
    sim = Simulator()
    monitor = SecurityMonitor()
    manager = SecurityPolicyManager(sim, monitor, reaction=reaction, key_store=key_store)
    memory = ConfigurationMemory("cfg_x", capacity=4)
    memory.add(0x0, 0x100, SecurityPolicy(spi=1))
    firewall = LocalFirewall(sim, "lf_x", memory, monitor=monitor, protected_ip="cpu0")
    manager.register_firewall(firewall, guards_master="cpu0")
    return sim, monitor, manager, firewall


def alert(master="cpu0", cycle=1, violation=ViolationType.UNAUTHORIZED_READ):
    return SecurityAlert.for_violation(
        cycle=cycle, firewall="lf_x", master=master, violation=violation,
        address=0x0, txn_id=0,
    )


class TestSecurityPolicyManager:
    def test_quarantine_after_threshold(self):
        _, monitor, manager, firewall = make_manager(ReactionPolicy(quarantine_after=3))
        for cycle in range(2):
            monitor.raise_alert(alert(cycle=cycle))
        assert not firewall.quarantined
        monitor.raise_alert(alert(cycle=3))
        assert firewall.quarantined
        assert manager.violations_of("cpu0") == 3
        assert any(event.kind == "quarantine" for event in manager.reactions)

    def test_release_quarantine(self):
        _, monitor, manager, firewall = make_manager(ReactionPolicy(quarantine_after=1))
        monitor.raise_alert(alert())
        assert firewall.quarantined
        assert manager.release("cpu0")
        assert not firewall.quarantined

    def test_quarantine_unknown_master_is_noop(self):
        _, _, manager, _ = make_manager()
        assert not manager.quarantine("cpu9")
        assert not manager.release("cpu9")

    def test_reconfigure_policy(self):
        _, _, manager, firewall = make_manager()
        tightened = SecurityPolicy(spi=2, rwa=ReadWriteAccess.READ_ONLY)
        assert manager.reconfigure_policy("lf_x", 0x0, tightened)
        assert firewall.config_memory.lookup(0x0).rwa is ReadWriteAccess.READ_ONLY
        assert not manager.reconfigure_policy("lf_x", 0x999, tightened)

    def test_zeroise_keys_on_critical_integrity_alert(self):
        keys = KeyStore()
        keys.install(1, bytes(16))
        keys.lock()
        _, monitor, manager, _ = make_manager(
            ReactionPolicy(zeroise_keys_on_critical=True), key_store=keys
        )
        monitor.raise_alert(alert(violation=ViolationType.INTEGRITY_FAILURE))
        assert len(keys) == 0
        assert keys.locked  # lock state restored

    def test_zeroise_without_key_store(self):
        _, _, manager, _ = make_manager()
        assert not manager.zeroise_keys()

    def test_reaction_latency(self):
        sim, monitor, manager, _ = make_manager(ReactionPolicy(quarantine_after=1))
        assert manager.reaction_latency() is None
        monitor.raise_alert(alert(cycle=0))
        assert manager.reaction_latency() == 0
        summary = manager.summary()
        assert summary["violations_by_master"] == {"cpu0": 1}
        assert summary["reactions"][0]["kind"] == "quarantine"


class TestDefaultPolicies:
    def test_policy_set_shape(self):
        policies = default_policies()
        assert policies["ddr_secure"].needs_ciphering
        assert policies["ddr_secure"].needs_integrity
        assert policies["ddr_cipher_only"].needs_ciphering
        assert not policies["ddr_cipher_only"].needs_integrity
        assert not policies["ddr_plain"].needs_ciphering
        assert policies["ip_registers"].allowed_formats == frozenset({4})
        assert policies["internal_readonly"].rwa is ReadWriteAccess.READ_ONLY
        # SPIs are unique.
        spis = [p.spi for p in policies.values()]
        assert len(spis) == len(set(spis))


class TestSecurePlatform:
    def test_firewall_placement(self, secured):
        system, security = secured
        # One LF per master (3 CPUs + DMA), one per internal slave (BRAM, IP).
        assert set(security.master_firewalls) == {"cpu0", "cpu1", "cpu2", "dma"}
        assert set(security.slave_firewalls) == {"bram", "ip0"}
        assert isinstance(security.ciphering_firewall, LocalCipheringFirewall)
        assert security.local_firewall_count() == 6
        assert len(security.all_firewalls) == 7

    def test_ports_carry_the_filters(self, secured):
        system, security = secured
        for name, firewall in security.master_firewalls.items():
            assert firewall in system.master_ports[name].filters
        assert security.ciphering_firewall in system.slave_ports["ddr"].filters

    def test_key_store_locked_after_setup(self, secured):
        _, security = secured
        assert security.key_store.locked
        assert len(security.key_store) == 2

    def test_partial_protection_options(self):
        system = build_reference_platform()
        config = make_security_config(protect_masters=False, protect_external_memory=False)
        security = secure_platform(system, config)
        assert not security.master_firewalls
        assert security.ciphering_firewall is None
        assert security.slave_firewalls

    def test_dma_not_allowed_on_ip_registers(self, secured):
        system, security = secured
        finished = []
        system.dma.kickoff(system.config.ip_regs_base, system.config.ddr_base + 0x4000, 16,
                           on_done=finished.append)
        system.run()
        assert system.dma.blocked
        assert security.monitor.count(ViolationType.POLICY_MISS) >= 1

    def test_legitimate_traffic_raises_no_alerts(self, secured):
        system, security = secured
        cfg = system.config
        program = ProcessorProgram([
            MemoryOperation.write(cfg.bram_base + 0x80, bytes(16)),
            MemoryOperation.read(cfg.bram_base + 0x80, burst_length=4),
            MemoryOperation.write(cfg.ip_regs_base + 0x20, (5).to_bytes(4, "little")),
            MemoryOperation.write(cfg.ddr_base + 0x100, bytes(range(32))),
            MemoryOperation.read(cfg.ddr_base + 0x100, burst_length=8),
        ])
        system.processors["cpu0"].load_program(program)
        system.processors["cpu0"].start()
        system.run()
        cpu = system.processors["cpu0"]
        assert all(t.status is TransactionStatus.COMPLETED for t in cpu.transactions)
        assert security.monitor.count() == 0

    def test_summary_structure(self, secured):
        _, security = secured
        summary = security.summary()
        assert "firewalls" in summary and "alerts" in summary and "reactions" in summary
        assert "lcf_ddr" in summary["firewalls"]

    def test_protection_windows_cover_configured_sizes(self, secured):
        system, security = secured
        lcf = security.ciphering_firewall
        secure_region = lcf.region_for(system.config.ddr_base)
        assert secure_region is not None
        assert secure_region.rule.size == security.config.ddr_secure_size
