"""Attack chains: per-step attribution, containment and sharding stability."""

from __future__ import annotations

import pickle

import pytest

from repro.attacks.campaign import CampaignReport
from repro.attacks.chains import (
    BootRollbackChain,
    DescriptorHijackChain,
    FirmwareSabotageChain,
)
from repro.attacks.runner import CampaignRunner
from repro.scenarios import get_scenario
from repro.scenarios.builder import ScenarioBuilder
from repro.soc.transaction import TransactionStatus


def _built(name: str, protected: bool = True):
    return ScenarioBuilder(get_scenario(name)).build(protected, _warn=False)


# -- per-step semantics -----------------------------------------------------------


def test_firmware_chain_succeeds_for_authorized_master():
    built = _built("firmware_update_bay")
    result = FirmwareSabotageChain(hijacked_master="cpu0").run(
        built.system, built.security
    )
    assert result.achieved_goal
    steps = result.extra["chain_steps"]
    assert [s["label"] for s in steps] == ["unlock", "arm", "stage_payload", "commit"]
    assert all(s["status"] == TransactionStatus.COMPLETED.value for s in steps)
    assert result.extra["chain"]["first_blocked_step"] is None


def test_firmware_chain_is_contained_at_first_step_for_restricted_master():
    built = _built("firmware_update_bay")
    result = FirmwareSabotageChain(hijacked_master="cpu1").run(
        built.system, built.security
    )
    assert not result.achieved_goal
    assert result.detected
    assert result.contained_at_interface
    chain = result.extra["chain"]
    assert chain["first_blocked_step"] == 0
    assert chain["steps_run"] == 1  # the chain stops at the broken link
    step = result.extra["chain_steps"][0]
    assert step["status"] == TransactionStatus.BLOCKED_AT_MASTER.value
    assert step["alerts"] >= 1
    assert step["block_reason"]
    # The device never saw the protocol: nothing committed, no violation.
    assert built.system.ips["fw0"].commits == 0


def test_firmware_chain_runs_free_on_the_unprotected_platform():
    built = _built("firmware_update_bay", protected=False)
    result = FirmwareSabotageChain(hijacked_master="cpu1").run(built.system, None)
    assert result.achieved_goal
    assert not result.detected
    assert built.system.ips["fw0"].commits == 1


def test_descriptor_hijack_needs_the_exfiltration_step_to_count():
    # cpu0 may program the ring, but the secret bram is not in its policy:
    # the descriptor latches, the programmed read is blocked, goal not achieved.
    built = _built("firmware_update_bay")
    result = DescriptorHijackChain(
        hijacked_master="cpu0", target_address=0x0001_0000
    ).run(built.system, built.security)
    assert not result.achieved_goal
    steps = {s["label"]: s for s in result.extra["chain_steps"]}
    assert steps["ring_doorbell"]["status"] == TransactionStatus.COMPLETED.value
    assert steps["exfiltrate"]["status"] != TransactionStatus.COMPLETED.value
    ring = built.system.ips["ring0"]
    assert any(dst == 0x0001_0000 for (_s, dst, _l, _f) in ring.latched)


def test_boot_rollback_chain_is_blocked_on_the_registered_pack():
    built = _built("secure_boot_bay")
    result = BootRollbackChain(hijacked_master="cpu1").run(
        built.system, built.security
    )
    assert not result.achieved_goal
    assert result.extra["chain"]["first_blocked_step"] == 0
    assert built.system.ips["boot0"].leaks == []


def test_chains_are_picklable_for_campaign_shards():
    for chain in (
        FirmwareSabotageChain(),
        DescriptorHijackChain(),
        BootRollbackChain(),
    ):
        clone = pickle.loads(pickle.dumps(chain))
        assert clone.name == chain.name


# -- campaign attribution ---------------------------------------------------------


@pytest.fixture(scope="module")
def serial_report() -> CampaignReport:
    return CampaignRunner.from_spec(
        get_scenario("firmware_update_bay"), n_workers=1
    ).run()


def test_campaign_report_carries_chain_totals(serial_report):
    totals = serial_report.chain_totals()
    # Two chain attacks ride in the pack (the dos flood is not a chain).
    assert totals["attacks"] == 2
    assert totals["steps_planned"] > totals["steps_run"] >= totals["attacks"]
    assert totals["broken_chains"] == 2
    assert totals["blocked_steps"] == 2
    assert totals["alerted_steps"] >= 2
    assert sum(totals["containment"].values()) == totals["blocked_steps"]
    assert serial_report.summary()["chains"] == totals


def test_chain_totals_absent_for_chainless_scenarios():
    report = CampaignRunner.from_spec(get_scenario("minimal_1x1"), n_workers=1).run()
    assert report.chain_totals()["attacks"] == 0
    assert "chains" not in report.summary()


def test_sharded_campaign_attribution_matches_serial(serial_report):
    """Per-step chain accounting must not double-count across shards: any
    worker count yields exactly the serial totals, summary and matrix."""
    sharded = CampaignRunner.from_spec(
        get_scenario("firmware_update_bay"), n_workers=3
    ).run()
    assert sharded.chain_totals() == serial_report.chain_totals()
    assert sharded.summary() == serial_report.summary()
    assert sharded.as_table_rows() == serial_report.as_table_rows()
    assert sharded.monitor_totals == serial_report.monitor_totals
