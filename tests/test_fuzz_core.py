"""Core fuzzer machinery: cases, generator determinism, shrinking, corpus,
report reproducibility and the ``repro fuzz`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.api.cli import main
from repro.fuzz import (
    BypassOracle,
    Corpus,
    FuzzCase,
    FuzzStep,
    SequenceGenerator,
    export_cases,
    fuzz_scenario,
    load_cases,
    planted_backdoor_spec,
    replay_case,
    shrink_case,
)
from repro.scenarios import get_scenario
from repro.sweep.store import ResultStore

SPEC = planted_backdoor_spec()


# -- cases ------------------------------------------------------------------------


def _case() -> FuzzCase:
    return FuzzCase(
        scenario="planted_backdoor",
        seed=3,
        steps=(
            FuzzStep("cpu0", "write", 0x4200_0008, data=b"\x01\x00\xb6\xde"),
            FuzzStep("cpu0", "read", 0x4200_0010),
        ),
    )


def test_case_round_trips_through_dict():
    case = _case()
    clone = FuzzCase.from_dict(json.loads(json.dumps(case.to_dict())))
    assert clone == case
    assert clone.digest() == case.digest()


def test_case_digest_tracks_steps_not_seed():
    case = _case()
    assert FuzzCase.from_dict({**case.to_dict(), "seed": 99}).digest() == case.digest()
    shorter = case.with_steps(case.steps[:1])
    assert shorter.digest() != case.digest()


def test_steps_validate_op_and_write_data():
    with pytest.raises(ValueError):
        FuzzStep("cpu0", "erase", 0x0)
    with pytest.raises(ValueError):
        FuzzStep("cpu0", "write", 0x0)  # no data


# -- generator --------------------------------------------------------------------


def test_generator_is_deterministic_per_seed():
    a = SequenceGenerator(SPEC, seed=11)
    b = SequenceGenerator(SPEC, seed=11)
    cases_a = [a.generate(8) for _ in range(5)]
    cases_b = [b.generate(8) for _ in range(5)]
    assert cases_a == cases_b
    assert [a.mutate(c) for c in cases_a] == [b.mutate(c) for c in cases_b]
    assert SequenceGenerator(SPEC, seed=12).generate(8) != cases_a[0]


def test_generator_templates_speak_the_device_protocols():
    generator = SequenceGenerator(SPEC, seed=0)
    addresses = {step.address for step in generator.templates}
    boot = SPEC.topology.slave("boot0")
    assert boot.base + 0x8 in addresses  # DEBUG register
    assert boot.base + 0x0 in addresses  # STAGE register
    assert boot.base + 0x10 in addresses  # first key word
    assert all(step.master == "" for step in generator.templates)


def test_generated_steps_stay_inside_the_address_map():
    generator = SequenceGenerator(SPEC, seed=2)
    slaves = list(SPEC.topology.slaves)
    for case in (generator.generate(20) for _ in range(10)):
        for step in case.steps:
            assert any(s.base <= step.address < s.end for s in slaves)
            assert step.master in {"cpu0", "cpu1"}


# -- oracle + shrinker ------------------------------------------------------------


@pytest.fixture(scope="module")
def leak_violation():
    oracle = BypassOracle(SPEC)
    boot = SPEC.topology.slave("boot0")
    noise = FuzzStep("cpu1", "read", 0x0)
    case = FuzzCase(
        scenario=SPEC.name,
        seed=0,
        steps=(
            noise,
            FuzzStep("cpu0", "write", boot.base + 0x8, data=b"\x01\x00\xb6\xde"),
            noise,
            FuzzStep("cpu0", "write", boot.base + 0x0, data=b"\x00" * 4),
            noise,
            FuzzStep("cpu0", "read", boot.base + 0x10),
            noise,
        ),
    )
    result = oracle.run(case)
    assert [v.kind for v in result.violations] == ["guard_leak"]
    return oracle, case, result.violations[0]


def test_oracle_flags_the_planted_leak_with_a_witness(leak_violation):
    _, _, violation = leak_violation
    assert violation.identity == ("guard_leak", "cpu0", "boot0", "read")
    witness = violation.witness
    assert witness.expectation == "reaches_silently"
    assert witness.target == "boot0"


def test_oracle_is_clean_on_the_honest_protocol():
    oracle = BypassOracle(SPEC)
    boot = SPEC.topology.slave("boot0")
    result = oracle.run(FuzzCase(
        scenario=SPEC.name,
        seed=0,
        steps=(
            FuzzStep("cpu0", "write", boot.base, data=b"\x03\x00\x00\x00"),  # advance
            FuzzStep("cpu0", "read", boot.base + 0x10),  # keys are wiped: no leak
        ),
    ))
    assert result.clean
    assert result.steps_run == 2
    assert result.signature  # stage_advances showed up in the coverage signature


def test_shrinker_reduces_to_the_three_step_chain(leak_violation):
    oracle, case, violation = leak_violation
    minimized = shrink_case(oracle, case, violation)
    assert len(minimized) == 3
    assert [s.op for s in minimized.steps] == ["write", "write", "read"]
    replay = oracle.run(minimized)
    assert any(v.identity == violation.identity for v in replay.violations)


def test_shrinker_refuses_a_non_reproducing_premise(leak_violation):
    oracle, case, violation = leak_violation
    benign = case.with_steps(case.steps[:1])
    assert shrink_case(oracle, benign, violation) == benign


# -- corpus -----------------------------------------------------------------------


def test_corpus_round_trips_through_store_and_json(tmp_path, leak_violation):
    _, case, violation = leak_violation
    corpus = Corpus(ResultStore(tmp_path / "store"))
    key = corpus.add(case, violation.to_dict(), {"object": {"steps": []}})
    assert key == f"fuzz/{case.scenario}/{case.digest()}"
    assert corpus.has(case)
    assert corpus.cases("planted_backdoor") == [case]
    assert corpus.cases("other") == []

    path = tmp_path / "corpus.json"
    export_cases(path, [e["result"] for e in corpus.entries()])
    loaded = load_cases(path)
    assert len(loaded) == 1
    assert FuzzCase.from_dict(loaded[0]["case"]) == case
    assert loaded[0]["violation"]["kind"] == "guard_leak"


def test_load_cases_rejects_unknown_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 99, "cases": []}))
    with pytest.raises(ValueError):
        load_cases(path)


# -- the fuzzing loop -------------------------------------------------------------


def test_fuzz_scenario_is_bit_reproducible():
    kwargs = dict(seed=5, budget=8, n_steps=6, engines=("object",), shrink=False)
    first = fuzz_scenario(get_scenario("minimal_1x1"), **kwargs)
    second = fuzz_scenario(get_scenario("minimal_1x1"), **kwargs)
    assert first.to_dict() == second.to_dict()
    assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
        second.to_dict(), sort_keys=True
    )
    assert first.cases_run == 8
    assert first.clean


def test_replay_case_reports_engine_and_fingerprint(leak_violation):
    _, case, _ = leak_violation
    replay = replay_case(SPEC, case, "vector")
    assert replay["engine"] == "vector"
    assert replay["engine_used"] == "vector"
    assert replay["fallback_reason"] is None
    assert len(replay["steps"]) == len(case)
    assert "alerts" in replay["fingerprint"]


# -- CLI --------------------------------------------------------------------------


def test_cli_fuzz_clean_scenario_exits_zero(capsys):
    assert main(["fuzz", "minimal_1x1", "--seed", "1", "--budget", "4",
                 "--steps", "4", "--engine", "object"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_cli_fuzz_planted_backdoor_exits_one_with_json(capsys):
    code = main(["fuzz", "planted_backdoor", "--seed", "0", "--budget", "60",
                 "--steps", "10", "--json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    finding = payload["findings"][0]
    assert finding["violation"]["kind"] == "guard_leak"
    assert finding["engines_identical"] is True


def test_cli_fuzz_unknown_scenario_fails(capsys):
    with pytest.raises(SystemExit):
        main(["fuzz", "no_such_scenario", "--budget", "1"])


def test_cli_fuzz_replay_checks_the_committed_corpus(capsys):
    assert main(["fuzz", "planted_backdoor",
                 "--replay", "tests/corpus/planted_backdoor.json"]) == 0
    out = capsys.readouterr().out
    assert "0 failure(s)" in out
