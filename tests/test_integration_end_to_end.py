"""System-level integration and property tests.

These exercise the whole stack at once: workload generation, the simulated
platform, the distributed firewalls and the metrics layer.  The two key
system-level invariants are:

* **no false positives** -- workloads that respect the installed policies run
  to completion with zero alerts, protected or not, and read back exactly the
  data they wrote;
* **no false negatives for the covered threat model** -- any tampering with
  the integrity-protected external-memory window is detected on the next
  read, and any policy-violating access from a hijacked master is blocked at
  its interface.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.secure import secure_platform
from repro.metrics.perf import measure_execution_overhead
from repro.soc.processor import MemoryOperation, ProcessorProgram
from repro.soc.system import build_reference_platform
from repro.soc.transaction import BusOperation, BusTransaction, TransactionStatus
from repro.workloads.generators import make_uniform_programs
from repro.workloads.patterns import producer_consumer_programs

from tests.conftest import make_security_config


def fresh_secured(**overrides):
    system = build_reference_platform()
    security = secure_platform(system, make_security_config(**overrides))
    return system, security


class TestNoFalsePositives:
    def test_synthetic_workload_runs_clean_when_protected(self):
        system, security = fresh_secured()
        programs = make_uniform_programs(
            system.config, list(system.processors), n_operations=40,
            communication_ratio=0.7, external_share=0.3,
            external_working_set=1024, seed=5,
        )
        system.load_programs(programs)
        system.start_all()
        system.run()
        assert system.all_done()
        assert security.monitor.count() == 0
        for cpu in system.processors.values():
            assert cpu.stats.get("blocked_accesses", 0) == 0

    def test_protected_and_unprotected_runs_produce_identical_visible_data(self):
        """Protection must be transparent to software: the values a CPU reads
        back are identical with and without firewalls."""
        def run(protected):
            system = build_reference_platform()
            if protected:
                secure_platform(system, make_security_config())
            cfg = system.config
            program = ProcessorProgram([
                MemoryOperation.write(cfg.ddr_base + 0x20, bytes(range(32))),
                MemoryOperation.read(cfg.ddr_base + 0x20, width=4, burst_length=8),
                MemoryOperation.write(cfg.bram_base + 0x50, b"\x99" * 8),
                MemoryOperation.read(cfg.bram_base + 0x50, width=4, burst_length=2),
            ])
            system.processors["cpu0"].load_program(program)
            system.processors["cpu0"].start()
            system.run()
            return [t.data for t in system.processors["cpu0"].transactions if t.is_read]

        assert run(protected=False) == run(protected=True)

    def test_producer_consumer_data_flow_intact_under_protection(self):
        system, security = fresh_secured()
        programs = producer_consumer_programs(system.config, n_items=6, item_size=16)
        system.load_programs(programs)
        system.start_all()
        system.run()
        assert system.all_done()
        assert security.monitor.count() == 0
        # Once both sides have finished, a consumer read of the last mailbox
        # slot returns exactly what the producer wrote there (the cores run
        # concurrently, so only the final state is deterministic).
        expected = bytes(((5 * 7 + offset) & 0xFF) for offset in range(16))
        mailbox_base = system.config.bram_base + 0x1000
        reread = BusTransaction(master="cpu1", operation=BusOperation.READ,
                                address=mailbox_base + 5 * 16, width=4, burst_length=4)
        system.master_ports["cpu1"].issue(reread, lambda t: None)
        system.run()
        assert reread.status is TransactionStatus.COMPLETED
        assert reread.data == expected


class TestProtectionOverheadAccounting:
    def test_security_latency_sums_match_breakdowns(self):
        system, _ = fresh_secured()
        cfg = system.config
        program = ProcessorProgram([
            MemoryOperation.write(cfg.ddr_base + 0x40, bytes(32)),
            MemoryOperation.read(cfg.ddr_base + 0x40, width=4, burst_length=8),
        ])
        system.processors["cpu0"].load_program(program)
        system.processors["cpu0"].start()
        system.run()
        for txn in system.processors["cpu0"].transactions:
            total = txn.total_latency
            breakdown_sum = sum(txn.latency_breakdown.values())
            # Every charged cycle appears in the timeline (the response path
            # may add a cycle of scheduling slack, never remove one).
            assert total >= breakdown_sum
            assert txn.security_latency <= total

    def test_overhead_is_reproducible(self):
        programs = make_uniform_programs(
            build_reference_platform().config, ["cpu0", "cpu1", "cpu2"],
            n_operations=30, communication_ratio=0.5, external_share=0.4,
            external_working_set=1024, seed=8,
        )
        first = measure_execution_overhead(programs, security_config=make_security_config())
        second = measure_execution_overhead(programs, security_config=make_security_config())
        assert first.baseline.makespan_cycles == second.baseline.makespan_cycles
        assert first.protected.makespan_cycles == second.protected.makespan_cycles


class TestNoFalseNegatives:
    @given(
        offset=st.integers(min_value=0, max_value=960),
        corruption=st.binary(min_size=1, max_size=16),
    )
    @settings(max_examples=12, deadline=None)
    def test_any_tampering_of_protected_window_is_detected(self, offset, corruption):
        system, security = fresh_secured()
        cfg = system.config
        address = cfg.ddr_base + offset

        # The victim writes a known value somewhere in the protected window.
        write = BusTransaction(master="cpu0", operation=BusOperation.WRITE,
                               address=cfg.ddr_base + (offset // 4) * 4, width=4,
                               data=b"\x5a\x5a\x5a\x5a")
        system.master_ports["cpu0"].issue(write, lambda t: None)
        system.run()

        # The attacker corrupts raw external memory at an arbitrary position.
        original = system.ddr.peek(address, len(corruption))
        if original == corruption:
            corruption = bytes(b ^ 0xFF for b in corruption)
        system.ddr.poke(address, corruption)

        # Any read covering the corrupted block must be rejected.
        block_base = cfg.ddr_base + ((address - cfg.ddr_base) // 32) * 32
        read = BusTransaction(master="cpu0", operation=BusOperation.READ,
                              address=block_base, width=4, burst_length=8)
        system.master_ports["cpu0"].issue(read, lambda t: None)
        system.run()
        assert read.status is TransactionStatus.INTEGRITY_ERROR
        assert security.monitor.count() >= 1

    @given(master=st.sampled_from(["cpu2", "dma"]))
    @settings(max_examples=6, deadline=None)
    def test_unauthorised_masters_never_reach_the_ip(self, master):
        system, security = fresh_secured()
        cfg = system.config
        system.register_ip.write_register(0, 0x5EC4E7)
        probe = BusTransaction(master=master, operation=BusOperation.READ,
                               address=cfg.ip_regs_base, width=4)
        system.master_ports[master].issue(probe, lambda t: None)
        system.run()
        assert probe.status is TransactionStatus.BLOCKED_AT_MASTER
        assert master not in system.bus.monitor.per_master
        assert not system.register_ip.sensitive_reads


class TestQuarantineEndToEnd:
    def test_repeated_violations_lead_to_quarantine_on_the_live_platform(self):
        system, security = fresh_secured()
        cfg = system.config
        for _ in range(3):
            probe = BusTransaction(master="cpu2", operation=BusOperation.READ,
                                   address=cfg.ip_regs_base, width=4)
            system.master_ports["cpu2"].issue(probe, lambda t: None)
            system.run()
        assert security.master_firewalls["cpu2"].quarantined
        # Even a previously legitimate BRAM access is now blocked.
        legit = BusTransaction(master="cpu2", operation=BusOperation.READ,
                               address=cfg.bram_base, width=4)
        system.master_ports["cpu2"].issue(legit, lambda t: None)
        system.run()
        assert legit.status is TransactionStatus.BLOCKED_AT_MASTER
        assert security.manager.reaction_latency() is not None
