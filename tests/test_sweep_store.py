"""ResultStore durability: resume tolerance, digests, garbage collection,
and safety under concurrent writer processes."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.sweep import ResultStore, code_fingerprint
from repro.sweep.store import canonical_result


def _result(cycles: int = 100, wall: float = 0.5) -> dict:
    return {
        "scenario": "fake",
        "workload": {"final_cycle": cycles},
        "campaign": {
            "summary": {"attacks": 1, "prevented": 1, "detected": 1},
            "metrics": {
                "n_workers": 1,
                "wall_seconds": wall,
                "shards": [{"shard": 0, "seed": 7, "attacks": 1, "seconds": wall}],
            },
        },
    }


class TestCoreApi:
    def test_put_get_roundtrip_survives_reopen(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("k1", "p1", "fake", "fp", _result())
        reopened = ResultStore(tmp_path / "store")
        assert reopened.has("k1")
        assert reopened.get("k1")["result"]["workload"]["final_cycle"] == 100
        assert len(reopened) == 1

    def test_last_write_wins_per_key(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("k1", "p1", "fake", "fp", _result(cycles=1))
        store.put("k1", "p1", "fake", "fp", _result(cycles=2))
        assert ResultStore(tmp_path / "store").get("k1")["result"]["workload"]["final_cycle"] == 2

    def test_partial_trailing_line_is_tolerated(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("k1", "p1", "fake", "fp", _result())
        with store.results_path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "k2", "result": {"trunc')  # killed mid-write
        reopened = ResultStore(tmp_path / "store")
        assert reopened.has("k1") and not reopened.has("k2")

    def test_read_only_open_creates_nothing_on_disk(self, tmp_path):
        mistyped = tmp_path / "no-such-store"
        store = ResultStore(mistyped)  # e.g. report rendering over a typo'd path
        assert len(store) == 0
        store.gc(keep_latest=1)  # dry run
        assert not mistyped.exists()

    def test_reopen_does_not_rewrite_an_up_to_date_manifest(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("k1", "p1", "fake", "fp", _result())
        store.flush_manifest()
        before = store.manifest_path.stat().st_mtime_ns
        reopened = ResultStore(tmp_path / "store")  # read-only consumer
        reopened.gc(keep_latest=1)  # dry run must not touch the store either
        reopened.flush_manifest()  # unchanged content: no rewrite
        assert store.manifest_path.stat().st_mtime_ns == before

    def test_manifest_mirrors_entries_after_flush(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("k1", "p1", "scn", "fp", _result())
        store.flush_manifest()
        manifest = json.loads(store.manifest_path.read_text())
        assert manifest["entries"]["k1"]["point_id"] == "p1"
        assert manifest["entries"]["k1"]["fingerprint"] == "fp"

    def test_gc_apply_leaves_no_temp_file(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("k1", "p1", "fake", "fp-old", _result())
        store.put("k2", "p2", "fake", "fp-new", _result())
        store.gc(keep_latest=1, apply=True)
        assert sorted(p.name for p in (tmp_path / "store").iterdir()) == [
            ".lock", "manifest.json", "results.jsonl",
        ]


class TestDigest:
    def test_digest_ignores_wall_clock_timings(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        a.put("k1", "p1", "fake", "fp", _result(wall=0.1))
        b.put("k1", "p1", "fake", "fp", _result(wall=9.9))
        assert a.digest() == b.digest()

    def test_digest_sees_real_result_changes(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        a.put("k1", "p1", "fake", "fp", _result(cycles=1))
        b.put("k1", "p1", "fake", "fp", _result(cycles=2))
        assert a.digest() != b.digest()

    def test_canonical_result_does_not_mutate_the_input(self):
        original = _result(wall=3.3)
        canonical = canonical_result(original)
        assert original["campaign"]["metrics"]["wall_seconds"] == 3.3
        assert "wall_seconds" not in canonical["campaign"]["metrics"]


def _hammer_store(path: str, writer: int, n_entries: int) -> None:
    """Worker process: append this writer's share of entries to one store."""
    store = ResultStore(path)
    for i in range(n_entries):
        store.put(f"w{writer}-k{i}", f"w{writer}-p{i}", "fake", "fp",
                  _result(cycles=writer * 1000 + i))


class TestConcurrentWriters:
    """The PR-7 bugfix: the store is safe under concurrent processes."""

    def test_n_processes_hammering_one_store_match_a_serial_run(self, tmp_path):
        n_writers, n_entries = 4, 8
        shared = tmp_path / "shared"
        workers = [
            multiprocessing.Process(
                target=_hammer_store, args=(str(shared), w, n_entries)
            )
            for w in range(n_writers)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
            assert worker.exitcode == 0

        serial = ResultStore(tmp_path / "serial")
        for w in range(n_writers):
            _hammer_store(str(tmp_path / "serial"), w, n_entries)

        reloaded = ResultStore(shared)
        assert len(reloaded) == n_writers * n_entries
        assert reloaded.digest() == ResultStore(tmp_path / "serial").digest()
        # No interleaved/torn lines: every line parses and seqs are unique.
        seqs = [e["seq"] for e in reloaded.entries()]
        assert sorted(seqs) == list(range(n_writers * n_entries))
        del serial

    def test_put_sees_lines_appended_by_another_handle(self, tmp_path):
        a = ResultStore(tmp_path / "store")
        b = ResultStore(tmp_path / "store")  # second handle, same directory
        a.put("k-a", "p-a", "fake", "fp", _result())
        b.put("k-b", "p-b", "fake", "fp", _result())
        # b reloaded before appending: it saw a's entry and chained the seq.
        assert b.has("k-a")
        assert b.get("k-b")["seq"] == 1
        reopened = ResultStore(tmp_path / "store")
        assert len(reopened) == 2

    def test_flush_manifest_never_drops_a_concurrent_append(self, tmp_path):
        a = ResultStore(tmp_path / "store")
        b = ResultStore(tmp_path / "store")
        a.put("k-a", "p-a", "fake", "fp", _result())
        b.put("k-b", "p-b", "fake", "fp", _result())
        # The stale handle flushes: the manifest must still index both.
        a.flush_manifest()
        manifest = json.loads(a.manifest_path.read_text())
        assert set(manifest["entries"]) == {"k-a", "k-b"}

    def test_gc_apply_never_loses_a_concurrent_append(self, tmp_path):
        a = ResultStore(tmp_path / "store")
        a.put("k-old", "p-old", "fake", "fp-old", _result())
        a.put("k-new", "p-new", "fake", "fp-new", _result())
        # Another process appends with the current fingerprint while the
        # first handle is about to gc: the rewrite must keep that entry.
        b = ResultStore(tmp_path / "store")
        b.put("k-racer", "p-racer", "fake", "fp-new", _result())
        report = a.gc(keep_latest=1, apply=True)
        assert report.applied
        survivors = set(json.loads(a.manifest_path.read_text())["entries"])
        assert survivors == {"k-new", "k-racer"}

    def test_put_terminates_a_dead_writers_torn_line(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("k1", "p1", "fake", "fp", _result())
        with store.results_path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "k-torn", "result": {"trunc')  # killed mid-write
        late = ResultStore(tmp_path / "store")
        late.put("k2", "p2", "fake", "fp", _result())
        reopened = ResultStore(tmp_path / "store")
        assert reopened.has("k1") and reopened.has("k2")
        assert not reopened.has("k-torn")

    def test_reload_follows_a_gc_shrunken_file(self, tmp_path):
        a = ResultStore(tmp_path / "store")
        a.put("k-old", "p-old", "fake", "fp-old", _result())
        a.put("k-new", "p-new", "fake", "fp-new", _result())
        b = ResultStore(tmp_path / "store")  # long-lived reader
        a.gc(keep_latest=1, apply=True)
        b.reload()
        assert b.has("k-new") and not b.has("k-old")


class TestGc:
    def _seed(self, store: ResultStore) -> None:
        store.put("k1", "p1", "fake", "fp-old", _result())
        store.put("k2", "p2", "fake", "fp-old", _result())
        store.put("k3", "p3", "fake", "fp-new", _result())

    def test_dry_run_reports_but_keeps_everything(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        self._seed(store)
        report = store.gc(keep_latest=1)
        assert not report.applied
        assert report.kept_fingerprints == ["fp-new"]
        assert report.dropped_fingerprints == ["fp-old"]
        assert report.dropped_points == ["p1", "p2"]
        assert len(ResultStore(tmp_path / "store")) == 3

    def test_apply_rewrites_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        self._seed(store)
        report = store.gc(keep_latest=1, apply=True)
        assert report.applied
        reopened = ResultStore(tmp_path / "store")
        assert len(reopened) == 1 and reopened.has("k3")
        manifest = json.loads(reopened.manifest_path.read_text())
        assert set(manifest["entries"]) == {"k3"}

    def test_keep_latest_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path / "store").gc(keep_latest=0)


def test_code_fingerprint_is_stable_within_a_process():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 16


def test_code_and_engine_fingerprints_split_the_package():
    from repro.sweep import engine_fingerprint

    assert engine_fingerprint() != code_fingerprint()
    assert len(engine_fingerprint()) == 16


def test_tree_fingerprint_partitions_edits_by_subtree(tmp_path):
    """An engine-only edit must move the engine fingerprint and leave the
    base code fingerprint untouched — and vice versa."""
    from repro.sweep.store import _tree_fingerprint

    root = tmp_path / "pkg"
    (root / "engine").mkdir(parents=True)
    (root / "core").mkdir()
    (root / "core" / "a.py").write_text("x = 1\n")
    (root / "engine" / "vector.py").write_text("y = 1\n")

    base = _tree_fingerprint(root, exclude="engine")
    engine = _tree_fingerprint(root, subtree="engine")

    (root / "engine" / "vector.py").write_text("y = 2\n")
    assert _tree_fingerprint(root, exclude="engine") == base
    engine_after = _tree_fingerprint(root, subtree="engine")
    assert engine_after != engine

    (root / "core" / "a.py").write_text("x = 2\n")
    assert _tree_fingerprint(root, exclude="engine") != base
    assert _tree_fingerprint(root, subtree="engine") == engine_after
