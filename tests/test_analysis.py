"""Tests for the table renderer, architecture report and comparison records."""

import pytest

from repro.analysis.report import (
    ArchitectureReport,
    ExperimentRecord,
    PaperComparison,
    render_table1,
    render_table2,
)
from repro.analysis.tables import format_resource_table, format_table
from repro.core.secure import secure_platform
from repro.metrics.area import generate_table1
from repro.metrics.latency import Table2Row
from repro.soc.system import build_reference_platform

from tests.conftest import make_security_config


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["alpha", 1], ["beta", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert "alpha" in lines[2] and "22" in lines[3]

    def test_title(self):
        text = format_table(["a"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"
        assert text.splitlines()[1] == "========"

    def test_none_rendered_as_dash(self):
        text = format_table(["a", "b"], [[None, 1.5]])
        assert "-" in text.splitlines()[-1]
        assert "1.50" in text

    def test_thousands_separator_for_ints(self):
        text = format_table(["n"], [[123456]])
        assert "123,456" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_resource_table_from_table1_rows(self):
        text = format_resource_table(generate_table1(), title="Table I")
        assert "Generic w/o firewalls" in text
        assert "12,895" in text
        assert "overhead" in text.splitlines()[2]


class TestRenderers:
    def test_render_table1_contains_all_rows(self):
        text = render_table1(generate_table1())
        for label in ("Generic w/o", "Generic w/", "SB", "CC", "IC", "Local Firewall"):
            assert label in text

    def test_render_table2(self):
        rows = [
            Table2Row("SB (LF/LCF)", 12.0, 12, None, None, 10),
            Table2Row("CC", 11.0, 11, 1163.6, 450.0, 4),
        ]
        text = render_table2(rows)
        assert "SB (LF/LCF)" in text and "1163.60" in text and "450" in text


class TestPaperComparison:
    def test_relative_error_and_match(self):
        comparison = PaperComparison("x", paper_value=100.0, measured_value=103.0)
        assert comparison.relative_error == pytest.approx(0.03)
        assert comparison.matches(tolerance=0.05)
        assert not comparison.matches(tolerance=0.01)

    def test_zero_paper_value(self):
        assert PaperComparison("x", 0.0, 0.0).relative_error == 0.0
        assert PaperComparison("x", 0.0, 1.0).relative_error == float("inf")


class TestExperimentRecord:
    def test_matched_fraction_and_render(self):
        record = ExperimentRecord("E1", "area table")
        record.add_comparison(PaperComparison("regs", 100, 100))
        record.add_comparison(PaperComparison("luts", 100, 150))
        record.add_table("table1", "rendered table body")
        record.notes.append("calibrated model")
        assert record.matched_fraction(tolerance=0.05) == 0.5
        text = record.render()
        assert "Experiment E1" in text
        assert "rendered table body" in text
        assert "note: calibrated model" in text

    def test_empty_record_matches_trivially(self):
        assert ExperimentRecord("E0", "empty").matched_fraction() == 1.0


class TestArchitectureReport:
    def test_render_unprotected_vs_protected(self):
        system = build_reference_platform()
        unprotected = ArchitectureReport(system.describe_topology())
        assert unprotected.firewall_count() == 0
        assert "(no firewall)" in unprotected.render()

        secure_platform(system, make_security_config())
        protected = ArchitectureReport(system.describe_topology())
        assert protected.firewall_count() == len(system.master_ports) + len(system.slave_ports)
        rendered = protected.render()
        assert "LocalFirewall" in rendered
        assert "LocalCipheringFirewall" in rendered
        assert "external" in rendered
        # All three regions of the memory map are listed.
        for region in ("bram", "ip0_regs", "ddr"):
            assert region in rendered
