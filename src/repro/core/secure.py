"""Attach the distributed security enhancements to a platform.

:func:`secure_platform` takes an unprotected :class:`~repro.soc.system.SoCSystem`
(as produced by :func:`repro.soc.system.build_reference_platform`) and builds
the protected system of the paper's Figure 1:

* a Local Firewall on every master interface (each MicroBlaze, the DMA IP),
* a Local Firewall on every internal slave interface (BRAM, dedicated IP),
* a Local Ciphering Firewall between the bus and the external DDR,
* one trusted Configuration Memory per firewall, one platform-wide
  :class:`SecurityMonitor` and one :class:`SecurityPolicyManager`.

The default security policies follow the paper's threat model: internal
communications are not encrypted (the LFs protect them against unauthorized
access), while the external memory is split into a ciphered+authenticated
window, a ciphered-only window and an unprotected window ("many systems do
not provide a uniform protection but allow some parts of the memory to be
unprotected or only ciphered").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.alerts import SecurityMonitor
from repro.core.ciphering_firewall import LocalCipheringFirewall
from repro.core.local_firewall import LocalFirewall
from repro.core.manager import ReactionPolicy, SecurityPolicyManager
from repro.core.policy import (
    ConfidentialityMode,
    ConfigurationMemory,
    IntegrityMode,
    ReadWriteAccess,
    SecurityPolicy,
)
from repro.crypto.keys import KeyStore, random_key
from repro.soc.system import SoCSystem

__all__ = [
    "SecurityConfiguration",
    "SecuredPlatform",
    "secure_platform",
    "secure_reference_platform",
    "default_policies",
    "PlanRule",
    "MasterFirewallPlan",
    "SlaveFirewallPlan",
    "BridgeFirewallPlan",
    "CipheringFirewallPlan",
    "SecurityPlan",
    "FIREWALL_PLACEMENTS",
    "default_plan",
    "attach_security",
]


#: Where a security plan places its Local Firewalls.
#:
#: * ``"leaf"`` — the paper's distributed layout: an LF at every master/slave
#:   interface (plus the LCF at external memories).
#: * ``"bridge"`` — LFs only on the fabric's bus bridges: every cross-segment
#:   access is checked at a chokepoint, reproducing the centralized-security-
#:   bridge baseline *inside* a distributed topology (intra-segment traffic is
#:   unchecked, which is exactly the weakness the paper argues against).
#: * ``"both"`` — leaf and bridge firewalls together (defence in depth).
FIREWALL_PLACEMENTS = ("leaf", "bridge", "both")


# Well-known SPI values used by the default configuration.
SPI_INTERNAL_FULL = 1
SPI_INTERNAL_READONLY = 2
SPI_IP_REGISTERS = 3
SPI_DDR_SECURE = 10
SPI_DDR_CIPHER_ONLY = 11
SPI_DDR_PLAIN = 12


@dataclass
class SecurityConfiguration:
    """Tunable parameters of the protected platform."""

    #: Attach Local Firewalls to master interfaces (CPUs, DMA).
    protect_masters: bool = True
    #: Attach Local Firewalls to the internal slave interfaces (BRAM, IP).
    protect_internal_slaves: bool = True
    #: Attach the Local Ciphering Firewall to the external memory interface.
    protect_external_memory: bool = True

    #: Size of the ciphered + authenticated window at the bottom of the DDR.
    #: Kept small by default because the behavioural AES/SHA models are pure
    #: Python; enlarge for experiments that need a bigger protected footprint.
    ddr_secure_size: int = 8 * 1024
    #: Size of the ciphered-only window that follows it.
    ddr_cipher_only_size: int = 8 * 1024

    #: Masters allowed to reach the dedicated IP's registers.  cpu2 and the
    #: DMA engine are deliberately left out by default: they have no business
    #: touching the IP's key/control registers, which is what makes the
    #: hijacked-IP attack scenarios meaningful.
    ip_masters: List[str] = field(default_factory=lambda: ["cpu0", "cpu1"])

    #: DoS heuristic of the master-side firewalls (None disables it).
    flood_threshold: Optional[int] = None
    flood_window: int = 100

    #: Reaction thresholds of the security manager.
    reaction: ReactionPolicy = field(default_factory=ReactionPolicy)

    #: Deterministic seed for key generation.
    key_seed: int = 0x5EC0_0001

    #: Capacity of each configuration memory (number of rules).
    config_memory_capacity: int = 16

    #: Provision (encrypt + authenticate) the protected DDR windows at setup.
    #: The default is False because a freshly built platform has an all-zero
    #: DDR, which matches the hash tree's initial state: blocks are protected
    #: lazily on their first write.  Set True when the DDR is pre-loaded with
    #: an image (e.g. firmware) that must be ciphered before the system runs.
    provision_external_memory: bool = False


def default_policies() -> Dict[str, SecurityPolicy]:
    """The security policies installed by the default configuration."""
    return {
        "internal_full": SecurityPolicy(
            spi=SPI_INTERNAL_FULL,
            rwa=ReadWriteAccess.READ_WRITE,
            allowed_formats=frozenset({1, 2, 4}),
            max_burst_length=16,
            description="full read/write access to internal resources",
        ),
        "internal_readonly": SecurityPolicy(
            spi=SPI_INTERNAL_READONLY,
            rwa=ReadWriteAccess.READ_ONLY,
            allowed_formats=frozenset({1, 2, 4}),
            max_burst_length=16,
            description="read-only window (e.g. shared code in BRAM)",
        ),
        "ip_registers": SecurityPolicy(
            spi=SPI_IP_REGISTERS,
            rwa=ReadWriteAccess.READ_WRITE,
            allowed_formats=frozenset({4}),
            max_burst_length=1,
            description="word-only, single-beat access to IP registers",
        ),
        "ddr_secure": SecurityPolicy(
            spi=SPI_DDR_SECURE,
            rwa=ReadWriteAccess.READ_WRITE,
            allowed_formats=frozenset({1, 2, 4}),
            confidentiality=ConfidentialityMode.CIPHER,
            integrity=IntegrityMode.HASH_TREE,
            key_spi=SPI_DDR_SECURE,
            max_burst_length=16,
            description="ciphered and authenticated external-memory window",
        ),
        "ddr_cipher_only": SecurityPolicy(
            spi=SPI_DDR_CIPHER_ONLY,
            rwa=ReadWriteAccess.READ_WRITE,
            allowed_formats=frozenset({1, 2, 4}),
            confidentiality=ConfidentialityMode.CIPHER,
            integrity=IntegrityMode.BYPASS,
            key_spi=SPI_DDR_CIPHER_ONLY,
            max_burst_length=16,
            description="ciphered-only external-memory window",
        ),
        "ddr_plain": SecurityPolicy(
            spi=SPI_DDR_PLAIN,
            rwa=ReadWriteAccess.READ_WRITE,
            allowed_formats=frozenset({1, 2, 4}),
            max_burst_length=16,
            description="unprotected external-memory window",
        ),
    }


class SecuredPlatform:
    """Handle on a platform with the security enhancements attached.

    ``ciphering_firewalls`` maps external-memory slave names to their Local
    Ciphering Firewalls; ``ciphering_firewall`` remains the primary (first
    attached) LCF for the single-external-memory platforms of the paper.
    """

    def __init__(
        self,
        system: SoCSystem,
        config: SecurityConfiguration,
        monitor: SecurityMonitor,
        manager: SecurityPolicyManager,
        key_store: KeyStore,
    ) -> None:
        self.system = system
        self.config = config
        self.monitor = monitor
        self.manager = manager
        self.key_store = key_store
        self.master_firewalls: Dict[str, LocalFirewall] = {}
        self.slave_firewalls: Dict[str, LocalFirewall] = {}
        self.bridge_firewalls: Dict[str, LocalFirewall] = {}
        self.ciphering_firewalls: Dict[str, LocalCipheringFirewall] = {}
        #: Which of :data:`FIREWALL_PLACEMENTS` the executed plan implemented
        #: (recorded by :func:`attach_security`).
        self.placement: str = "leaf"

    @property
    def ciphering_firewall(self) -> Optional[LocalCipheringFirewall]:
        """The primary (first attached) Local Ciphering Firewall, if any."""
        if not self.ciphering_firewalls:
            return None
        return next(iter(self.ciphering_firewalls.values()))

    @property
    def all_firewalls(self) -> List[LocalFirewall]:
        firewalls: List[LocalFirewall] = list(self.master_firewalls.values())
        firewalls.extend(self.slave_firewalls.values())
        firewalls.extend(self.bridge_firewalls.values())
        firewalls.extend(self.ciphering_firewalls.values())
        return firewalls

    def local_firewall_count(self) -> int:
        """Number of plain Local Firewalls (excludes the LCF)."""
        return (
            len(self.master_firewalls)
            + len(self.slave_firewalls)
            + len(self.bridge_firewalls)
        )

    def summary(self) -> Dict[str, object]:
        """Aggregate view used by reports and the detection experiments.

        Covers every firewall class, including the bridge-placed Local
        Firewalls of hierarchical fabrics, and records the plan's placement
        so reports can label the leaf-vs-bridge split.
        """
        return {
            "placement": self.placement,
            "firewall_counts": {
                "master": len(self.master_firewalls),
                "slave": len(self.slave_firewalls),
                "bridge": len(self.bridge_firewalls),
                "ciphering": len(self.ciphering_firewalls),
            },
            "bridge_firewalls": sorted(self.bridge_firewalls),
            "firewalls": {fw.name: fw.summary() for fw in self.all_firewalls},
            "alerts": self.monitor.summary(),
            "reactions": self.manager.summary(),
        }


# ---------------------------------------------------------------------------
# Security plans: a declarative description of where firewalls go
# ---------------------------------------------------------------------------
#
# ``secure_platform`` used to hard-wire the Figure-1 layout (every master,
# BRAM + IP on the slave side, one LCF on the DDR).  The layout is now data:
# a :class:`SecurityPlan` lists the firewalls to attach and the rules each
# Configuration Memory holds, and :func:`attach_security` executes any plan
# against any :class:`SoCSystem`.  ``secure_platform`` builds the paper's
# default plan from a :class:`SecurityConfiguration`; the scenario engine
# (:mod:`repro.scenarios`) builds plans for arbitrary topologies.


@dataclass(frozen=True)
class PlanRule:
    """One Configuration Memory rule of a planned firewall."""

    base: int
    size: int
    policy: SecurityPolicy
    label: str = ""


@dataclass
class MasterFirewallPlan:
    """A Local Firewall on one master interface."""

    master: str
    rules: List[PlanRule] = field(default_factory=list)
    flood_threshold: Optional[int] = None
    flood_window: int = 100


@dataclass
class SlaveFirewallPlan:
    """A Local Firewall on one internal slave interface."""

    slave: str
    rules: List[PlanRule] = field(default_factory=list)


@dataclass
class BridgeFirewallPlan:
    """A Local Firewall on one fabric bridge.

    The firewall's filter chain runs on every transaction the bridge forwards
    (both directions), so its rules describe the address ranges cross-segment
    traffic may touch.  A remote region with *no* rule is default-denied at
    the bridge (POLICY_MISS), which is how per-bridge isolation is expressed.
    """

    bridge: str
    rules: List[PlanRule] = field(default_factory=list)


@dataclass
class CipheringFirewallPlan:
    """A Local Ciphering Firewall on one external-memory interface."""

    slave: str
    rules: List[PlanRule] = field(default_factory=list)
    provision: bool = False


@dataclass
class SecurityPlan:
    """Everything :func:`attach_security` needs to protect a platform.

    ``keys`` lists ``(spi, seed)`` pairs installed into the trusted key store
    before any firewall is built (ciphering policies reference them through
    their ``key_spi``).

    ``placement`` records which of :data:`FIREWALL_PLACEMENTS` the plan
    implements; it is descriptive — attachment is driven by which of the
    ``masters`` / ``slaves`` / ``bridges`` lists are populated — but reports
    and the metrics layer use it to label the leaf-vs-bridge split.
    """

    masters: List[MasterFirewallPlan] = field(default_factory=list)
    slaves: List[SlaveFirewallPlan] = field(default_factory=list)
    bridges: List[BridgeFirewallPlan] = field(default_factory=list)
    ciphering: List[CipheringFirewallPlan] = field(default_factory=list)
    keys: List[tuple] = field(default_factory=list)
    reaction: ReactionPolicy = field(default_factory=ReactionPolicy)
    config_memory_capacity: int = 16
    placement: str = "leaf"

    def __post_init__(self) -> None:
        if self.placement not in FIREWALL_PLACEMENTS:
            raise ValueError(
                f"placement must be one of {FIREWALL_PLACEMENTS}, got {self.placement!r}"
            )


def default_plan(system: SoCSystem, config: SecurityConfiguration) -> SecurityPlan:
    """The paper's Figure-1 security plan for the reference platform."""
    policies = default_policies()
    soc_config = system.config

    bram_base = soc_config.bram_base
    bram_size = soc_config.bram_size
    ip_base = soc_config.ip_regs_base
    ip_size = 4 * soc_config.ip_n_registers
    ddr_base = soc_config.ddr_base
    ddr_size = soc_config.ddr_size

    plan = SecurityPlan(
        keys=[(SPI_DDR_SECURE, config.key_seed), (SPI_DDR_CIPHER_ONLY, config.key_seed + 1)],
        reaction=config.reaction,
        config_memory_capacity=config.config_memory_capacity,
    )

    if config.protect_masters:
        for master_name in system.master_ports:
            rules = [
                PlanRule(bram_base, bram_size, policies["internal_full"], label="bram"),
                PlanRule(ddr_base, ddr_size, policies["internal_full"], label="ddr"),
            ]
            if master_name in config.ip_masters:
                rules.append(PlanRule(ip_base, ip_size, policies["ip_registers"], label="ip0_regs"))
            # Masters not listed in ip_masters simply have no rule covering the
            # IP registers: default-deny keeps them out.
            plan.masters.append(
                MasterFirewallPlan(
                    master=master_name,
                    rules=rules,
                    flood_threshold=config.flood_threshold,
                    flood_window=config.flood_window,
                )
            )

    if config.protect_internal_slaves:
        plan.slaves.append(
            SlaveFirewallPlan("bram", [PlanRule(bram_base, bram_size, policies["internal_full"], label="bram")])
        )
        plan.slaves.append(
            SlaveFirewallPlan("ip0", [PlanRule(ip_base, ip_size, policies["ip_registers"], label="ip0")])
        )

    if config.protect_external_memory:
        secure_size = min(config.ddr_secure_size, ddr_size)
        cipher_only_size = min(config.ddr_cipher_only_size, ddr_size - secure_size)
        plain_base = ddr_base + secure_size + cipher_only_size
        plain_size = ddr_size - secure_size - cipher_only_size

        rules = []
        if secure_size > 0:
            rules.append(PlanRule(ddr_base, secure_size, policies["ddr_secure"], label="ddr_secure"))
        if cipher_only_size > 0:
            rules.append(
                PlanRule(
                    ddr_base + secure_size,
                    cipher_only_size,
                    policies["ddr_cipher_only"],
                    label="ddr_cipher_only",
                )
            )
        if plain_size > 0:
            rules.append(PlanRule(plain_base, plain_size, policies["ddr_plain"], label="ddr_plain"))
        plan.ciphering.append(
            CipheringFirewallPlan("ddr", rules, provision=config.provision_external_memory)
        )

    return plan


def attach_security(
    system: SoCSystem,
    plan: SecurityPlan,
    config: Optional[SecurityConfiguration] = None,
) -> SecuredPlatform:
    """Execute a :class:`SecurityPlan` against a platform.

    Builds the monitor, key store and manager, then attaches one firewall per
    plan entry (master LFs, internal slave LFs, LCFs on external memories),
    each with its own trusted Configuration Memory.  ``config`` is recorded on
    the returned :class:`SecuredPlatform` for reporting; it does not influence
    the attachment, which is driven entirely by the plan.
    """
    config = config or SecurityConfiguration()
    sim = system.sim

    monitor = SecurityMonitor()
    monitor.event_bus = sim.event_bus
    key_store = KeyStore()
    for spi, seed in plan.keys:
        key_store.install(spi, random_key(seed))
    manager = SecurityPolicyManager(sim, monitor, reaction=plan.reaction, key_store=key_store)
    platform = SecuredPlatform(system, config, monitor, manager, key_store)
    platform.placement = plan.placement

    # -- master-side Local Firewalls ---------------------------------------------------
    for master_plan in plan.masters:
        port = system.master_ports[master_plan.master]
        memory = ConfigurationMemory(
            f"cfg_{master_plan.master}", capacity=plan.config_memory_capacity
        )
        for rule in master_plan.rules:
            memory.add(rule.base, rule.size, rule.policy, label=rule.label)
        firewall = LocalFirewall(
            sim,
            f"lf_{master_plan.master}",
            memory,
            monitor=monitor,
            protected_ip=master_plan.master,
            flood_threshold=master_plan.flood_threshold,
            flood_window=master_plan.flood_window,
        )
        port.attach_filter(firewall)
        platform.master_firewalls[master_plan.master] = firewall
        manager.register_firewall(firewall, guards_master=master_plan.master)

    # -- internal slave-side Local Firewalls ----------------------------------------------
    for slave_plan in plan.slaves:
        port = system.slave_ports.get(slave_plan.slave)
        if port is None:
            continue
        memory = ConfigurationMemory(
            f"cfg_{slave_plan.slave}", capacity=plan.config_memory_capacity
        )
        for rule in slave_plan.rules:
            memory.add(rule.base, rule.size, rule.policy, label=rule.label or slave_plan.slave)
        firewall = LocalFirewall(
            sim,
            f"lf_{slave_plan.slave}",
            memory,
            monitor=monitor,
            protected_ip=slave_plan.slave,
        )
        port.attach_filter(firewall)
        platform.slave_firewalls[slave_plan.slave] = firewall
        manager.register_firewall(firewall)

    # -- bridge-placed Local Firewalls -----------------------------------------------------
    if plan.bridges:
        fabric_bridges = getattr(system.bus, "bridges", None)
        if not fabric_bridges:
            raise ValueError(
                "security plan places firewalls on bridges, but the platform's "
                "interconnect has none (flat bus?)"
            )
        for bridge_plan in plan.bridges:
            try:
                bridge = fabric_bridges[bridge_plan.bridge]
            except KeyError as exc:
                raise ValueError(
                    f"security plan references unknown bridge {bridge_plan.bridge!r}; "
                    f"known: {sorted(fabric_bridges)}"
                ) from exc
            memory = ConfigurationMemory(
                f"cfg_{bridge_plan.bridge}", capacity=plan.config_memory_capacity
            )
            for rule in bridge_plan.rules:
                memory.add(rule.base, rule.size, rule.policy, label=rule.label)
            firewall = LocalFirewall(
                sim,
                f"lf_{bridge_plan.bridge}",
                memory,
                monitor=monitor,
                protected_ip=bridge_plan.bridge,
            )
            bridge.attach_filter(firewall)
            platform.bridge_firewalls[bridge_plan.bridge] = firewall
            manager.register_firewall(firewall)

    # -- Local Ciphering Firewalls on external memories ------------------------------------
    for cipher_plan in plan.ciphering:
        device = system.memories[cipher_plan.slave]
        memory = ConfigurationMemory(
            f"cfg_{cipher_plan.slave}", capacity=plan.config_memory_capacity
        )
        for rule in cipher_plan.rules:
            memory.add(rule.base, rule.size, rule.policy, label=rule.label)
        lcf = LocalCipheringFirewall(
            sim,
            f"lcf_{cipher_plan.slave}",
            memory,
            device=device,
            key_store=key_store,
            monitor=monitor,
            protected_ip=cipher_plan.slave,
        )
        system.slave_ports[cipher_plan.slave].attach_filter(lcf)
        platform.ciphering_firewalls[cipher_plan.slave] = lcf
        manager.register_firewall(lcf)
        if cipher_plan.provision:
            lcf.protect_existing_contents()

    # Keys are provisioned; lock the store for the rest of the run.
    key_store.lock()
    return platform


def secure_reference_platform(
    system: SoCSystem,
    config: Optional[SecurityConfiguration] = None,
) -> SecuredPlatform:
    """Attach the paper's default security plan to a reference platform.

    Equivalent to ``attach_security(system, default_plan(system, config))``:
    the paper's layout expressed as the default security plan.  This is the
    supported spelling; the historical :func:`secure_platform` alias is a
    deprecation shim over it.
    """
    config = config or SecurityConfiguration()
    return attach_security(system, default_plan(system, config), config)


def secure_platform(
    system: SoCSystem,
    config: Optional[SecurityConfiguration] = None,
) -> SecuredPlatform:
    """Deprecated alias of :func:`secure_reference_platform`.

    Prefer :class:`repro.api.Experiment` for whole experiments, or
    :func:`secure_reference_platform` / :func:`attach_security` when only the
    security attachment is needed.  Behaviour is unchanged; the shim warns
    once per process.
    """
    from repro._deprecation import warn_once

    warn_once(
        "secure_platform",
        "secure_platform() is deprecated; use repro.api.Experiment for whole "
        "experiments or repro.core.secure.secure_reference_platform() / "
        "attach_security() for bare security attachment",
    )
    return secure_reference_platform(system, config)
