"""Attach the distributed security enhancements to a platform.

:func:`secure_platform` takes an unprotected :class:`~repro.soc.system.SoCSystem`
(as produced by :func:`repro.soc.system.build_reference_platform`) and builds
the protected system of the paper's Figure 1:

* a Local Firewall on every master interface (each MicroBlaze, the DMA IP),
* a Local Firewall on every internal slave interface (BRAM, dedicated IP),
* a Local Ciphering Firewall between the bus and the external DDR,
* one trusted Configuration Memory per firewall, one platform-wide
  :class:`SecurityMonitor` and one :class:`SecurityPolicyManager`.

The default security policies follow the paper's threat model: internal
communications are not encrypted (the LFs protect them against unauthorized
access), while the external memory is split into a ciphered+authenticated
window, a ciphered-only window and an unprotected window ("many systems do
not provide a uniform protection but allow some parts of the memory to be
unprotected or only ciphered").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.alerts import SecurityMonitor
from repro.core.ciphering_firewall import LocalCipheringFirewall
from repro.core.local_firewall import LocalFirewall
from repro.core.manager import ReactionPolicy, SecurityPolicyManager
from repro.core.policy import (
    ConfidentialityMode,
    ConfigurationMemory,
    IntegrityMode,
    ReadWriteAccess,
    SecurityPolicy,
)
from repro.crypto.keys import KeyStore, random_key
from repro.soc.system import SoCSystem

__all__ = ["SecurityConfiguration", "SecuredPlatform", "secure_platform", "default_policies"]


# Well-known SPI values used by the default configuration.
SPI_INTERNAL_FULL = 1
SPI_INTERNAL_READONLY = 2
SPI_IP_REGISTERS = 3
SPI_DDR_SECURE = 10
SPI_DDR_CIPHER_ONLY = 11
SPI_DDR_PLAIN = 12


@dataclass
class SecurityConfiguration:
    """Tunable parameters of the protected platform."""

    #: Attach Local Firewalls to master interfaces (CPUs, DMA).
    protect_masters: bool = True
    #: Attach Local Firewalls to the internal slave interfaces (BRAM, IP).
    protect_internal_slaves: bool = True
    #: Attach the Local Ciphering Firewall to the external memory interface.
    protect_external_memory: bool = True

    #: Size of the ciphered + authenticated window at the bottom of the DDR.
    #: Kept small by default because the behavioural AES/SHA models are pure
    #: Python; enlarge for experiments that need a bigger protected footprint.
    ddr_secure_size: int = 8 * 1024
    #: Size of the ciphered-only window that follows it.
    ddr_cipher_only_size: int = 8 * 1024

    #: Masters allowed to reach the dedicated IP's registers.  cpu2 and the
    #: DMA engine are deliberately left out by default: they have no business
    #: touching the IP's key/control registers, which is what makes the
    #: hijacked-IP attack scenarios meaningful.
    ip_masters: List[str] = field(default_factory=lambda: ["cpu0", "cpu1"])

    #: DoS heuristic of the master-side firewalls (None disables it).
    flood_threshold: Optional[int] = None
    flood_window: int = 100

    #: Reaction thresholds of the security manager.
    reaction: ReactionPolicy = field(default_factory=ReactionPolicy)

    #: Deterministic seed for key generation.
    key_seed: int = 0x5EC0_0001

    #: Capacity of each configuration memory (number of rules).
    config_memory_capacity: int = 16

    #: Provision (encrypt + authenticate) the protected DDR windows at setup.
    #: The default is False because a freshly built platform has an all-zero
    #: DDR, which matches the hash tree's initial state: blocks are protected
    #: lazily on their first write.  Set True when the DDR is pre-loaded with
    #: an image (e.g. firmware) that must be ciphered before the system runs.
    provision_external_memory: bool = False


def default_policies() -> Dict[str, SecurityPolicy]:
    """The security policies installed by the default configuration."""
    return {
        "internal_full": SecurityPolicy(
            spi=SPI_INTERNAL_FULL,
            rwa=ReadWriteAccess.READ_WRITE,
            allowed_formats=frozenset({1, 2, 4}),
            max_burst_length=16,
            description="full read/write access to internal resources",
        ),
        "internal_readonly": SecurityPolicy(
            spi=SPI_INTERNAL_READONLY,
            rwa=ReadWriteAccess.READ_ONLY,
            allowed_formats=frozenset({1, 2, 4}),
            max_burst_length=16,
            description="read-only window (e.g. shared code in BRAM)",
        ),
        "ip_registers": SecurityPolicy(
            spi=SPI_IP_REGISTERS,
            rwa=ReadWriteAccess.READ_WRITE,
            allowed_formats=frozenset({4}),
            max_burst_length=1,
            description="word-only, single-beat access to IP registers",
        ),
        "ddr_secure": SecurityPolicy(
            spi=SPI_DDR_SECURE,
            rwa=ReadWriteAccess.READ_WRITE,
            allowed_formats=frozenset({1, 2, 4}),
            confidentiality=ConfidentialityMode.CIPHER,
            integrity=IntegrityMode.HASH_TREE,
            key_spi=SPI_DDR_SECURE,
            max_burst_length=16,
            description="ciphered and authenticated external-memory window",
        ),
        "ddr_cipher_only": SecurityPolicy(
            spi=SPI_DDR_CIPHER_ONLY,
            rwa=ReadWriteAccess.READ_WRITE,
            allowed_formats=frozenset({1, 2, 4}),
            confidentiality=ConfidentialityMode.CIPHER,
            integrity=IntegrityMode.BYPASS,
            key_spi=SPI_DDR_CIPHER_ONLY,
            max_burst_length=16,
            description="ciphered-only external-memory window",
        ),
        "ddr_plain": SecurityPolicy(
            spi=SPI_DDR_PLAIN,
            rwa=ReadWriteAccess.READ_WRITE,
            allowed_formats=frozenset({1, 2, 4}),
            max_burst_length=16,
            description="unprotected external-memory window",
        ),
    }


class SecuredPlatform:
    """Handle on a platform with the security enhancements attached."""

    def __init__(
        self,
        system: SoCSystem,
        config: SecurityConfiguration,
        monitor: SecurityMonitor,
        manager: SecurityPolicyManager,
        key_store: KeyStore,
    ) -> None:
        self.system = system
        self.config = config
        self.monitor = monitor
        self.manager = manager
        self.key_store = key_store
        self.master_firewalls: Dict[str, LocalFirewall] = {}
        self.slave_firewalls: Dict[str, LocalFirewall] = {}
        self.ciphering_firewall: Optional[LocalCipheringFirewall] = None

    @property
    def all_firewalls(self) -> List[LocalFirewall]:
        firewalls: List[LocalFirewall] = list(self.master_firewalls.values())
        firewalls.extend(self.slave_firewalls.values())
        if self.ciphering_firewall is not None:
            firewalls.append(self.ciphering_firewall)
        return firewalls

    def local_firewall_count(self) -> int:
        """Number of plain Local Firewalls (excludes the LCF)."""
        return len(self.master_firewalls) + len(self.slave_firewalls)

    def summary(self) -> Dict[str, object]:
        """Aggregate view used by reports and the detection experiments."""
        return {
            "firewalls": {fw.name: fw.summary() for fw in self.all_firewalls},
            "alerts": self.monitor.summary(),
            "reactions": self.manager.summary(),
        }


def secure_platform(
    system: SoCSystem,
    config: Optional[SecurityConfiguration] = None,
) -> SecuredPlatform:
    """Attach firewalls, policies, keys and the security manager to ``system``."""
    config = config or SecurityConfiguration()
    policies = default_policies()
    sim = system.sim
    soc_config = system.config

    monitor = SecurityMonitor()
    key_store = KeyStore()
    key_store.install(SPI_DDR_SECURE, random_key(config.key_seed))
    key_store.install(SPI_DDR_CIPHER_ONLY, random_key(config.key_seed + 1))
    manager = SecurityPolicyManager(sim, monitor, reaction=config.reaction, key_store=key_store)
    platform = SecuredPlatform(system, config, monitor, manager, key_store)

    bram_base = soc_config.bram_base
    bram_size = soc_config.bram_size
    ip_base = soc_config.ip_regs_base
    ip_size = 4 * soc_config.ip_n_registers
    ddr_base = soc_config.ddr_base
    ddr_size = soc_config.ddr_size

    # -- master-side Local Firewalls ---------------------------------------------------
    if config.protect_masters:
        for master_name, port in system.master_ports.items():
            memory = ConfigurationMemory(
                f"cfg_{master_name}", capacity=config.config_memory_capacity
            )
            memory.add(bram_base, bram_size, policies["internal_full"], label="bram")
            memory.add(ddr_base, ddr_size, policies["internal_full"], label="ddr")
            if master_name in config.ip_masters:
                memory.add(ip_base, ip_size, policies["ip_registers"], label="ip0_regs")
            # Masters not listed in ip_masters simply have no rule covering the
            # IP registers: default-deny keeps them out.
            firewall = LocalFirewall(
                sim,
                f"lf_{master_name}",
                memory,
                monitor=monitor,
                protected_ip=master_name,
                flood_threshold=config.flood_threshold,
                flood_window=config.flood_window,
            )
            port.attach_filter(firewall)
            platform.master_firewalls[master_name] = firewall
            manager.register_firewall(firewall, guards_master=master_name)

    # -- internal slave-side Local Firewalls ----------------------------------------------
    if config.protect_internal_slaves:
        slave_rules = {
            "bram": (bram_base, bram_size, policies["internal_full"]),
            "ip0": (ip_base, ip_size, policies["ip_registers"]),
        }
        for slave_name, (base, size, policy) in slave_rules.items():
            port = system.slave_ports.get(slave_name)
            if port is None:
                continue
            memory = ConfigurationMemory(
                f"cfg_{slave_name}", capacity=config.config_memory_capacity
            )
            memory.add(base, size, policy, label=slave_name)
            firewall = LocalFirewall(
                sim,
                f"lf_{slave_name}",
                memory,
                monitor=monitor,
                protected_ip=slave_name,
            )
            port.attach_filter(firewall)
            platform.slave_firewalls[slave_name] = firewall
            manager.register_firewall(firewall)

    # -- Local Ciphering Firewall on the external memory ------------------------------------
    if config.protect_external_memory:
        secure_size = min(config.ddr_secure_size, ddr_size)
        cipher_only_size = min(config.ddr_cipher_only_size, ddr_size - secure_size)
        plain_base = ddr_base + secure_size + cipher_only_size
        plain_size = ddr_size - secure_size - cipher_only_size

        memory = ConfigurationMemory("cfg_ddr", capacity=config.config_memory_capacity)
        if secure_size > 0:
            memory.add(ddr_base, secure_size, policies["ddr_secure"], label="ddr_secure")
        if cipher_only_size > 0:
            memory.add(
                ddr_base + secure_size,
                cipher_only_size,
                policies["ddr_cipher_only"],
                label="ddr_cipher_only",
            )
        if plain_size > 0:
            memory.add(plain_base, plain_size, policies["ddr_plain"], label="ddr_plain")

        lcf = LocalCipheringFirewall(
            sim,
            "lcf_ddr",
            memory,
            device=system.ddr,
            key_store=key_store,
            monitor=monitor,
            protected_ip="ddr",
        )
        system.slave_ports["ddr"].attach_filter(lcf)
        platform.ciphering_firewall = lcf
        manager.register_firewall(lcf)
        if config.provision_external_memory:
            lcf.protect_existing_contents()

    # Keys are provisioned; lock the store for the rest of the run.
    key_store.lock()
    return platform
