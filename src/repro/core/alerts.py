"""Security alerts, violations and the system-wide security monitor.

When a checking module inside a firewall detects a violation it raises an
alert signal; the Firewall Interface then discards the offending data (paper,
section IV-B1).  This module defines the alert vocabulary and a
:class:`SecurityMonitor` that aggregates alerts from every firewall in the
platform — the observable the detection experiments (E6 in DESIGN.md) score
against, and the trigger for the reaction policies implemented by
:class:`repro.core.manager.SecurityPolicyManager`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = ["ViolationType", "Severity", "SecurityAlert", "SecurityMonitor"]


class ViolationType(enum.Enum):
    """Why a firewall rejected (or flagged) a transaction."""

    UNAUTHORIZED_READ = "unauthorized_read"
    UNAUTHORIZED_WRITE = "unauthorized_write"
    BAD_DATA_FORMAT = "bad_data_format"
    BURST_TOO_LONG = "burst_too_long"
    POLICY_MISS = "policy_miss"
    ADDRESS_OUT_OF_RANGE = "address_out_of_range"
    INTEGRITY_FAILURE = "integrity_failure"
    REPLAY_SUSPECTED = "replay_suspected"
    TRAFFIC_FLOOD = "traffic_flood"
    RECONFIGURATION = "reconfiguration"


class Severity(enum.IntEnum):
    """Alert severity, ordered so reactions can threshold on it."""

    INFO = 0
    WARNING = 1
    CRITICAL = 2


_DEFAULT_SEVERITY: Dict[ViolationType, Severity] = {
    ViolationType.UNAUTHORIZED_READ: Severity.CRITICAL,
    ViolationType.UNAUTHORIZED_WRITE: Severity.CRITICAL,
    ViolationType.BAD_DATA_FORMAT: Severity.WARNING,
    ViolationType.BURST_TOO_LONG: Severity.WARNING,
    ViolationType.POLICY_MISS: Severity.WARNING,
    ViolationType.ADDRESS_OUT_OF_RANGE: Severity.WARNING,
    ViolationType.INTEGRITY_FAILURE: Severity.CRITICAL,
    ViolationType.REPLAY_SUSPECTED: Severity.CRITICAL,
    ViolationType.TRAFFIC_FLOOD: Severity.WARNING,
    ViolationType.RECONFIGURATION: Severity.INFO,
}


@dataclass(frozen=True)
class SecurityAlert:
    """One alert raised by a firewall.

    ``cycle`` is the simulation cycle at which the violation was detected,
    which is what the reaction-time analysis uses ("the system must react as
    fast as possible").
    """

    cycle: int
    firewall: str
    master: str
    violation: ViolationType
    address: int
    txn_id: int
    severity: Severity = Severity.WARNING
    detail: str = ""

    @classmethod
    def for_violation(
        cls,
        cycle: int,
        firewall: str,
        master: str,
        violation: ViolationType,
        address: int,
        txn_id: int,
        detail: str = "",
        severity: Optional[Severity] = None,
    ) -> "SecurityAlert":
        """Build an alert with the default severity for its violation type."""
        return cls(
            cycle=cycle,
            firewall=firewall,
            master=master,
            violation=violation,
            address=address,
            txn_id=txn_id,
            severity=severity if severity is not None else _DEFAULT_SEVERITY[violation],
            detail=detail,
        )

    def describe(self) -> str:
        """Single-line log form of the alert."""
        return (
            f"[cycle {self.cycle}] {self.firewall}: {self.violation.value} by "
            f"{self.master} at {self.address:#010x} ({self.severity.name})"
            + (f" -- {self.detail}" if self.detail else "")
        )


class SecurityMonitor:
    """Aggregates alerts from every firewall in the platform.

    The monitor is *passive*: it records, counts and notifies subscribers.
    Reactions (quarantining an IP, zeroising keys, swapping policies) are the
    responsibility of :class:`repro.core.manager.SecurityPolicyManager`, which
    subscribes to this monitor.  Keeping the two separate mirrors the paper's
    distributed philosophy: detection is local to each firewall, the monitor
    merely makes the distributed decisions observable.
    """

    def __init__(self, name: str = "security_monitor") -> None:
        self.name = name
        self.alerts: List[SecurityAlert] = []
        self._subscribers: List[Callable[[SecurityAlert], None]] = []
        #: Optional instrumentation event bus (see :mod:`repro.api.events`).
        self.event_bus = None

    # -- alert intake ------------------------------------------------------------

    def raise_alert(self, alert: SecurityAlert) -> None:
        """Record an alert and notify subscribers."""
        self.alerts.append(alert)
        event_bus = self.event_bus
        if event_bus is not None:
            event_bus.emit(
                "security.alert", alert.cycle, self.name,
                firewall=alert.firewall, master=alert.master,
                violation=alert.violation.value, address=alert.address,
                severity=alert.severity.name, detail=alert.detail,
            )
        for subscriber in self._subscribers:
            subscriber(alert)

    def subscribe(self, callback: Callable[[SecurityAlert], None]) -> None:
        """Register a callback invoked for every future alert."""
        self._subscribers.append(callback)

    # -- queries -------------------------------------------------------------------

    def count(self, violation: Optional[ViolationType] = None) -> int:
        """Total alerts, optionally restricted to one violation type."""
        if violation is None:
            return len(self.alerts)
        return sum(1 for alert in self.alerts if alert.violation is violation)

    def alerts_by_firewall(self) -> Dict[str, int]:
        """Alert count per firewall (the distributed-detection breakdown)."""
        counts: Dict[str, int] = {}
        for alert in self.alerts:
            counts[alert.firewall] = counts.get(alert.firewall, 0) + 1
        return counts

    def alerts_by_master(self) -> Dict[str, int]:
        """Alert count per offending master."""
        counts: Dict[str, int] = {}
        for alert in self.alerts:
            counts[alert.master] = counts.get(alert.master, 0) + 1
        return counts

    def alerts_by_violation(self) -> Dict[ViolationType, int]:
        """Alert count per violation type."""
        counts: Dict[ViolationType, int] = {}
        for alert in self.alerts:
            counts[alert.violation] = counts.get(alert.violation, 0) + 1
        return counts

    def critical_alerts(self) -> List[SecurityAlert]:
        """All alerts with CRITICAL severity."""
        return [a for a in self.alerts if a.severity is Severity.CRITICAL]

    def first_detection_cycle(self) -> Optional[int]:
        """Cycle of the earliest alert (the reaction-time metric), or None."""
        if not self.alerts:
            return None
        return min(alert.cycle for alert in self.alerts)

    def masters_with_alerts(self, min_count: int = 1) -> List[str]:
        """Masters that triggered at least ``min_count`` alerts."""
        return [
            master
            for master, count in self.alerts_by_master().items()
            if count >= min_count
        ]

    def clear(self) -> None:
        """Drop all recorded alerts (between experiment repetitions)."""
        self.alerts.clear()

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used by reports and example scripts."""
        return {
            "total": len(self.alerts),
            "by_violation": {v.value: c for v, c in self.alerts_by_violation().items()},
            "by_firewall": self.alerts_by_firewall(),
            "by_master": self.alerts_by_master(),
            "first_detection_cycle": self.first_detection_cycle(),
        }
