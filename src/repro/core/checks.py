"""Checking modules of the Security Builder.

Inside a Local Firewall, the Security Builder "reads the associated SP from
the Configuration Memory.  Then, SP parameters (security rules) are sent to
specific checking modules" (paper, section IV-B1).  Each checking module is a
small combinational comparator in hardware; here each is a class with a
``check(policy, txn)`` method returning a :class:`CheckResult`.

Modelling the checks as separate objects (rather than one big ``if``) keeps
the structure of the hardware visible, lets the area model count comparators,
and lets tests exercise every rule in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.alerts import ViolationType
from repro.core.policy import SecurityPolicy
from repro.soc.transaction import BusTransaction

__all__ = [
    "CheckResult",
    "SecurityCheck",
    "ReadWriteAccessCheck",
    "DataFormatCheck",
    "BurstLengthCheck",
    "AddressRangeCheck",
    "default_check_suite",
]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one checking module for one transaction."""

    passed: bool
    check: str
    violation: Optional[ViolationType] = None
    detail: str = ""

    @classmethod
    def ok(cls, check: str) -> "CheckResult":
        return cls(passed=True, check=check)

    @classmethod
    def fail(cls, check: str, violation: ViolationType, detail: str = "") -> "CheckResult":
        return cls(passed=False, check=check, violation=violation, detail=detail)


class SecurityCheck:
    """Base class for checking modules."""

    name = "check"

    def check(self, policy: SecurityPolicy, txn: BusTransaction) -> CheckResult:  # pragma: no cover
        raise NotImplementedError


class ReadWriteAccessCheck(SecurityCheck):
    """Enforce the RWA parameter: is this direction of access allowed?"""

    name = "rwa"

    def check(self, policy: SecurityPolicy, txn: BusTransaction) -> CheckResult:
        if policy.allows_operation(txn.is_write):
            return CheckResult.ok(self.name)
        violation = (
            ViolationType.UNAUTHORIZED_WRITE if txn.is_write else ViolationType.UNAUTHORIZED_READ
        )
        return CheckResult.fail(
            self.name,
            violation,
            detail=f"policy {policy.spi} is {policy.rwa.value}, "
            f"{'write' if txn.is_write else 'read'} not allowed",
        )


class DataFormatCheck(SecurityCheck):
    """Enforce the ADF parameter: is the access width allowed?

    "An unauthorized format may overwrite some protected data in the target
    IP" -- the classic example being a 32-bit store aimed at an 8-bit control
    register, clobbering its neighbours.
    """

    name = "adf"

    def check(self, policy: SecurityPolicy, txn: BusTransaction) -> CheckResult:
        if policy.allows_format(txn.width):
            return CheckResult.ok(self.name)
        allowed = sorted(policy.allowed_formats)
        return CheckResult.fail(
            self.name,
            ViolationType.BAD_DATA_FORMAT,
            detail=f"width {txn.width} bytes not in allowed formats {allowed}",
        )


class BurstLengthCheck(SecurityCheck):
    """Bound the burst length to what the target resource can absorb."""

    name = "burst"

    def check(self, policy: SecurityPolicy, txn: BusTransaction) -> CheckResult:
        if policy.allows_burst(txn.burst_length):
            return CheckResult.ok(self.name)
        return CheckResult.fail(
            self.name,
            ViolationType.BURST_TOO_LONG,
            detail=f"burst of {txn.burst_length} beats exceeds limit "
            f"{policy.max_burst_length}",
        )


class AddressRangeCheck(SecurityCheck):
    """Confine an IP's traffic to a set of authorised address windows.

    The Configuration Memory's rule ranges already confine where *policies*
    apply; this additional module lets a firewall restrict its IP to a hard
    envelope irrespective of policy (used to fence a quarantined IP into a
    scratch area, one of the manager's reactions).
    """

    name = "address_range"

    def __init__(self, windows: Optional[Sequence] = None) -> None:
        # windows: iterable of (base, size) tuples; empty = no restriction.
        self.windows: List = list(windows or [])

    def check(self, policy: SecurityPolicy, txn: BusTransaction) -> CheckResult:
        if not self.windows:
            return CheckResult.ok(self.name)
        for base, size in self.windows:
            if base <= txn.address and txn.end_address <= base + size:
                return CheckResult.ok(self.name)
        return CheckResult.fail(
            self.name,
            ViolationType.ADDRESS_OUT_OF_RANGE,
            detail=f"[{txn.address:#x}, {txn.end_address:#x}) outside authorised windows",
        )


def default_check_suite() -> List[SecurityCheck]:
    """The checking modules a Local Firewall instantiates by default.

    RWA, ADF and burst-length correspond directly to the policy parameters of
    section IV-A; the address-range module is instantiated empty (no extra
    restriction) and only configured by the manager when quarantining.
    """
    return [
        ReadWriteAccessCheck(),
        DataFormatCheck(),
        BurstLengthCheck(),
        AddressRangeCheck(),
    ]
