"""The Local Firewall (LF).

"Local Firewalls monitor the communications using the security parameters
[...].  For a write operation, before reaching the bus all data are checked.
If the security rules are respected the data can be sent to the bus.  For a
read operation, all data are checked before reaching the IP. [...] In case
there is a violation of one of the security rules, the data is discarded."
(paper, section IV-B1)

The LF is modelled as a :class:`repro.soc.ports.TransactionFilter` so it can
be interposed on any master or slave port.  Internally it keeps the three
blocks of the paper's Figure 1:

* :class:`CommunicationBlock` (LFCB) -- snoops the port and raises
  ``secpol_req`` for every transaction (modelled as a counter plus the entry
  point into the firewall),
* :class:`SecurityBuilder` (SB) -- fetches the Security Policy from the
  Configuration Memory and runs the checking modules; charges the 12-cycle
  latency of Table II,
* :class:`FirewallInterface` (FI) -- gates the datapath according to the alert
  signals (modelled by returning ALLOW/DENY filter results and notifying the
  :class:`~repro.core.alerts.SecurityMonitor`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.alerts import SecurityAlert, SecurityMonitor, ViolationType
from repro.core.checks import (
    AddressRangeCheck,
    BurstLengthCheck,
    CheckResult,
    DataFormatCheck,
    ReadWriteAccessCheck,
    SecurityCheck,
    default_check_suite,
)
from repro.core.constants import SECURITY_BUILDER_CYCLES
from repro.core.policy import ConfigurationMemory, PolicyLookupError, SecurityPolicy
from repro.soc.kernel import Simulator
from repro.soc.ports import FilterResult, TransactionFilter
from repro.soc.transaction import BusTransaction

__all__ = [
    "CommunicationBlock",
    "SecurityBuilder",
    "FirewallInterface",
    "LocalFirewall",
    "use_decision_cache",
    "decision_cache_enabled",
]

# Default for SecurityBuilder instances built without an explicit
# ``cache_decisions`` argument.  The differential harness flips this to force
# newly built platforms onto the uncached per-transaction reference path.
_DECISION_CACHE_DEFAULT = True


def use_decision_cache(enabled: bool = True) -> None:
    """Set the default decision-caching behaviour of new Security Builders."""
    global _DECISION_CACHE_DEFAULT
    _DECISION_CACHE_DEFAULT = enabled


def decision_cache_enabled() -> bool:
    """Whether new Security Builders memoise verdicts by default."""
    return _DECISION_CACHE_DEFAULT


class CommunicationBlock:
    """LF Communication Block: receives/transmits bus signals and triggers the
    security-policy request (``secpol_req``)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.secpol_requests = 0

    def trigger(self, txn: BusTransaction) -> None:
        """Raise ``secpol_req`` for a transaction entering the firewall."""
        self.secpol_requests += 1
        txn.annotations.setdefault("secpol_req_by", self.name)


# Checking modules whose verdict is a pure function of (policy, transaction
# attributes, address windows) — the precondition for memoising decisions.
_STATELESS_CHECKS = (
    ReadWriteAccessCheck,
    DataFormatCheck,
    BurstLengthCheck,
    AddressRangeCheck,
)


class SecurityBuilder:
    """Security Builder: policy fetch plus the checking modules.

    Charges :data:`~repro.core.constants.SECURITY_BUILDER_CYCLES` per
    evaluation, matching Table II.

    Verdicts are memoised: the decision for a transaction depends only on the
    installed rules and the transaction's (address, size, direction, width,
    burst length), so repeated traffic with the same shape — the bulk of any
    workload sweep — skips the policy scan and the checking modules entirely.
    The cache is invalidated whenever the Configuration Memory's rule set
    changes (tracked via its ``generation`` counter), so runtime
    reconfiguration takes effect on the very next transaction, exactly as in
    the uncached model.  All statistics (evaluations, violations, lookup and
    miss counts, cycles charged) are maintained identically on hits and
    misses.  Caching is automatically disabled when custom, potentially
    stateful checking modules are installed.
    """

    #: Upper bound on memoised verdicts before the cache is reset (guards
    #: address-sweeping workloads against unbounded growth).
    CACHE_LIMIT = 65536

    def __init__(
        self,
        name: str,
        config_memory: ConfigurationMemory,
        checks: Optional[Sequence[SecurityCheck]] = None,
        latency_cycles: int = SECURITY_BUILDER_CYCLES,
        cache_decisions: Optional[bool] = None,
    ) -> None:
        if cache_decisions is None:
            cache_decisions = _DECISION_CACHE_DEFAULT
        self.name = name
        self.config_memory = config_memory
        self.checks: List[SecurityCheck] = list(checks) if checks is not None else default_check_suite()
        self.latency_cycles = latency_cycles
        self.evaluations = 0
        self.violations = 0
        self.cycles_charged = 0
        self.cache_enabled = cache_decisions and all(
            type(check) in _STATELESS_CHECKS for check in self.checks
        )
        self.cache_hits = 0
        self.cache_misses = 0
        self._cache: Dict[tuple, Tuple[Optional[SecurityPolicy], List[CheckResult], bool, bool]] = {}
        self._cache_generation = config_memory.generation

    def invalidate_cache(self) -> None:
        """Drop every memoised verdict (e.g. after mutating a checking module)."""
        self._cache.clear()
        self._cache_generation = self.config_memory.generation

    def _windows_signature(self) -> tuple:
        """Hashable snapshot of the address-range windows (quarantine fences)."""
        for check in self.checks:
            if isinstance(check, AddressRangeCheck) and check.windows:
                return tuple(tuple(window) for window in check.windows)
        return ()

    def decision_key(self, txn: BusTransaction) -> tuple:
        """The memoisation key of one transaction's verdict.

        A verdict is a pure function of this tuple (given a fixed rule set —
        tracked separately via the configuration memory's ``generation``).
        The batch engine keys its per-batch lookup tables on the same tuple,
        so engine replays are valid exactly when a cache hit would be.
        """
        return (
            txn.address,
            txn.size,
            txn.is_write,
            txn.width,
            txn.burst_length,
            self._windows_signature(),
        )

    def evaluate(
        self, txn: BusTransaction, charge_latency: bool = True
    ) -> Tuple[Optional[SecurityPolicy], List[CheckResult]]:
        """Look up the policy and run every checking module.

        Returns ``(policy, results)``; ``policy`` is None on a lookup miss, in
        which case ``results`` contains a single synthetic POLICY_MISS failure.
        ``charge_latency=False`` is used for response-path re-validation, which
        the hardware overlaps with the data transfer.
        """
        if charge_latency:
            self.evaluations += 1
            self.cycles_charged += self.latency_cycles

        if not self.cache_enabled:
            return self._evaluate_uncached(txn)[:2]

        if self.config_memory.generation != self._cache_generation:
            self.invalidate_cache()

        key = self.decision_key(txn)
        hit = self._cache.get(key)
        if hit is not None:
            policy, results, failed, missed_rules = hit
            self.cache_hits += 1
            self.config_memory.note_cached_lookup(missed_rules)
            if failed:
                self.violations += 1
            return policy, results

        self.cache_misses += 1
        policy, results, failed, missed_rules = self._evaluate_uncached(txn)
        if len(self._cache) >= self.CACHE_LIMIT:
            self._cache.clear()
        self._cache[key] = (policy, results, failed, missed_rules)
        return policy, results

    def _evaluate_uncached(
        self, txn: BusTransaction
    ) -> Tuple[Optional[SecurityPolicy], List[CheckResult], bool, bool]:
        """The original evaluation path; also reports (failed, missed_rules)
        so the cache can replay statistics faithfully."""
        misses_before = self.config_memory.miss_count
        try:
            policy = self.config_memory.lookup(txn.address, txn.size)
        except PolicyLookupError as exc:
            self.violations += 1
            results = [
                CheckResult.fail("policy_lookup", ViolationType.POLICY_MISS, detail=str(exc))
            ]
            return None, results, True, True
        missed_rules = self.config_memory.miss_count > misses_before
        results = [check.check(policy, txn) for check in self.checks]
        failed = any(not result.passed for result in results)
        if failed:
            self.violations += 1
        return policy, results, failed, missed_rules

    def address_range_check(self) -> Optional[AddressRangeCheck]:
        """The address-range checking module, if instantiated (used by the
        manager to confine a quarantined IP)."""
        for check in self.checks:
            if isinstance(check, AddressRangeCheck):
                return check
        return None


class FirewallInterface:
    """Firewall Interface: the datapath gate driven by the alert signals."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.passed = 0
        self.discarded = 0

    def gate(self, allowed: bool) -> bool:
        """Record the gating decision; returns it unchanged."""
        if allowed:
            self.passed += 1
        else:
            self.discarded += 1
        return allowed


class LocalFirewall(TransactionFilter):
    """A complete Local Firewall, usable on master and slave ports.

    Parameters
    ----------
    sim:
        Simulator (for timestamping alerts).
    name:
        Firewall instance name, e.g. ``"lf_cpu0"``.
    config_memory:
        The trusted Configuration Memory holding this firewall's policy rules.
    monitor:
        The platform's :class:`SecurityMonitor`; may be None for standalone use.
    protected_ip:
        Name of the IP this firewall guards (reporting only).
    check_responses:
        Also re-validate the policy on the response path (the paper checks
        read data "before reaching the IP"); the check is overlapped with the
        data transfer in hardware, so it adds no extra latency here.
    flood_threshold / flood_window:
        Optional DoS heuristic: if more than ``flood_threshold`` requests are
        observed within ``flood_window`` cycles, a TRAFFIC_FLOOD alert is
        raised (and the excess requests are dropped when ``flood_block`` is
        True).
    """

    name = "local_firewall"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config_memory: ConfigurationMemory,
        monitor: Optional[SecurityMonitor] = None,
        protected_ip: str = "",
        checks: Optional[Sequence[SecurityCheck]] = None,
        sb_latency: int = SECURITY_BUILDER_CYCLES,
        check_responses: bool = True,
        flood_threshold: Optional[int] = None,
        flood_window: int = 100,
        flood_block: bool = True,
    ) -> None:
        self.sim = sim
        self.name = name
        self.monitor = monitor
        self.protected_ip = protected_ip or name
        self.check_responses = check_responses

        self.communication_block = CommunicationBlock(f"{name}.lfcb")
        self.security_builder = SecurityBuilder(
            f"{name}.sb", config_memory, checks=checks, latency_cycles=sb_latency
        )
        self.firewall_interface = FirewallInterface(f"{name}.fi")

        self.flood_threshold = flood_threshold
        self.flood_window = flood_window
        self.flood_block = flood_block
        self._request_cycles: Deque[int] = deque()

        self.quarantined = False
        self.alerts_raised = 0

    # -- configuration memory passthroughs -------------------------------------------

    @property
    def config_memory(self) -> ConfigurationMemory:
        return self.security_builder.config_memory

    # -- alert plumbing -----------------------------------------------------------------

    def _raise(self, txn: BusTransaction, violation: ViolationType, detail: str) -> None:
        self.alerts_raised += 1
        if self.monitor is not None:
            self.monitor.raise_alert(
                SecurityAlert.for_violation(
                    cycle=self.sim.now,
                    firewall=self.name,
                    master=txn.master,
                    violation=violation,
                    address=txn.address,
                    txn_id=txn.txn_id,
                    detail=detail,
                )
            )

    def _emit_decision(self, txn: BusTransaction, allowed: bool, reason: str = "") -> None:
        """Publish the gating verdict on the instrumentation bus, if any."""
        event_bus = self.sim.event_bus
        if event_bus is not None:
            # Hot path: counting-only buses take the payload-free lane.
            if event_bus.count_only:
                event_bus.count("firewall.decision")
            else:
                event_bus.emit(
                    "firewall.decision", self.sim.now, self.name,
                    master=txn.master, address=txn.address, write=txn.is_write,
                    allowed=allowed, reason=reason,
                )

    # -- DoS heuristic ---------------------------------------------------------------------

    def _flood_detected(self) -> bool:
        if self.flood_threshold is None:
            return False
        now = self.sim.now
        self._request_cycles.append(now)
        # Drop entries that fell out of the sliding window.
        cutoff = now - self.flood_window
        while self._request_cycles and self._request_cycles[0] < cutoff:
            self._request_cycles.popleft()
        return len(self._request_cycles) > self.flood_threshold

    # -- TransactionFilter interface ----------------------------------------------------------

    def filter_request(self, txn: BusTransaction) -> FilterResult:
        self.communication_block.trigger(txn)

        if self.quarantined:
            self._raise(txn, ViolationType.UNAUTHORIZED_WRITE if txn.is_write else ViolationType.UNAUTHORIZED_READ,
                        detail=f"{self.protected_ip} is quarantined")
            self.firewall_interface.gate(False)
            self._emit_decision(txn, False, reason="quarantined")
            return FilterResult.deny(
                reason=f"{self.name}: IP quarantined",
                latency=self.security_builder.latency_cycles,
                stage="security_builder",
            )

        if self._flood_detected():
            self._raise(txn, ViolationType.TRAFFIC_FLOOD,
                        detail=f"more than {self.flood_threshold} requests in {self.flood_window} cycles")
            if self.flood_block:
                self.firewall_interface.gate(False)
                self._emit_decision(txn, False, reason="traffic_flood")
                return FilterResult.deny(
                    reason=f"{self.name}: traffic flood",
                    latency=self.security_builder.latency_cycles,
                    stage="security_builder",
                )

        policy, results = self.security_builder.evaluate(txn)
        failures = [r for r in results if not r.passed]
        if failures:
            first = failures[0]
            assert first.violation is not None
            self._raise(txn, first.violation, first.detail)
            self.firewall_interface.gate(False)
            self._emit_decision(txn, False, reason=first.violation.value)
            return FilterResult.deny(
                reason=f"{self.name}: {first.violation.value} ({first.detail})",
                latency=self.security_builder.latency_cycles,
                stage="security_builder",
            )

        if policy is not None:
            txn.annotations[f"{self.name}.spi"] = policy.spi
        self.firewall_interface.gate(True)
        self._emit_decision(txn, True)
        return FilterResult.allow(
            latency=self.security_builder.latency_cycles, stage="security_builder"
        )

    def filter_response(self, txn: BusTransaction) -> FilterResult:
        if not self.check_responses or not txn.is_read:
            return FilterResult.allow(stage=self.name)
        # Response-path re-validation: the policy may have been reconfigured
        # while the transaction was in flight, and read data must be checked
        # "before reaching the IP".  The hardware overlaps this with the data
        # transfer, so no extra cycles are charged.
        policy, results = self.security_builder.evaluate(txn, charge_latency=False)
        failures = [r for r in results if not r.passed]
        if failures:
            first = failures[0]
            assert first.violation is not None
            self._raise(txn, first.violation, first.detail)
            self.firewall_interface.gate(False)
            return FilterResult.deny(
                reason=f"{self.name}: response {first.violation.value}",
                stage=self.name,
            )
        self.firewall_interface.gate(True)
        return FilterResult.allow(stage=self.name)

    # -- reporting ----------------------------------------------------------------------------

    def summary(self) -> dict:
        """Per-firewall statistics used by reports and tests."""
        return {
            "name": self.name,
            "protected_ip": self.protected_ip,
            "secpol_requests": self.communication_block.secpol_requests,
            "evaluations": self.security_builder.evaluations,
            "violations": self.security_builder.violations,
            "sb_cycles_charged": self.security_builder.cycles_charged,
            "passed": self.firewall_interface.passed,
            "discarded": self.firewall_interface.discarded,
            "sb_cache_hits": self.security_builder.cache_hits,
            "sb_cache_misses": self.security_builder.cache_misses,
            "alerts": self.alerts_raised,
            "rules": len(self.config_memory),
            "quarantined": self.quarantined,
        }
