"""Security policies and the trusted Configuration Memory.

Section IV-A of the paper defines a Security Policy (SP) as the set of
parameters protecting one resource:

* **SPI** -- the policy identifier,
* **RWA** -- read-only / write-only / read-write access rule,
* **ADF** -- the data formats (access widths) the resource accepts,
* **CM / IM** -- confidentiality and integrity modes (only meaningful for the
  Local Ciphering Firewall),
* **CK** -- the cryptographic key (only for the LCF; modelled as a reference
  into the :class:`repro.crypto.keys.KeyStore` rather than raw key bytes, so
  policies can be serialised and logged without leaking key material).

Policies are stored in on-chip *Configuration Memories*, "considered as
trusted units" — each firewall owns one.  A configuration memory maps address
ranges to policies; the Security Builder queries it on every transaction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

__all__ = [
    "ReadWriteAccess",
    "ConfidentialityMode",
    "IntegrityMode",
    "SecurityPolicy",
    "PolicyRule",
    "ConfigurationMemory",
    "PolicyLookupError",
    "ConfigurationMemoryFull",
]


class ReadWriteAccess(enum.Enum):
    """The paper's RWA parameter: which directions of access are authorised."""

    READ_ONLY = "read_only"
    WRITE_ONLY = "write_only"
    READ_WRITE = "read_write"
    NO_ACCESS = "no_access"

    def allows_read(self) -> bool:
        return self in (ReadWriteAccess.READ_ONLY, ReadWriteAccess.READ_WRITE)

    def allows_write(self) -> bool:
        return self in (ReadWriteAccess.WRITE_ONLY, ReadWriteAccess.READ_WRITE)


class ConfidentialityMode(enum.Enum):
    """CM parameter: execute or bypass the block-cipher module."""

    BYPASS = "bypass"
    CIPHER = "cipher"


class IntegrityMode(enum.Enum):
    """IM parameter: execute or bypass the hash-tree module."""

    BYPASS = "bypass"
    HASH_TREE = "hash_tree"


@dataclass(frozen=True)
class SecurityPolicy:
    """One security policy (the paper's SP).

    ``allowed_formats`` is the ADF parameter as a frozenset of byte widths;
    the paper allows "8 up to 32 bits", i.e. {1, 2, 4} on the 32-bit bus.
    ``key_spi`` indirects into the key store for the CK parameter.
    ``max_burst_length`` bounds burst accesses (a burst longer than the
    resource's buffer is the kind of "unauthorized format [that] may overwrite
    some protected data in the target IP").
    """

    spi: int
    rwa: ReadWriteAccess = ReadWriteAccess.READ_WRITE
    allowed_formats: FrozenSet[int] = frozenset({1, 2, 4})
    confidentiality: ConfidentialityMode = ConfidentialityMode.BYPASS
    integrity: IntegrityMode = IntegrityMode.BYPASS
    key_spi: Optional[int] = None
    max_burst_length: int = 16
    description: str = ""

    def __post_init__(self) -> None:
        if self.spi < 0:
            raise ValueError("SPI must be non-negative")
        if not self.allowed_formats:
            raise ValueError("policy must allow at least one data format")
        if any(width not in (1, 2, 4) for width in self.allowed_formats):
            raise ValueError("allowed formats must be a subset of {1, 2, 4} bytes")
        if self.max_burst_length < 1:
            raise ValueError("max_burst_length must be >= 1")
        if self.confidentiality is ConfidentialityMode.CIPHER and self.key_spi is None:
            raise ValueError("ciphering policy requires a key_spi")

    # -- convenience predicates -------------------------------------------------

    @property
    def needs_ciphering(self) -> bool:
        return self.confidentiality is ConfidentialityMode.CIPHER

    @property
    def needs_integrity(self) -> bool:
        return self.integrity is IntegrityMode.HASH_TREE

    def allows_operation(self, is_write: bool) -> bool:
        """Whether the RWA rule permits the access direction."""
        return self.rwa.allows_write() if is_write else self.rwa.allows_read()

    def allows_format(self, width: int) -> bool:
        """Whether the ADF rule permits the access width."""
        return width in self.allowed_formats

    def allows_burst(self, burst_length: int) -> bool:
        """Whether the burst length is within the allowed bound."""
        return 1 <= burst_length <= self.max_burst_length

    def with_updates(self, **changes) -> "SecurityPolicy":
        """Return a modified copy (used by runtime reconfiguration)."""
        return replace(self, **changes)

    def rule_count(self) -> int:
        """Number of elementary checking rules this policy implies.

        Used by the area model: the paper notes that "the cost of firewalls is
        also related to the number of security rules that must be monitored".
        One rule per check dimension: RWA, each allowed format, burst bound,
        plus CM and IM when enabled.
        """
        count = 1  # RWA
        count += len(self.allowed_formats)  # ADF comparators
        count += 1  # burst bound
        if self.needs_ciphering:
            count += 1
        if self.needs_integrity:
            count += 1
        return count


@dataclass(frozen=True)
class PolicyRule:
    """Binding of a policy to an address range inside a Configuration Memory."""

    base: int
    size: int
    policy: SecurityPolicy
    label: str = ""

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("rule base must be non-negative")
        if self.size <= 0:
            raise ValueError("rule size must be positive")

    @property
    def end(self) -> int:
        return self.base + self.size

    def covers(self, address: int, size: int = 1) -> bool:
        """Whether ``[address, address+size)`` lies entirely inside the rule."""
        return self.base <= address and address + size <= self.end

    def overlaps(self, other: "PolicyRule") -> bool:
        return self.base < other.end and other.base < self.end


class PolicyLookupError(LookupError):
    """Raised when no rule covers a requested address range."""

    def __init__(self, address: int, size: int) -> None:
        self.address = address
        self.size = size
        super().__init__(
            f"no security policy covers [{address:#010x}, {address + size:#010x})"
        )


class ConfigurationMemoryFull(RuntimeError):
    """Raised when adding a rule would exceed the memory's capacity."""


class ConfigurationMemory:
    """Trusted on-chip storage of the policy rules of one firewall.

    Parameters
    ----------
    name:
        Name of the owning firewall (used in reports and the area model).
    capacity:
        Maximum number of rules this memory can hold; the paper sizes
        configuration memories in BRAM, so capacity drives BRAM cost in the
        area model.
    default_policy:
        Policy applied when no rule matches; ``None`` means default-deny
        (the Security Builder reports a policy miss and the firewall blocks).
    """

    def __init__(
        self,
        name: str,
        capacity: int = 32,
        default_policy: Optional[SecurityPolicy] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._default_policy = default_policy
        self._rules: List[PolicyRule] = []
        self.lookup_count = 0
        self.miss_count = 0
        self.reconfiguration_count = 0
        # Monotonic counter bumped on every rule change; decision caches in
        # the firewalls compare it to know when their memoised verdicts are
        # stale.  Anything that mutates the rule set MUST bump it.
        self.generation = 0

    # -- rule management ---------------------------------------------------------

    def add_rule(self, rule: PolicyRule) -> PolicyRule:
        """Install a rule; rejects overlapping ranges and over-capacity."""
        if len(self._rules) >= self.capacity:
            raise ConfigurationMemoryFull(
                f"{self.name}: capacity {self.capacity} reached"
            )
        for existing in self._rules:
            if existing.overlaps(rule):
                raise ValueError(
                    f"{self.name}: rule [{rule.base:#x}, {rule.end:#x}) overlaps "
                    f"existing [{existing.base:#x}, {existing.end:#x})"
                )
        self._rules.append(rule)
        self._rules.sort(key=lambda r: r.base)
        self.generation += 1
        return rule

    def add(
        self,
        base: int,
        size: int,
        policy: SecurityPolicy,
        label: str = "",
    ) -> PolicyRule:
        """Convenience wrapper building and installing a :class:`PolicyRule`."""
        return self.add_rule(PolicyRule(base=base, size=size, policy=policy, label=label))

    def remove(self, base: int) -> bool:
        """Remove the rule starting at ``base``; returns True if one existed."""
        for index, rule in enumerate(self._rules):
            if rule.base == base:
                del self._rules[index]
                self.reconfiguration_count += 1
                self.generation += 1
                return True
        return False

    def replace_policy(self, base: int, policy: SecurityPolicy) -> bool:
        """Swap the policy of the rule starting at ``base`` (runtime reconfiguration)."""
        for index, rule in enumerate(self._rules):
            if rule.base == base:
                self._rules[index] = PolicyRule(
                    base=rule.base, size=rule.size, policy=policy, label=rule.label
                )
                self.reconfiguration_count += 1
                self.generation += 1
                return True
        return False

    @property
    def default_policy(self) -> Optional[SecurityPolicy]:
        """Policy applied when no rule matches (None = default-deny)."""
        return self._default_policy

    @default_policy.setter
    def default_policy(self, policy: Optional[SecurityPolicy]) -> None:
        # Assigning the fallback changes lookup outcomes, so it must
        # invalidate the firewalls' decision caches like any rule change.
        self._default_policy = policy
        self.generation += 1

    def set_default_policy(self, policy: Optional[SecurityPolicy]) -> None:
        """Change the fallback policy (counts as a reconfiguration)."""
        self.default_policy = policy
        self.reconfiguration_count += 1

    # -- lookup -------------------------------------------------------------------

    def note_cached_lookup(self, missed: bool = False) -> None:
        """Account for a lookup served from a firewall's decision cache.

        Keeps ``lookup_count``/``miss_count`` identical to an uncached run, so
        reports and experiments see the same statistics regardless of caching.
        """
        self.lookup_count += 1
        if missed:
            self.miss_count += 1

    def note_cached_lookups(self, count: int, missed_count: int = 0) -> None:
        """Bulk form of :meth:`note_cached_lookup` for batch engines that
        replay memoised verdicts and settle lookup statistics per batch
        instead of per transaction."""
        if count < 0 or missed_count < 0 or missed_count > count:
            raise ValueError("invalid cached-lookup accounting")
        self.lookup_count += count
        self.miss_count += missed_count

    def lookup(self, address: int, size: int = 1) -> SecurityPolicy:
        """Find the policy governing ``[address, address+size)``.

        Falls back to the default policy, or raises :class:`PolicyLookupError`
        when there is none (default-deny).
        """
        self.lookup_count += 1
        for rule in self._rules:
            if rule.covers(address, size):
                return rule.policy
        self.miss_count += 1
        if self.default_policy is not None:
            return self.default_policy
        raise PolicyLookupError(address, size)

    def rule_for(self, address: int, size: int = 1) -> Optional[PolicyRule]:
        """The rule covering an address range, or None."""
        for rule in self._rules:
            if rule.covers(address, size):
                return rule
        return None

    # -- introspection ---------------------------------------------------------------

    @property
    def rules(self) -> Tuple[PolicyRule, ...]:
        return tuple(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[PolicyRule]:
        return iter(self._rules)

    def total_rule_count(self) -> int:
        """Total number of elementary checking rules across all policies.

        This is the quantity the paper says drives firewall area.
        """
        total = sum(rule.policy.rule_count() for rule in self._rules)
        if self.default_policy is not None:
            total += self.default_policy.rule_count()
        return total

    def policies(self) -> List[SecurityPolicy]:
        """Distinct policies installed in this memory."""
        seen: Dict[int, SecurityPolicy] = {}
        for rule in self._rules:
            seen[rule.policy.spi] = rule.policy
        return list(seen.values())
