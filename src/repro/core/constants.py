"""Calibration constants taken directly from the paper.

Table II of the paper reports the latency and throughput of the firewall
modules measured on the ML605 platform:

===========================  ==========  ==================
module                        cycles      throughput (Mb/s)
===========================  ==========  ==================
Security Builder (LF & LCF)   12          --
Confidentiality Core (AES)    11          450
Integrity Core (hash tree)    20          131
===========================  ==========  ==================

Table I reports the synthesis area of the firewall components on the
XC6VLX240T (slice registers, slice LUTs, fully-used LUT-FF pairs, BRAMs);
those numbers live in :mod:`repro.metrics.area` next to the model that uses
them.  The latency constants live here because the firewalls themselves charge
these cycle counts to every transaction they process, which is how Table II
and the execution-time ablations are regenerated.
"""

from __future__ import annotations

__all__ = [
    "BUS_CLOCK_HZ",
    "SECURITY_BUILDER_CYCLES",
    "CONFIDENTIALITY_CORE_CYCLES",
    "INTEGRITY_CORE_CYCLES",
    "CONFIDENTIALITY_CORE_THROUGHPUT_MBPS",
    "INTEGRITY_CORE_THROUGHPUT_MBPS",
    "AES_BLOCK_BITS",
    "INTEGRITY_BLOCK_BYTES",
]

#: Nominal bus/processor clock of the evaluated MicroBlaze platform.
BUS_CLOCK_HZ: float = 100e6

#: Cycles the Security Builder needs to fetch a policy and run the checking
#: modules (Table II, first row).  Identical for LF and LCF.
SECURITY_BUILDER_CYCLES: int = 12

#: Cycles the AES-128 Confidentiality Core needs per 128-bit block
#: (Table II, second row).
CONFIDENTIALITY_CORE_CYCLES: int = 11

#: Cycles the hash-tree Integrity Core needs per protected block
#: (Table II, third row).
INTEGRITY_CORE_CYCLES: int = 20

#: Throughput the paper reports for the Confidentiality Core.
CONFIDENTIALITY_CORE_THROUGHPUT_MBPS: float = 450.0

#: Throughput the paper reports for the Integrity Core.
INTEGRITY_CORE_THROUGHPUT_MBPS: float = 131.0

#: AES block size in bits (used to convert cycles to throughput).
AES_BLOCK_BITS: int = 128

#: Size of one Integrity Core protected block / hash-tree leaf in bytes.
INTEGRITY_BLOCK_BYTES: int = 32
