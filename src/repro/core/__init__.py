"""The paper's contribution: distributed security for an MPSoC bus.

Public surface:

* policies and configuration memories (:mod:`repro.core.policy`),
* checking modules (:mod:`repro.core.checks`),
* the Local Firewall and the Local Ciphering Firewall
  (:mod:`repro.core.local_firewall`, :mod:`repro.core.ciphering_firewall`),
* alerting (:mod:`repro.core.alerts`) and runtime reaction / reconfiguration
  (:mod:`repro.core.manager`),
* :func:`repro.core.secure.secure_platform`, which attaches all of the above
  to a platform built by :func:`repro.soc.system.build_reference_platform`,
* the paper-calibrated latency constants (:mod:`repro.core.constants`).
"""

from repro.core.constants import (
    CONFIDENTIALITY_CORE_CYCLES,
    CONFIDENTIALITY_CORE_THROUGHPUT_MBPS,
    INTEGRITY_CORE_CYCLES,
    INTEGRITY_CORE_THROUGHPUT_MBPS,
    SECURITY_BUILDER_CYCLES,
)
from repro.core.policy import (
    ConfidentialityMode,
    ConfigurationMemory,
    ConfigurationMemoryFull,
    IntegrityMode,
    PolicyLookupError,
    PolicyRule,
    ReadWriteAccess,
    SecurityPolicy,
)
from repro.core.checks import (
    AddressRangeCheck,
    BurstLengthCheck,
    CheckResult,
    DataFormatCheck,
    ReadWriteAccessCheck,
    SecurityCheck,
    default_check_suite,
)
from repro.core.alerts import SecurityAlert, SecurityMonitor, Severity, ViolationType
from repro.core.local_firewall import (
    CommunicationBlock,
    FirewallInterface,
    LocalFirewall,
    SecurityBuilder,
)
from repro.core.ciphering_firewall import (
    ConfidentialityCore,
    IntegrityCore,
    LocalCipheringFirewall,
    ProtectedRegion,
)
from repro.core.manager import ReactionEvent, ReactionPolicy, SecurityPolicyManager
from repro.core.thread_policy import (
    THREAD_ID_ANNOTATION,
    ThreadAwareLocalFirewall,
    ThreadSecurityDirectory,
)
from repro.core.secure import (
    SecuredPlatform,
    SecurityConfiguration,
    default_policies,
    secure_platform,
    secure_reference_platform,
)

__all__ = [
    "SECURITY_BUILDER_CYCLES",
    "CONFIDENTIALITY_CORE_CYCLES",
    "INTEGRITY_CORE_CYCLES",
    "CONFIDENTIALITY_CORE_THROUGHPUT_MBPS",
    "INTEGRITY_CORE_THROUGHPUT_MBPS",
    "ReadWriteAccess",
    "ConfidentialityMode",
    "IntegrityMode",
    "SecurityPolicy",
    "PolicyRule",
    "ConfigurationMemory",
    "ConfigurationMemoryFull",
    "PolicyLookupError",
    "SecurityCheck",
    "CheckResult",
    "ReadWriteAccessCheck",
    "DataFormatCheck",
    "BurstLengthCheck",
    "AddressRangeCheck",
    "default_check_suite",
    "SecurityAlert",
    "SecurityMonitor",
    "Severity",
    "ViolationType",
    "LocalFirewall",
    "CommunicationBlock",
    "SecurityBuilder",
    "FirewallInterface",
    "LocalCipheringFirewall",
    "ConfidentialityCore",
    "IntegrityCore",
    "ProtectedRegion",
    "SecurityPolicyManager",
    "ReactionPolicy",
    "ReactionEvent",
    "ThreadSecurityDirectory",
    "ThreadAwareLocalFirewall",
    "THREAD_ID_ANNOTATION",
    "SecurityConfiguration",
    "SecuredPlatform",
    "secure_platform",
    "secure_reference_platform",
    "default_policies",
]
