"""Thread-specific security levels (the paper's final perspective).

The conclusion of the paper suggests: "it can be interesting to study the
adaptation to thread-specific security where each thread has its own security
level".  This module implements that extension on top of the address-based
policies:

* a :class:`ThreadSecurityDirectory` assigns a *clearance level* to each
  software thread (threads are identified by the ``thread_id`` annotation the
  processor model attaches to its transactions),
* a :class:`ThreadAwareLocalFirewall` is a Local Firewall whose rules can
  additionally require a minimum clearance; an access whose issuing thread is
  below the required level is discarded exactly like any other violation,
  even if the address-based policy would have allowed it.

The extension is purely additive: a firewall with no clearance requirements,
or transactions without a ``thread_id``, behave exactly like the base design
(unknown threads get the directory's default clearance).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.alerts import ViolationType
from repro.core.local_firewall import LocalFirewall
from repro.core.policy import ConfigurationMemory
from repro.soc.kernel import Simulator
from repro.soc.ports import FilterResult
from repro.soc.transaction import BusTransaction

__all__ = ["ThreadSecurityDirectory", "ThreadAwareLocalFirewall", "THREAD_ID_ANNOTATION"]

#: Annotation key carrying the issuing thread on a transaction.
THREAD_ID_ANNOTATION = "thread_id"


class ThreadSecurityDirectory:
    """Trusted table mapping thread identifiers to clearance levels.

    Levels are small non-negative integers; higher means more privileged.
    The directory is deliberately tiny (it would live next to the
    Configuration Memories in on-chip memory) and supports runtime updates so
    the security manager can demote a misbehaving thread without touching the
    address-based rules.
    """

    def __init__(self, default_clearance: int = 0) -> None:
        if default_clearance < 0:
            raise ValueError("clearance levels must be non-negative")
        self.default_clearance = default_clearance
        self._levels: Dict[int, int] = {}
        self.updates = 0

    def set_clearance(self, thread_id: int, level: int) -> None:
        """Assign (or update) a thread's clearance level."""
        if level < 0:
            raise ValueError("clearance levels must be non-negative")
        self._levels[thread_id] = level
        self.updates += 1

    def clearance(self, thread_id: Optional[int]) -> int:
        """Clearance of a thread; unknown or missing threads get the default."""
        if thread_id is None:
            return self.default_clearance
        return self._levels.get(thread_id, self.default_clearance)

    def revoke(self, thread_id: int) -> bool:
        """Drop a thread back to the default clearance."""
        if thread_id in self._levels:
            del self._levels[thread_id]
            self.updates += 1
            return True
        return False

    def __len__(self) -> int:
        return len(self._levels)


class ThreadAwareLocalFirewall(LocalFirewall):
    """Local Firewall enforcing per-thread clearance on top of address rules.

    ``clearance_requirements`` maps a rule's base address to the minimum
    clearance a thread needs for *any* access to that rule's window;
    ``write_clearance_requirements`` optionally raises the bar for writes only
    (a common pattern: many threads may read a shared table, only the manager
    thread may update it).
    """

    name = "thread_aware_local_firewall"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config_memory: ConfigurationMemory,
        directory: ThreadSecurityDirectory,
        clearance_requirements: Optional[Dict[int, int]] = None,
        write_clearance_requirements: Optional[Dict[int, int]] = None,
        **kwargs,
    ) -> None:
        super().__init__(sim, name, config_memory, **kwargs)
        self.directory = directory
        self.clearance_requirements = dict(clearance_requirements or {})
        self.write_clearance_requirements = dict(write_clearance_requirements or {})
        self.thread_denials = 0

    def require_clearance(self, rule_base: int, level: int, writes_only: bool = False) -> None:
        """Add or tighten a clearance requirement at runtime."""
        target = self.write_clearance_requirements if writes_only else self.clearance_requirements
        target[rule_base] = level

    def _required_level(self, txn: BusTransaction) -> Optional[int]:
        rule = self.config_memory.rule_for(txn.address, txn.size)
        if rule is None:
            return None
        required = self.clearance_requirements.get(rule.base)
        if txn.is_write:
            write_required = self.write_clearance_requirements.get(rule.base)
            if write_required is not None:
                required = max(required or 0, write_required)
        return required

    def filter_request(self, txn: BusTransaction) -> FilterResult:
        base_result = super().filter_request(txn)
        if not base_result.allowed:
            return base_result

        required = self._required_level(txn)
        if required is None:
            return base_result

        thread_id = txn.annotations.get(THREAD_ID_ANNOTATION)
        clearance = self.directory.clearance(thread_id)
        if clearance >= required:
            txn.annotations[f"{self.name}.clearance"] = clearance
            return base_result

        self.thread_denials += 1
        violation = (
            ViolationType.UNAUTHORIZED_WRITE if txn.is_write else ViolationType.UNAUTHORIZED_READ
        )
        self._raise(
            txn,
            violation,
            detail=(
                f"thread {thread_id!r} clearance {clearance} below required "
                f"level {required}"
            ),
        )
        self.firewall_interface.gate(False)
        return FilterResult.deny(
            reason=f"{self.name}: insufficient thread clearance",
            latency=base_result.latency,
            stage="security_builder",
        )

    def summary(self) -> dict:
        data = super().summary()
        data["thread_denials"] = self.thread_denials
        data["clearance_rules"] = len(self.clearance_requirements) + len(
            self.write_clearance_requirements
        )
        return data
