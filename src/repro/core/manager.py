"""Distributed security-policy management and runtime reaction.

The paper's perspectives announce two extensions that this module implements
so the reproduction also covers the "future work" surface:

* "We also plan to integrate reconfiguration of security services (i.e.
  modification of security policies) to counter some attacks against the
  system" -- :meth:`SecurityPolicyManager.reconfigure_policy` and the
  reaction rules that tighten an IP's policy after repeated violations.
* Reaction to detected attacks: quarantine of the offending IP (its Local
  Firewall blocks everything), zeroisation of cryptographic keys, and
  counting of reaction latency (cycles between the violation and the
  countermeasure taking effect) — the paper's first security feature is that
  "the system must react as fast as possible".

The manager stays true to the distributed philosophy: it never sits on the
datapath (unlike the centralised SEM of Coburn et al. discussed in the related
work); it only *observes* alerts through the :class:`SecurityMonitor` and
*rewrites configuration memories*, which are the per-firewall trusted units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.alerts import SecurityAlert, SecurityMonitor, Severity, ViolationType
from repro.core.local_firewall import LocalFirewall
from repro.core.policy import SecurityPolicy
from repro.crypto.keys import KeyStore
from repro.soc.kernel import Simulator

__all__ = ["ReactionPolicy", "ReactionEvent", "SecurityPolicyManager"]


@dataclass
class ReactionPolicy:
    """Thresholds controlling automatic reactions.

    ``quarantine_after`` violations from one master trigger quarantine of the
    firewall guarding that master; ``zeroise_keys_on_critical`` erases the key
    store as soon as a CRITICAL integrity alert fires (so an attacker who has
    begun tampering with external memory cannot keep decrypting it).
    """

    quarantine_after: int = 3
    zeroise_keys_on_critical: bool = False
    tighten_policy_after: Optional[int] = None


@dataclass(frozen=True)
class ReactionEvent:
    """Record of one countermeasure applied by the manager."""

    cycle: int
    kind: str
    target: str
    detail: str = ""


class SecurityPolicyManager:
    """Watches the security monitor and reconfigures firewalls in reaction."""

    def __init__(
        self,
        sim: Simulator,
        monitor: SecurityMonitor,
        reaction: Optional[ReactionPolicy] = None,
        key_store: Optional[KeyStore] = None,
    ) -> None:
        self.sim = sim
        self.monitor = monitor
        self.reaction = reaction or ReactionPolicy()
        self.key_store = key_store
        self._firewalls: Dict[str, LocalFirewall] = {}
        self._guarded_master: Dict[str, str] = {}  # master name -> firewall name
        self._violations_by_master: Dict[str, int] = {}
        self.reactions: List[ReactionEvent] = []
        monitor.subscribe(self._on_alert)

    # -- registration --------------------------------------------------------------

    def register_firewall(self, firewall: LocalFirewall, guards_master: Optional[str] = None) -> None:
        """Track a firewall; ``guards_master`` names the bus master whose
        traffic this firewall filters (None for slave-side firewalls)."""
        self._firewalls[firewall.name] = firewall
        if guards_master is not None:
            self._guarded_master[guards_master] = firewall.name

    def firewall(self, name: str) -> LocalFirewall:
        return self._firewalls[name]

    @property
    def firewalls(self) -> List[LocalFirewall]:
        return list(self._firewalls.values())

    # -- explicit reconfiguration API (the paper's perspective) -------------------------

    def reconfigure_policy(self, firewall_name: str, rule_base: int, policy: SecurityPolicy) -> bool:
        """Swap the policy of one rule in one firewall's configuration memory."""
        firewall = self._firewalls[firewall_name]
        changed = firewall.config_memory.replace_policy(rule_base, policy)
        if changed:
            self._record("reconfigure_policy", firewall_name,
                         f"rule at {rule_base:#x} now uses SPI {policy.spi}")
        return changed

    def quarantine(self, master: str) -> bool:
        """Quarantine the firewall guarding ``master`` (blocks all its traffic)."""
        firewall_name = self._guarded_master.get(master)
        if firewall_name is None:
            return False
        firewall = self._firewalls[firewall_name]
        if not firewall.quarantined:
            firewall.quarantined = True
            self._record("quarantine", master, f"via {firewall_name}")
        return True

    def release(self, master: str) -> bool:
        """Lift a quarantine (e.g. after re-provisioning the IP)."""
        firewall_name = self._guarded_master.get(master)
        if firewall_name is None:
            return False
        firewall = self._firewalls[firewall_name]
        if firewall.quarantined:
            firewall.quarantined = False
            self._record("release", master, f"via {firewall_name}")
        return True

    def zeroise_keys(self) -> bool:
        """Erase every key in the key store (last-resort countermeasure)."""
        if self.key_store is None:
            return False
        was_locked = self.key_store.locked
        if was_locked:
            self.key_store.unlock()
        self.key_store.zeroise_all()
        if was_locked:
            self.key_store.lock()
        self._record("zeroise_keys", "key_store", "all keys erased")
        return True

    # -- automatic reactions ----------------------------------------------------------

    def _on_alert(self, alert: SecurityAlert) -> None:
        self._violations_by_master[alert.master] = (
            self._violations_by_master.get(alert.master, 0) + 1
        )

        if (
            self.reaction.zeroise_keys_on_critical
            and alert.severity is Severity.CRITICAL
            and alert.violation is ViolationType.INTEGRITY_FAILURE
        ):
            self.zeroise_keys()

        if self._violations_by_master[alert.master] >= self.reaction.quarantine_after:
            self.quarantine(alert.master)

    def _record(self, kind: str, target: str, detail: str = "") -> None:
        self.reactions.append(
            ReactionEvent(cycle=self.sim.now, kind=kind, target=target, detail=detail)
        )
        event_bus = self.sim.event_bus
        if event_bus is not None:
            event_bus.emit(
                "security.reconfiguration" if kind == "reconfigure_policy" else "security.reaction",
                self.sim.now, "security_manager",
                reaction=kind, target=target, detail=detail,
            )

    # -- analysis -----------------------------------------------------------------------

    def violations_of(self, master: str) -> int:
        """Number of alerts attributed to one master so far."""
        return self._violations_by_master.get(master, 0)

    def reaction_latency(self) -> Optional[int]:
        """Cycles between the first alert and the first countermeasure."""
        first_alert = self.monitor.first_detection_cycle()
        if first_alert is None or not self.reactions:
            return None
        first_reaction = min(event.cycle for event in self.reactions)
        return max(0, first_reaction - first_alert)

    def summary(self) -> Dict[str, object]:
        """Compact view of the manager's activity."""
        return {
            "firewalls": sorted(self._firewalls),
            "violations_by_master": dict(self._violations_by_master),
            "reactions": [
                {"cycle": e.cycle, "kind": e.kind, "target": e.target, "detail": e.detail}
                for e in self.reactions
            ],
            "reaction_latency": self.reaction_latency(),
        }
