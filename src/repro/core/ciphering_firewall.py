"""The Local Ciphering Firewall (LCF).

"Local Ciphering Firewall (LCF) monitors the exchanges between internal IPs
and the external memory.  The main feature of LCF is the protection of the
external memory in terms of confidentiality and integrity. [...] The
architecture of the Local Ciphering Firewall is similar to the LF one except
the ciphering and integrity modules" (paper, section IV-B2).

The LCF therefore *is a* :class:`~repro.core.local_firewall.LocalFirewall`
(same LFCB / Security Builder / Firewall Interface, same policy checks) plus:

* a :class:`ConfidentialityCore` -- AES-128 in counter mode; the counter is
  derived from the protected block's address and its timestamp tag, so moving
  ciphertext around (relocation) or restoring old ciphertext (replay) yields
  garbage on decryption,
* an :class:`IntegrityCore` -- a Merkle hash tree over the protected region
  plus per-block version counters (the paper's "time stamp tags"); any
  spoofing, relocation or replay of external-memory content is detected when
  the recomputed root mismatches the trusted on-chip root.

The LCF is interposed on the *slave port* of the external DDR, which is where
the paper places it (between the internal bus and the external memory).  On
the write path it enciphers data before it leaves the FPGA; on the read path
it deciphers and verifies data before it reaches the bus.  External memory
therefore only ever holds ciphertext for protected regions — which is exactly
what an attacker probing the external bus or the memory chips sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.alerts import SecurityMonitor, ViolationType
from repro.core.constants import (
    CONFIDENTIALITY_CORE_CYCLES,
    INTEGRITY_BLOCK_BYTES,
    INTEGRITY_CORE_CYCLES,
    SECURITY_BUILDER_CYCLES,
)
from repro.core.local_firewall import LocalFirewall
from repro.core.policy import ConfigurationMemory, PolicyRule
from repro.crypto.aes import AES128
from repro.crypto.keys import KeyStore
from repro.crypto.merkle import MerkleTree
from repro.crypto.modes import CTRMode
from repro.soc.kernel import Simulator
from repro.soc.ports import FilterResult
from repro.soc.transaction import BusTransaction, TransactionStatus

__all__ = ["ConfidentialityCore", "IntegrityCore", "ProtectedRegion", "LocalCipheringFirewall"]


class ConfidentialityCore:
    """AES-128/CTR encryption datapath of the LCF.

    Charges :data:`CONFIDENTIALITY_CORE_CYCLES` per 16-byte AES block
    processed (Table II: 11 cycles).
    """

    AES_BLOCK = 16

    def __init__(self, name: str, cycles_per_block: int = CONFIDENTIALITY_CORE_CYCLES) -> None:
        self.name = name
        self.cycles_per_block = cycles_per_block
        self._ciphers: Dict[bytes, CTRMode] = {}
        self.blocks_processed = 0
        self.bytes_processed = 0
        self.cycles_charged = 0

    def _mode_for(self, key: bytes) -> CTRMode:
        if key not in self._ciphers:
            self._ciphers[key] = CTRMode(AES128(key))
        return self._ciphers[key]

    def _charge(self, n_bytes: int) -> int:
        n_blocks = max(1, (n_bytes + self.AES_BLOCK - 1) // self.AES_BLOCK)
        cycles = n_blocks * self.cycles_per_block
        self.blocks_processed += n_blocks
        self.bytes_processed += n_bytes
        self.cycles_charged += cycles
        return cycles

    def encipher(self, key: bytes, nonce: bytes, plaintext: bytes) -> Tuple[bytes, int]:
        """Encrypt a block; returns (ciphertext, cycles_charged)."""
        cycles = self._charge(len(plaintext))
        return self._mode_for(key).encrypt(plaintext, nonce), cycles

    def decipher(self, key: bytes, nonce: bytes, ciphertext: bytes) -> Tuple[bytes, int]:
        """Decrypt a block; returns (plaintext, cycles_charged)."""
        cycles = self._charge(len(ciphertext))
        return self._mode_for(key).decrypt(ciphertext, nonce), cycles


class IntegrityCore:
    """Hash-tree integrity datapath of the LCF.

    Charges :data:`INTEGRITY_CORE_CYCLES` per protected block verified or
    updated (Table II: 20 cycles).
    """

    def __init__(self, name: str, cycles_per_block: int = INTEGRITY_CORE_CYCLES) -> None:
        self.name = name
        self.cycles_per_block = cycles_per_block
        self.blocks_verified = 0
        self.blocks_updated = 0
        self.failures = 0
        self.cycles_charged = 0

    def verify(self, tree: MerkleTree, block_index: int, plaintext: bytes) -> Tuple[bool, int]:
        """Verify a block against the trusted root; returns (ok, cycles)."""
        self.blocks_verified += 1
        self.cycles_charged += self.cycles_per_block
        ok = tree.verify(block_index, plaintext)
        if not ok:
            self.failures += 1
        return ok, self.cycles_per_block

    def update(self, tree: MerkleTree, block_index: int, plaintext: bytes) -> int:
        """Record a block write in the tree; returns cycles charged."""
        self.blocks_updated += 1
        self.cycles_charged += self.cycles_per_block
        tree.update(block_index, plaintext)
        return self.cycles_per_block


@dataclass
class ProtectedRegion:
    """Runtime protection state for one ciphered/authenticated policy rule."""

    rule: PolicyRule
    key: bytes
    tree: Optional[MerkleTree]
    block_size: int = INTEGRITY_BLOCK_BYTES
    # Per-block version counters (the paper's time-stamp tags).  Shared with
    # the Merkle tree's versions when integrity is enabled so nonce derivation
    # and leaf binding stay consistent.
    versions: Optional[List[int]] = None

    def __post_init__(self) -> None:
        n_blocks = (self.rule.size + self.block_size - 1) // self.block_size
        if self.versions is None:
            self.versions = [0] * n_blocks

    @property
    def n_blocks(self) -> int:
        return len(self.versions or [])

    def block_index(self, address: int) -> int:
        index = (address - self.rule.base) // self.block_size
        if not 0 <= index < self.n_blocks:
            raise ValueError(f"address {address:#x} outside protected region")
        return index

    def block_base(self, index: int) -> int:
        return self.rule.base + index * self.block_size

    def blocks_overlapping(self, address: int, size: int) -> List[int]:
        first = self.block_index(address)
        last = self.block_index(address + size - 1)
        return list(range(first, last + 1))

    def version_of(self, index: int) -> int:
        if self.tree is not None:
            return self.tree.version(index)
        assert self.versions is not None
        return self.versions[index]

    def next_version(self, index: int) -> int:
        return self.version_of(index) + 1

    def bump_version(self, index: int) -> None:
        """Advance the version counter for CM-only regions (the tree bumps its
        own version inside ``update``)."""
        assert self.versions is not None
        self.versions[index] += 1

    def nonce(self, index: int, version: int) -> bytes:
        """CTR nonce binding block position and timestamp tag."""
        return (index & 0xFFFFFFFF).to_bytes(4, "big") + (version & 0xFFFFFFFF).to_bytes(4, "big")


class LocalCipheringFirewall(LocalFirewall):
    """LF plus Confidentiality Core and Integrity Core, guarding the DDR path.

    Parameters
    ----------
    device:
        The external memory device this firewall fronts (needed for the
        read-modify-write of partially written protected blocks, exactly as
        the hardware fetches the rest of the block over the memory interface).
    key_store:
        Trusted key table; policies reference keys by ``key_spi``.
    """

    name = "local_ciphering_firewall"

    #: Upper bound on memoised region lookups before the memo is reset.
    REGION_CACHE_LIMIT = 65536

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config_memory: ConfigurationMemory,
        device,
        key_store: KeyStore,
        monitor: Optional[SecurityMonitor] = None,
        protected_ip: str = "external_memory",
        sb_latency: int = SECURITY_BUILDER_CYCLES,
        cc_cycles_per_block: int = CONFIDENTIALITY_CORE_CYCLES,
        ic_cycles_per_block: int = INTEGRITY_CORE_CYCLES,
        block_size: int = INTEGRITY_BLOCK_BYTES,
        **kwargs,
    ) -> None:
        super().__init__(
            sim,
            name,
            config_memory,
            monitor=monitor,
            protected_ip=protected_ip,
            sb_latency=sb_latency,
            **kwargs,
        )
        self.device = device
        self.key_store = key_store
        self.block_size = block_size
        self.confidentiality_core = ConfidentialityCore(f"{name}.cc", cc_cycles_per_block)
        self.integrity_core = IntegrityCore(f"{name}.ic", ic_cycles_per_block)
        self._regions: Dict[int, ProtectedRegion] = {}  # keyed by rule base
        # Memoised region_for() answers; every protected transaction performs
        # this lookup on both the request and the response path, so the scan
        # over regions is worth caching.  Invalidated when the Configuration
        # Memory's rule set changes.
        self._region_cache: Dict[Tuple[int, int], Optional[ProtectedRegion]] = {}
        self._region_cache_generation = config_memory.generation
        self._build_regions()

    # -- region setup -------------------------------------------------------------------

    def _build_regions(self) -> None:
        for rule in self.config_memory.rules:
            policy = rule.policy
            if not (policy.needs_ciphering or policy.needs_integrity):
                continue
            if policy.key_spi is None:
                raise ValueError(
                    f"{self.name}: rule at {rule.base:#x} needs ciphering/integrity "
                    "but its policy has no key_spi"
                )
            key = self.key_store.get(policy.key_spi)
            n_blocks = (rule.size + self.block_size - 1) // self.block_size
            tree = (
                MerkleTree(n_blocks, block_size=self.block_size)
                if policy.needs_integrity
                else None
            )
            self._regions[rule.base] = ProtectedRegion(
                rule=rule, key=key, tree=tree, block_size=self.block_size
            )

    def protect_existing_contents(self) -> int:
        """Encrypt and authenticate whatever the protected regions currently
        hold in external memory (the provisioning step a secure boot flow
        performs before handing the memory to the application).

        Returns the number of blocks initialised.
        """
        initialised = 0
        for region in self._regions.values():
            policy = region.rule.policy
            for index in range(region.n_blocks):
                base = region.block_base(index)
                usable = min(self.block_size, region.rule.end - base)
                plaintext = self.device.peek(base, usable).ljust(self.block_size, b"\x00")
                new_version = region.next_version(index)
                if policy.needs_ciphering:
                    nonce = region.nonce(index, new_version)
                    ciphertext, _ = self.confidentiality_core.encipher(region.key, nonce, plaintext)
                    self.device.poke(base, ciphertext[:usable])
                if region.tree is not None:
                    region.tree.update(index, plaintext)
                else:
                    region.bump_version(index)
                initialised += 1
        return initialised

    def region_for(self, address: int, size: int = 1) -> Optional[ProtectedRegion]:
        """The protected region covering an address range, if any (memoised)."""
        if self.config_memory.generation != self._region_cache_generation:
            self._region_cache.clear()
            self._region_cache_generation = self.config_memory.generation
        key = (address, size)
        try:
            return self._region_cache[key]
        except KeyError:
            pass
        found: Optional[ProtectedRegion] = None
        for region in self._regions.values():
            if region.rule.covers(address, size):
                found = region
                break
        if len(self._region_cache) >= self.REGION_CACHE_LIMIT:
            self._region_cache.clear()
        self._region_cache[key] = found
        return found

    @property
    def protected_regions(self) -> List[ProtectedRegion]:
        return list(self._regions.values())

    # -- filter hooks ---------------------------------------------------------------------

    def filter_request(self, txn: BusTransaction) -> FilterResult:
        # First run the plain LF policy checks (RWA / ADF / burst / ranges).
        base_result = super().filter_request(txn)
        if not base_result.allowed:
            return base_result

        region = self.region_for(txn.address, txn.size)
        if region is None or txn.is_read:
            # Unprotected region, or a read (handled on the response path once
            # the ciphertext has been fetched from the external memory).
            return base_result

        return self._handle_protected_write(txn, region, base_result)

    def filter_response(self, txn: BusTransaction) -> FilterResult:
        base_result = super().filter_response(txn)
        if not base_result.allowed:
            return base_result
        if not txn.is_read or txn.data is None:
            return base_result
        region = self.region_for(txn.address, txn.size)
        if region is None:
            return base_result
        return self._handle_protected_read(txn, region, base_result)

    # -- protected write path ----------------------------------------------------------------

    def _handle_protected_write(
        self, txn: BusTransaction, region: ProtectedRegion, base_result: FilterResult
    ) -> FilterResult:
        assert txn.data is not None
        policy = region.rule.policy
        cc_cycles = 0
        ic_cycles = 0
        new_payload = bytearray(txn.data)

        for index in region.blocks_overlapping(txn.address, txn.size):
            block_base = region.block_base(index)
            block_end = block_base + region.block_size
            usable = min(region.block_size, region.rule.end - block_base)
            covers_whole_block = txn.address <= block_base and txn.end_address >= block_base + usable

            # Reconstruct the current plaintext of the block (read-modify-write).
            if covers_whole_block:
                old_plain = bytes(region.block_size)
            else:
                stored = self.device.peek(block_base, usable).ljust(region.block_size, b"\x00")
                if policy.needs_ciphering and region.version_of(index) > 0:
                    nonce = region.nonce(index, region.version_of(index))
                    old_plain, cycles = self.confidentiality_core.decipher(region.key, nonce, stored)
                    cc_cycles += cycles
                else:
                    old_plain = stored
                if region.tree is not None and region.version_of(index) > 0:
                    ok, cycles = self.integrity_core.verify(region.tree, index, old_plain)
                    ic_cycles += cycles
                    if not ok:
                        self._raise(txn, ViolationType.INTEGRITY_FAILURE,
                                    detail=f"stale/tampered block {index} detected during write")
                        self.firewall_interface.gate(False)
                        return FilterResult.deny(
                            reason=f"{self.name}: integrity failure on write",
                            latency=base_result.latency + cc_cycles + ic_cycles,
                            stage="integrity_core",
                            status=TransactionStatus.INTEGRITY_ERROR,
                        )

            # Patch the written bytes into the plaintext block.
            new_plain = bytearray(old_plain)
            overlap_start = max(txn.address, block_base)
            overlap_end = min(txn.end_address, block_end)
            src_offset = overlap_start - txn.address
            dst_offset = overlap_start - block_base
            length = overlap_end - overlap_start
            new_plain[dst_offset : dst_offset + length] = txn.data[src_offset : src_offset + length]

            # Advance the timestamp tag and re-protect the block.
            new_version = region.next_version(index)
            if policy.needs_ciphering:
                nonce = region.nonce(index, new_version)
                new_cipher, cycles = self.confidentiality_core.encipher(
                    region.key, nonce, bytes(new_plain)
                )
                cc_cycles += cycles
            else:
                new_cipher = bytes(new_plain)

            if region.tree is not None:
                ic_cycles += self.integrity_core.update(region.tree, index, bytes(new_plain))
            else:
                region.bump_version(index)

            # Write the parts of the block *outside* the transaction directly;
            # the part covered by the transaction is returned as transformed
            # payload so the memory device stores exactly the new ciphertext.
            self.device.poke(block_base, new_cipher[:usable])
            new_payload[src_offset : src_offset + length] = new_cipher[
                dst_offset : dst_offset + length
            ]

        txn.annotations[f"{self.name}.ciphered"] = policy.needs_ciphering
        txn.annotations[f"{self.name}.authenticated"] = policy.needs_integrity
        breakdown = {"security_builder": base_result.latency}
        if cc_cycles:
            breakdown["confidentiality_core"] = cc_cycles
        if ic_cycles:
            breakdown["integrity_core"] = ic_cycles
        return FilterResult.allow(
            latency=base_result.latency + cc_cycles + ic_cycles,
            stage="lcf_crypto",
            transformed_data=bytes(new_payload),
            breakdown=breakdown,
        )

    # -- protected read path -------------------------------------------------------------------

    def _handle_protected_read(
        self, txn: BusTransaction, region: ProtectedRegion, base_result: FilterResult
    ) -> FilterResult:
        policy = region.rule.policy
        cc_cycles = 0
        ic_cycles = 0
        plaintext_out = bytearray(txn.size)

        for index in region.blocks_overlapping(txn.address, txn.size):
            block_base = region.block_base(index)
            block_end = block_base + region.block_size
            usable = min(region.block_size, region.rule.end - block_base)
            stored = self.device.peek(block_base, usable).ljust(region.block_size, b"\x00")

            if policy.needs_ciphering and region.version_of(index) > 0:
                nonce = region.nonce(index, region.version_of(index))
                plain, cycles = self.confidentiality_core.decipher(region.key, nonce, stored)
                cc_cycles += cycles
            else:
                plain = stored

            if region.tree is not None:
                ok, cycles = self.integrity_core.verify(region.tree, index, plain)
                ic_cycles += cycles
                if not ok:
                    self._raise(txn, ViolationType.INTEGRITY_FAILURE,
                                detail=f"block {index} failed hash-tree verification on read")
                    self.firewall_interface.gate(False)
                    return FilterResult.deny(
                        reason=f"{self.name}: integrity failure on read",
                        latency=base_result.latency + cc_cycles + ic_cycles,
                        stage="integrity_core",
                        status=TransactionStatus.INTEGRITY_ERROR,
                    )

            overlap_start = max(txn.address, block_base)
            overlap_end = min(txn.end_address, block_end)
            src_offset = overlap_start - block_base
            dst_offset = overlap_start - txn.address
            length = overlap_end - overlap_start
            plaintext_out[dst_offset : dst_offset + length] = plain[src_offset : src_offset + length]

        breakdown = {}
        if base_result.latency:
            breakdown["security_builder"] = base_result.latency
        if cc_cycles:
            breakdown["confidentiality_core"] = cc_cycles
        if ic_cycles:
            breakdown["integrity_core"] = ic_cycles
        return FilterResult.allow(
            latency=base_result.latency + cc_cycles + ic_cycles,
            stage="lcf_crypto",
            transformed_data=bytes(plaintext_out),
            breakdown=breakdown or None,
        )

    # -- reporting -------------------------------------------------------------------------------

    def summary(self) -> dict:
        base = super().summary()
        base.update(
            {
                "cc_blocks": self.confidentiality_core.blocks_processed,
                "cc_cycles_charged": self.confidentiality_core.cycles_charged,
                "ic_blocks_verified": self.integrity_core.blocks_verified,
                "ic_blocks_updated": self.integrity_core.blocks_updated,
                "ic_failures": self.integrity_core.failures,
                "ic_cycles_charged": self.integrity_core.cycles_charged,
                "protected_regions": len(self._regions),
            }
        )
        return base
