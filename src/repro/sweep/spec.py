"""Declarative sweep grids: scenario × placement × seed × worker × engine axes.

A :class:`SweepSpec` names the axes of a grid sweep; :meth:`SweepSpec.plan`
expands it into concrete :class:`SweepPoint`\\ s, silently skipping only the
combinations the topology itself rules out (bridge placement on a flat bus)
and recording those skips so reports stay honest.  Each point has

* a human-readable, filterable **point id** (``scenario/placement=…/seed=…``),
* a content **key** — the SHA-256 of the point's parameters, the fully
  *resolved* :class:`~repro.scenarios.spec.ScenarioSpec` (so editing a
  scenario definition invalidates its cached results), the result schema
  version and the code fingerprint of the installed ``repro`` package.

Everything is plain data: specs and points pickle, which is what lets the
engine shard points across worker processes with
:func:`repro.attacks.runner.parallel_map`.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.api.experiment import RESULT_SCHEMA_VERSION, _jsonable
from repro.engine.spec import ENGINE_MODES, EngineSpec
from repro.scenarios.registry import list_scenarios
from repro.scenarios.spec import ScenarioSpec

__all__ = ["SweepSpec", "SweepPoint", "SweepPlan", "point_key", "spec_hash"]


#: How a point treats the scenario's attack mix.
ATTACK_MODES: Tuple[str, ...] = ("scenario", "none")


def _canonical_json(value: object) -> str:
    """Canonical serialization used by every hash in the sweep layer."""
    return json.dumps(_jsonable(value), sort_keys=True, separators=(",", ":"))


def spec_hash(spec: ScenarioSpec) -> str:
    """Content hash of one resolved scenario definition."""
    return hashlib.sha256(
        _canonical_json(dataclasses.asdict(spec)).encode()
    ).hexdigest()[:16]


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the expanded grid."""

    scenario: str
    placement: Optional[str]  # None = the scenario's own placement
    seed: int
    campaign_workers: int
    protected: bool
    workload_ops: Optional[int]  # None = the scenario's own workload size
    attack_mode: str  # "scenario" or "none"
    # None = the scenario's own engine.  Declared last so existing positional
    # constructions (and pickles) of the seven original fields stay valid.
    engine: Optional[str] = None

    @property
    def point_id(self) -> str:
        """Stable human-readable identity (the filter and report label)."""
        return (
            f"{self.scenario}"
            f"/placement={self.placement or 'default'}"
            f"/seed={self.seed}"
            f"/workers={self.campaign_workers}"
            f"/{'protected' if self.protected else 'unprotected'}"
            f"/attacks={self.attack_mode}"
            f"/ops={'default' if self.workload_ops is None else self.workload_ops}"
            f"/engine={self.engine or 'default'}"
        )

    def resolve_spec(self, base: ScenarioSpec) -> ScenarioSpec:
        """The scenario specification this point actually runs."""
        spec = base
        if self.placement is not None and self.placement != spec.placement:
            spec = dataclasses.replace(spec, placement=self.placement)
        if self.workload_ops is not None and spec.workload is not None:
            spec = dataclasses.replace(
                spec,
                workload=dataclasses.replace(spec.workload, n_operations=self.workload_ops),
            )
        if self.engine is not None and self.engine != spec.engine.mode:
            spec = dataclasses.replace(spec, engine=EngineSpec(mode=self.engine))
        return spec


def point_key(
    point: SweepPoint,
    resolved: ScenarioSpec,
    fingerprint: str,
    engine_fingerprint: Optional[str] = None,
) -> str:
    """Content-addressed store key of one point.

    Covers the point parameters, the fully resolved scenario definition, the
    result schema version and the code fingerprint — change any of them and
    the key (hence the cache entry) changes.  ``engine_fingerprint`` (the
    hash of ``repro/engine/``, excluded from the base ``fingerprint``) joins
    the payload only for points running a non-object engine: an engine-code
    edit therefore invalidates exactly the vector/auto cells, while the
    object-path cells — whose results engine code cannot influence — stay
    served from the store.
    """
    payload = {
        "point": dataclasses.asdict(point),
        "scenario_spec": dataclasses.asdict(resolved),
        "schema_version": RESULT_SCHEMA_VERSION,
        "fingerprint": fingerprint,
    }
    if engine_fingerprint is not None:
        payload["engine_fingerprint"] = engine_fingerprint
    return hashlib.sha256(_canonical_json(payload).encode()).hexdigest()


@dataclass(frozen=True)
class SweepPlan:
    """Expanded grid: the points to run, the combinations ruled out, and the
    base scenario specs already resolved during expansion (keyed by name, so
    the engine never re-resolves)."""

    points: Tuple[SweepPoint, ...]
    skipped: Tuple[Dict[str, str], ...]  # {"point_id": ..., "reason": ...}
    bases: Dict[str, ScenarioSpec] = dataclasses.field(default_factory=dict)


@dataclass(frozen=True)
class SweepSpec:
    """A grid sweep description (every field is an axis or a filter).

    Empty ``scenarios`` means every registered scenario.  ``placements``
    entries of ``None`` keep each scenario's own placement; explicit
    placements that a topology cannot support (bridge placement without
    bridges) are skipped with a recorded reason.  ``include`` / ``exclude``
    are ``fnmatch`` patterns matched against both the scenario name and the
    full point id (exclude wins).
    """

    scenarios: Tuple[str, ...] = ()
    placements: Tuple[Optional[str], ...] = (None,)
    seeds: Tuple[int, ...] = (0,)
    campaign_workers: Tuple[int, ...] = (1,)
    protected: Tuple[bool, ...] = (True,)
    workload_ops: Tuple[Optional[int], ...] = (None,)
    attack_modes: Tuple[str, ...] = ("scenario",)
    engines: Tuple[Optional[str], ...] = (None,)  # None = scenario's own engine
    include: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for mode in self.attack_modes:
            if mode not in ATTACK_MODES:
                raise ValueError(f"attack mode must be one of {ATTACK_MODES}, got {mode!r}")
        for engine in self.engines:
            if engine is not None and engine not in ENGINE_MODES:
                raise ValueError(
                    f"engine must be None or one of {ENGINE_MODES}, got {engine!r}"
                )
        # ``scenarios`` may legitimately be empty ("all registered").
        for axis in ("placements", "seeds", "campaign_workers",
                     "protected", "workload_ops", "attack_modes", "engines"):
            if not getattr(self, axis):
                raise ValueError(f"sweep axis {axis!r} must not be empty")

    def sweep_hash(self) -> str:
        """Content hash of the grid description itself (reports carry it)."""
        return hashlib.sha256(
            _canonical_json(dataclasses.asdict(self)).encode()
        ).hexdigest()[:16]

    def _selected(self, scenario: str, point_id: str) -> bool:
        subjects = (scenario, point_id)
        if self.include and not any(
            fnmatch.fnmatch(s, pattern) for pattern in self.include for s in subjects
        ):
            return False
        return not any(
            fnmatch.fnmatch(s, pattern) for pattern in self.exclude for s in subjects
        )

    def plan(
        self, resolver: Optional[Callable[[str], ScenarioSpec]] = None
    ) -> SweepPlan:
        """Expand the grid into concrete points.

        ``resolver`` maps a scenario name to its base
        :class:`ScenarioSpec` (defaults to the registry) and exists so tests
        and embedders can sweep unregistered or modified definitions.
        """
        from repro.scenarios.registry import get_scenario

        resolver = resolver or get_scenario
        names = self.scenarios or tuple(list_scenarios())
        points: List[SweepPoint] = []
        skipped: List[Dict[str, str]] = []
        seen_ids: Set[str] = set()
        bases: Dict[str, ScenarioSpec] = {}
        for name in names:
            base = bases.setdefault(name, resolver(name))
            for placement in self.placements:
                # An explicit placement equal to the scenario's own collapses
                # to the default point, so equivalent grid cells share one
                # cache key instead of recomputing identical results.
                norm_placement = None if placement == base.placement else placement
                for seed in self.seeds:
                    for workers in self.campaign_workers:
                        for prot in self.protected:
                            for ops in self.workload_ops:
                                norm_ops = ops
                                if (
                                    base.workload is not None
                                    and ops == base.workload.n_operations
                                ):
                                    norm_ops = None
                                for mode in self.attack_modes:
                                    for engine in self.engines:
                                        # Same collapse as placement: an
                                        # explicit engine equal to the
                                        # scenario's own shares the default
                                        # cell's cache key.
                                        norm_engine = (
                                            None if engine == base.engine.mode
                                            else engine
                                        )
                                        point = SweepPoint(
                                            scenario=name,
                                            placement=norm_placement,
                                            seed=seed,
                                            campaign_workers=workers,
                                            protected=prot,
                                            workload_ops=norm_ops,
                                            attack_mode=mode,
                                            engine=norm_engine,
                                        )
                                        if point.point_id in seen_ids:
                                            continue
                                        if not self._selected(name, point.point_id):
                                            continue
                                        if (
                                            norm_placement in ("bridge", "both")
                                            and not base.topology.bridges
                                        ):
                                            skipped.append({
                                                "point_id": point.point_id,
                                                "reason": f"placement {placement!r} needs bridges",
                                            })
                                            seen_ids.add(point.point_id)
                                            continue
                                        seen_ids.add(point.point_id)
                                        points.append(point)
        return SweepPlan(points=tuple(points), skipped=tuple(skipped), bases=bases)
