"""One-command regeneration of the paper's tables and figures from the store.

``python -m repro paper`` drives a canonical sweep through the
:class:`~repro.sweep.engine.SweepRunner` (cold store → every point computed;
warm store → everything served from cache) and renders the paper's artifacts
from the stored results:

==============================  =================================================
artifact                        reproduces
==============================  =================================================
``figure1_architecture.txt``    Figure 1, the evaluation platform topology
``table1_area.txt``             Table I (area model) + modelled area per scenario
``table2_latency.txt``          Table II, per-module firewall latency
``detection_matrix.txt``        the threat-model detection results
``per_hop_latency.txt``         hop-attributed transfer cycles (fabric scenarios)
``placement_split.txt``         leaf- vs bridge-firewall Security-Builder split
``index.json``                  machine-readable run summary (cache hit counts)
==============================  =================================================

``--fast`` sweeps a three-scenario subset that still exercises every artifact
(the CI docs job uploads that bundle); the full run covers the whole registry.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.compare import (
    render_area,
    render_detection,
    render_hop_latency,
    render_placement,
)
from repro.analysis.report import ArchitectureReport, render_table1, render_table2
from repro.metrics.area import generate_table1
from repro.metrics.latency import Table2Row
from repro.scenarios.registry import list_scenarios
from repro.sweep.engine import SweepReport, SweepRunner
from repro.sweep.spec import SweepSpec
from repro.sweep.store import ResultStore

__all__ = ["PaperReport", "paper_sweep_spec", "regenerate_paper", "PAPER_FAST_SCENARIOS"]


#: The ``--fast`` subset: smallest grid that still feeds every artifact
#: (paper_baseline carries Table II's LCF counters and the classic attack
#: battery; the two-segment scenario feeds the hop/placement tables).
PAPER_FAST_SCENARIOS = ("minimal_1x1", "paper_baseline", "two_segment_dma_isolation")

#: The scenario whose topology is the paper's Figure 1.
FIGURE1_SCENARIO = "paper_baseline"


def paper_sweep_spec(fast: bool = False) -> SweepSpec:
    """The canonical sweep behind ``repro paper``."""
    scenarios = PAPER_FAST_SCENARIOS if fast else tuple(list_scenarios())
    return SweepSpec(scenarios=scenarios)


@dataclass
class PaperReport:
    """Everything one ``repro paper`` invocation produced."""

    out_dir: str
    fast: bool
    sweep: SweepReport
    artifacts: Dict[str, str] = field(default_factory=dict)  # name -> path

    def to_dict(self) -> Dict[str, object]:
        return {
            "out_dir": self.out_dir,
            "fast": self.fast,
            "sweep": self.sweep.to_dict(),
            "artifacts": dict(self.artifacts),
        }


def _figure1_text() -> str:
    """Figure 1 regenerated from a freshly built (not simulated) platform."""
    from repro.api.experiment import Experiment

    built = Experiment.from_scenario(FIGURE1_SCENARIO).build()
    return ArchitectureReport(topology=built.system.describe_topology()).render()


def _table2_text(entries: List[Dict]) -> str:
    """Table II from the stored results (the live-counter averages)."""
    preferred = sorted(
        (e for e in entries if (e.get("result") or {}).get("latency", {}).get("table2")),
        key=lambda e: (e.get("scenario") != FIGURE1_SCENARIO, str(e.get("point_id"))),
    )
    if not preferred:
        return "Table II -- firewall module latency\n(no protected run with LCF counters in the store)"
    entry = preferred[0]
    rows = [Table2Row(**row) for row in entry["result"]["latency"]["table2"]]
    rendered = render_table2(rows)
    return f"{rendered}\n\nmeasured on: {entry['point_id']}"


def regenerate_paper(
    store_dir,
    out_dir,
    fast: bool = False,
    sweep_workers: int = 1,
) -> PaperReport:
    """Run (or reuse) the canonical sweep and write every paper artifact.

    Results come from the :class:`ResultStore` at ``store_dir``; a second
    invocation over the same store recomputes nothing (``sweep.computed`` is
    empty) and renders identical artifacts.
    """
    store = ResultStore(store_dir)
    spec = paper_sweep_spec(fast)
    report = SweepRunner(spec, store, sweep_workers=sweep_workers).run()

    entries = [
        {**store.get(key)}
        for key in report.keys.values()
        if store.get(key) is not None
    ]

    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paper = PaperReport(out_dir=str(out), fast=fast, sweep=report)

    def write(name: str, content: str) -> None:
        path = out / name
        path.write_text(content.rstrip() + "\n", encoding="utf-8")
        paper.artifacts[name] = str(path)

    write("figure1_architecture.txt", _figure1_text())
    write(
        "table1_area.txt",
        render_table1(generate_table1())
        + "\n\n"
        + render_area(entries, title="Modelled area per swept scenario"),
    )
    write("table2_latency.txt", _table2_text(entries))
    write("detection_matrix.txt", render_detection(entries))
    write("per_hop_latency.txt", render_hop_latency(entries))
    write("placement_split.txt", render_placement(entries))

    index_path = out / "index.json"
    paper.artifacts["index.json"] = str(index_path)
    index_path.write_text(
        json.dumps(paper.to_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return paper
