"""Content-addressed on-disk result store for sweep runs.

Layout of a store directory::

    store/
      results.jsonl   # append-only: one JSON line per stored ExperimentResult
      manifest.json   # derived index: key -> {point_id, scenario, fingerprint, seq}

``results.jsonl`` is the source of truth; ``manifest.json`` is a derived
index written by :meth:`ResultStore.flush_manifest` (the sweep engine calls
it once per run) and by garbage collection — opening a store reads only, so
pointing a read-only consumer (dry-run gc, report rendering) at a mistyped
path creates nothing on disk.  Every :meth:`ResultStore.put` appends one
line and flushes, so a killed sweep loses at most the line being written (a
trailing partial line is tolerated and ignored on load); rerunning the sweep
skips every completed key and appends only the missing points, which makes
the resumed store *identical* to an uninterrupted run — the property
:meth:`ResultStore.digest` exists to assert.  The digest
canonicalizes entries by zeroing the only nondeterministic fields an
:class:`~repro.api.experiment.ExperimentResult` carries (campaign wall-clock
timings), so two stores with the same digest hold the same results.

Keys come from :func:`repro.sweep.spec.point_key` and embed the **code
fingerprint** — a hash over every ``*.py`` file of the installed ``repro``
package except ``repro/engine/``, which is hashed separately as the
**engine fingerprint** and mixed in only for points that ran the vector
engine — so results computed by older code are never served as current,
while engine-only edits leave object-path cells warm.
Old-fingerprint entries stay on disk (they are the perf-trajectory history)
until ``repro sweep gc --keep-latest N`` rewrites the store.
"""

from __future__ import annotations

import copy
import functools
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "ResultStore",
    "GcReport",
    "code_fingerprint",
    "engine_fingerprint",
    "canonical_result",
]


#: Package subtree holding the vector execution engine.  Its code is excluded
#: from :func:`code_fingerprint` and hashed separately by
#: :func:`engine_fingerprint`: the engines are observationally identical by
#: contract, so engine-only edits must invalidate only the cells that *ran*
#: the vector engine (``point_key`` mixes the engine fingerprint in for
#: exactly those points).
ENGINE_SUBTREE = "engine"


def _tree_fingerprint(root: pathlib.Path, subtree: Optional[str] = None,
                      exclude: Optional[str] = None) -> str:
    """Hash the ``*.py`` files under ``root`` (relative paths + contents).

    ``subtree`` restricts the walk to one direct subdirectory; ``exclude``
    prunes one.  Paths are hashed relative to ``root`` either way, so the two
    halves recombine consistently.
    """
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root)
        top = relative.parts[0] if len(relative.parts) > 1 else None
        if subtree is not None and top != subtree:
            continue
        if exclude is not None and top == exclude:
            continue
        digest.update(relative.as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def _package_root() -> pathlib.Path:
    import repro

    return pathlib.Path(repro.__file__).parent


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every Python source file of the installed ``repro`` package,
    except the engine subtree (see :func:`engine_fingerprint`)."""
    return _tree_fingerprint(_package_root(), exclude=ENGINE_SUBTREE)


@functools.lru_cache(maxsize=1)
def engine_fingerprint() -> str:
    """Hash of the vector-engine subtree (``repro/engine/``) alone."""
    return _tree_fingerprint(_package_root(), subtree=ENGINE_SUBTREE)


def canonical_result(result: Dict[str, object]) -> Dict[str, object]:
    """A deep copy with the wall-clock campaign timings zeroed.

    Everything else in a result is deterministic for a fixed scenario and
    seed, so this is the form store digests and resume tests compare.
    """
    result = copy.deepcopy(result)
    campaign = result.get("campaign")
    if isinstance(campaign, dict):
        metrics = campaign.get("metrics")
        if isinstance(metrics, dict):
            metrics.pop("wall_seconds", None)
            for shard in metrics.get("shards", ()):
                if isinstance(shard, dict):
                    shard.pop("seconds", None)
    return result


@dataclass
class GcReport:
    """What one garbage-collection pass kept and dropped."""

    keep_latest: int
    applied: bool
    kept_fingerprints: List[str] = field(default_factory=list)
    dropped_fingerprints: List[str] = field(default_factory=list)
    dropped_points: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "keep_latest": self.keep_latest,
            "applied": self.applied,
            "kept_fingerprints": list(self.kept_fingerprints),
            "dropped_fingerprints": list(self.dropped_fingerprints),
            "dropped_points": list(self.dropped_points),
        }


class ResultStore:
    """Durable key → :class:`ExperimentResult`-payload store (see module doc)."""

    RESULTS_NAME = "results.jsonl"
    MANIFEST_NAME = "manifest.json"
    MANIFEST_VERSION = 1

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self._entries: Dict[str, Dict[str, object]] = {}
        self._next_seq = 0
        self._load()

    # -- paths ---------------------------------------------------------------------

    @property
    def results_path(self) -> pathlib.Path:
        return self.root / self.RESULTS_NAME

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.root / self.MANIFEST_NAME

    # -- loading -------------------------------------------------------------------

    def _load(self) -> None:
        """Read-only: a missing or mistyped path creates nothing on disk."""
        if self.results_path.exists():
            with self.results_path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        # A sweep killed mid-write leaves at most one partial
                        # trailing line; the point it was storing simply reruns.
                        continue
                    if isinstance(entry, dict) and "key" in entry:
                        self._entries[entry["key"]] = entry
        self._next_seq = (
            max((int(e.get("seq", -1)) for e in self._entries.values()), default=-1) + 1
        )

    def _manifest_text(self) -> str:
        manifest = {
            "version": self.MANIFEST_VERSION,
            "entries": {
                key: {
                    "point_id": entry.get("point_id"),
                    "scenario": entry.get("scenario"),
                    "fingerprint": entry.get("fingerprint"),
                    "seq": entry.get("seq"),
                }
                for key, entry in self._entries.items()
            },
        }
        return json.dumps(manifest, indent=2, sort_keys=True) + "\n"

    def flush_manifest(self) -> None:
        """Rewrite the derived index (once per sweep, not once per put)."""
        text = self._manifest_text()
        if self.manifest_path.exists():
            if self.manifest_path.read_text(encoding="utf-8") == text:
                return
        self.root.mkdir(parents=True, exist_ok=True)
        self.manifest_path.write_text(text, encoding="utf-8")

    # -- core API ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def has(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[Dict[str, object]]:
        return self._entries.get(key)

    def entries(self) -> List[Dict[str, object]]:
        """All entries, ordered by write sequence."""
        return sorted(self._entries.values(), key=lambda e: e.get("seq", 0))

    def put(
        self,
        key: str,
        point_id: str,
        scenario: str,
        fingerprint: str,
        result: Dict[str, object],
    ) -> None:
        """Append one result line (durable per call; manifest flushed later)."""
        entry = {
            "key": key,
            "point_id": point_id,
            "scenario": scenario,
            "fingerprint": fingerprint,
            "seq": self._next_seq,
            "result": result,
        }
        self._next_seq += 1
        self.root.mkdir(parents=True, exist_ok=True)
        with self.results_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
        self._entries[key] = entry

    def digest(self) -> str:
        """Content digest over canonicalized entries (order-independent)."""
        digest = hashlib.sha256()
        for key in sorted(self._entries):
            entry = self._entries[key]
            canonical = {
                "key": key,
                "point_id": entry.get("point_id"),
                "fingerprint": entry.get("fingerprint"),
                "result": canonical_result(entry.get("result") or {}),
            }
            digest.update(json.dumps(canonical, sort_keys=True).encode())
            digest.update(b"\n")
        return digest.hexdigest()

    # -- garbage collection --------------------------------------------------------

    def gc(self, keep_latest: int, apply: bool = False) -> GcReport:
        """Drop entries of all but the ``keep_latest`` most recent fingerprints.

        Fingerprint recency is the highest write sequence any of its entries
        carries.  The default is a dry run: nothing is touched until
        ``apply=True`` (the CLI's ``--apply``).
        """
        if keep_latest < 1:
            raise ValueError("keep_latest must be >= 1")
        latest_seq: Dict[str, int] = {}
        for entry in self._entries.values():
            fingerprint = str(entry.get("fingerprint"))
            latest_seq[fingerprint] = max(
                latest_seq.get(fingerprint, -1), int(entry.get("seq", 0))
            )
        ordered = sorted(latest_seq, key=lambda f: latest_seq[f], reverse=True)
        kept = ordered[:keep_latest]
        dropped = ordered[keep_latest:]
        report = GcReport(
            keep_latest=keep_latest,
            applied=apply,
            kept_fingerprints=kept,
            dropped_fingerprints=dropped,
            dropped_points=sorted(
                str(entry.get("point_id"))
                for entry in self._entries.values()
                if entry.get("fingerprint") in dropped
            ),
        )
        if not apply or not dropped:
            return report
        self._entries = {
            key: entry
            for key, entry in self._entries.items()
            if entry.get("fingerprint") in kept
        }
        # Atomic rewrite: a kill mid-gc must not truncate the kept entries.
        tmp_path = self.results_path.with_suffix(".jsonl.tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            for entry in self.entries():
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        os.replace(tmp_path, self.results_path)
        self.flush_manifest()
        return report
