"""Content-addressed on-disk result store for sweep runs.

Layout of a store directory::

    store/
      results.jsonl   # append-only: one JSON line per stored ExperimentResult
      manifest.json   # derived index: key -> {point_id, scenario, fingerprint, seq}

``results.jsonl`` is the source of truth; ``manifest.json`` is a derived
index written by :meth:`ResultStore.flush_manifest` (the sweep engine calls
it once per run) and by garbage collection — opening a store reads only, so
pointing a read-only consumer (dry-run gc, report rendering) at a mistyped
path creates nothing on disk.  Every :meth:`ResultStore.put` appends one
line and flushes, so a killed sweep loses at most the line being written (a
trailing partial line is tolerated and ignored on load); rerunning the sweep
skips every completed key and appends only the missing points, which makes
the resumed store *identical* to an uninterrupted run — the property
:meth:`ResultStore.digest` exists to assert.  The digest
canonicalizes entries by zeroing the only nondeterministic fields an
:class:`~repro.api.experiment.ExperimentResult` carries (campaign wall-clock
timings), so two stores with the same digest hold the same results.

The store is safe under **concurrent writers** (the ``repro serve`` daemon,
parallel sweeps on a shared disk, a client hammering the daemon's store
directly): every mutating operation — :meth:`ResultStore.put`,
:meth:`ResultStore.flush_manifest` and ``gc(apply=True)`` — holds an
``fcntl`` advisory lock on ``store/.lock`` and *re-reads lines appended by
other writers since the last load* before touching the file, so appends
never interleave mid-line, sequence numbers stay unique, and the atomic
manifest/gc rewrites can never drop a result a concurrent process just
stored.  Readers need no lock: appends are newline-terminated under the
lock, so a reader sees at worst a partial trailing line (ignored, re-read
on the next reload).  On platforms without ``fcntl`` the store degrades to
the historical single-writer behaviour.

Keys come from :func:`repro.sweep.spec.point_key` and embed the **code
fingerprint** — a hash over every ``*.py`` file of the installed ``repro``
package except ``repro/engine/``, which is hashed separately as the
**engine fingerprint** and mixed in only for points that ran the vector
engine — so results computed by older code are never served as current,
while engine-only edits leave object-path cells warm.
Old-fingerprint entries stay on disk (they are the perf-trajectory history)
until ``repro sweep gc --keep-latest N`` rewrites the store.
"""

from __future__ import annotations

import contextlib
import copy
import functools
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

try:  # advisory locking is POSIX-only; the store degrades gracefully without
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "ResultStore",
    "GcReport",
    "code_fingerprint",
    "engine_fingerprint",
    "canonical_result",
]


#: Package subtree holding the vector execution engine.  Its code is excluded
#: from :func:`code_fingerprint` and hashed separately by
#: :func:`engine_fingerprint`: the engines are observationally identical by
#: contract, so engine-only edits must invalidate only the cells that *ran*
#: the vector engine (``point_key`` mixes the engine fingerprint in for
#: exactly those points).
ENGINE_SUBTREE = "engine"


def _tree_fingerprint(root: pathlib.Path, subtree: Optional[str] = None,
                      exclude: Optional[str] = None) -> str:
    """Hash the ``*.py`` files under ``root`` (relative paths + contents).

    ``subtree`` restricts the walk to one direct subdirectory; ``exclude``
    prunes one.  Paths are hashed relative to ``root`` either way, so the two
    halves recombine consistently.
    """
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root)
        top = relative.parts[0] if len(relative.parts) > 1 else None
        if subtree is not None and top != subtree:
            continue
        if exclude is not None and top == exclude:
            continue
        digest.update(relative.as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def _package_root() -> pathlib.Path:
    import repro

    return pathlib.Path(repro.__file__).parent


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every Python source file of the installed ``repro`` package,
    except the engine subtree (see :func:`engine_fingerprint`)."""
    return _tree_fingerprint(_package_root(), exclude=ENGINE_SUBTREE)


@functools.lru_cache(maxsize=1)
def engine_fingerprint() -> str:
    """Hash of the vector-engine subtree (``repro/engine/``) alone."""
    return _tree_fingerprint(_package_root(), subtree=ENGINE_SUBTREE)


def canonical_result(result: Dict[str, object]) -> Dict[str, object]:
    """A deep copy with the wall-clock campaign timings zeroed.

    Everything else in a result is deterministic for a fixed scenario and
    seed, so this is the form store digests and resume tests compare.
    """
    result = copy.deepcopy(result)
    campaign = result.get("campaign")
    if isinstance(campaign, dict):
        metrics = campaign.get("metrics")
        if isinstance(metrics, dict):
            metrics.pop("wall_seconds", None)
            for shard in metrics.get("shards", ()):
                if isinstance(shard, dict):
                    shard.pop("seconds", None)
    return result


@dataclass
class GcReport:
    """What one garbage-collection pass kept and dropped."""

    keep_latest: int
    applied: bool
    kept_fingerprints: List[str] = field(default_factory=list)
    dropped_fingerprints: List[str] = field(default_factory=list)
    dropped_points: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "keep_latest": self.keep_latest,
            "applied": self.applied,
            "kept_fingerprints": list(self.kept_fingerprints),
            "dropped_fingerprints": list(self.dropped_fingerprints),
            "dropped_points": list(self.dropped_points),
        }


class ResultStore:
    """Durable key → :class:`ExperimentResult`-payload store (see module doc)."""

    RESULTS_NAME = "results.jsonl"
    MANIFEST_NAME = "manifest.json"
    LOCK_NAME = ".lock"
    MANIFEST_VERSION = 1

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self._entries: Dict[str, Dict[str, object]] = {}
        self._next_seq = 0
        self._lock_depth = 0
        #: Bytes of ``results.jsonl`` this handle has consumed (up to and
        #: including the last *complete* line); a reload under the writer
        #: lock resumes from here to pick up other writers' appends.
        self._tail_offset = 0
        self._load()

    # -- paths ---------------------------------------------------------------------

    @property
    def results_path(self) -> pathlib.Path:
        return self.root / self.RESULTS_NAME

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.root / self.MANIFEST_NAME

    @property
    def lock_path(self) -> pathlib.Path:
        return self.root / self.LOCK_NAME

    # -- locking -------------------------------------------------------------------

    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        """Hold the store's advisory writer lock (no-op without ``fcntl``).

        Mutators (:meth:`put`, :meth:`flush_manifest`, applied :meth:`gc`)
        serialize on a dedicated ``.lock`` file rather than on
        ``results.jsonl`` itself: gc atomically replaces the results file, and
        a lock held on the replaced inode would no longer exclude anybody.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        if self._lock_depth:
            # Reentrant within one handle (gc flushes the manifest while
            # holding the lock); two fds of one process would self-deadlock.
            self._lock_depth += 1
            try:
                yield
            finally:
                self._lock_depth -= 1
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with self.lock_path.open("a+") as lock_handle:
            fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
            self._lock_depth = 1
            try:
                yield
            finally:
                self._lock_depth = 0
                fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)

    # -- loading -------------------------------------------------------------------

    def _consume_line(self, raw: bytes) -> None:
        """Index one complete ``results.jsonl`` line (malformed lines skip)."""
        line = raw.strip()
        if not line:
            return
        try:
            entry = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            # A writer killed mid-write leaves at most one partial trailing
            # line; the point it was storing simply reruns.
            return
        if isinstance(entry, dict) and "key" in entry:
            self._entries[entry["key"]] = entry

    def _read_from(self, offset: int) -> None:
        """Consume complete lines from ``offset``; advance ``_tail_offset``.

        Reads in binary so the offset is an exact byte position; a partial
        trailing line (no newline yet — a concurrent writer mid-append, or a
        dead writer's torn line) is left unconsumed and re-read next time.
        """
        with self.results_path.open("rb") as handle:
            handle.seek(offset)
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break
                offset += len(raw)
                self._consume_line(raw)
        self._tail_offset = offset

    def _load(self) -> None:
        """Read-only: a missing or mistyped path creates nothing on disk."""
        if self.results_path.exists():
            self._read_from(0)
        self._bump_next_seq()

    def _bump_next_seq(self) -> None:
        self._next_seq = max(
            self._next_seq,
            max((int(e.get("seq", -1)) for e in self._entries.values()), default=-1) + 1,
        )

    def reload(self) -> None:
        """Pick up lines other writers appended since this handle last read.

        Called automatically (under the lock) by every mutator; also public
        so long-lived readers — the daemon's status endpoint, a dashboard —
        can refresh without reopening the store.
        """
        if self.results_path.exists():
            if self.results_path.stat().st_size < self._tail_offset:
                # The file shrank: another process ran gc(apply=True) and
                # atomically rewrote it.  Rebuild from scratch rather than
                # reading from a now-meaningless byte offset.
                self._entries.clear()
                self._read_from(0)
            else:
                self._read_from(self._tail_offset)
        self._bump_next_seq()

    def _manifest_text(self) -> str:
        manifest = {
            "version": self.MANIFEST_VERSION,
            "entries": {
                key: {
                    "point_id": entry.get("point_id"),
                    "scenario": entry.get("scenario"),
                    "fingerprint": entry.get("fingerprint"),
                    "seq": entry.get("seq"),
                }
                for key, entry in self._entries.items()
            },
        }
        return json.dumps(manifest, indent=2, sort_keys=True) + "\n"

    def flush_manifest(self) -> None:
        """Rewrite the derived index (once per sweep, not once per put).

        Holds the writer lock and reloads first, so the manifest written
        always indexes every result any concurrent writer has stored — the
        rewrite can never "lose" an append it raced with.
        """
        with self._locked():
            self.reload()
            text = self._manifest_text()
            if self.manifest_path.exists():
                if self.manifest_path.read_text(encoding="utf-8") == text:
                    return
            self.root.mkdir(parents=True, exist_ok=True)
            self.manifest_path.write_text(text, encoding="utf-8")

    # -- core API ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def has(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[Dict[str, object]]:
        return self._entries.get(key)

    def entries(self) -> List[Dict[str, object]]:
        """All entries, ordered by write sequence."""
        return sorted(self._entries.values(), key=lambda e: e.get("seq", 0))

    def put(
        self,
        key: str,
        point_id: str,
        scenario: str,
        fingerprint: str,
        result: Dict[str, object],
    ) -> None:
        """Append one result line (durable per call; manifest flushed later).

        Cross-process safe: the append happens under the advisory writer
        lock, after re-reading anything other writers stored since this
        handle last looked — so concurrent ``put`` calls never interleave
        mid-line and sequence numbers stay unique.  Per-key semantics stay
        last-write-wins; keys are content-addressed, so two writers racing
        on one key are storing the same canonical result anyway.
        """
        with self._locked():
            self.reload()
            entry = {
                "key": key,
                "point_id": point_id,
                "scenario": scenario,
                "fingerprint": fingerprint,
                "seq": self._next_seq,
                "result": result,
            }
            self._next_seq += 1
            self.root.mkdir(parents=True, exist_ok=True)
            with self.results_path.open("ab") as handle:
                payload = b""
                if self._tail_offset < handle.seek(0, os.SEEK_END):
                    # A dead writer left a torn, never-terminated line (the
                    # unconsumed tail).  Terminate it so our entry starts on
                    # a fresh line instead of corrupting both.
                    payload = b"\n"
                payload += json.dumps(entry, sort_keys=True).encode("utf-8") + b"\n"
                handle.write(payload)
                handle.flush()
                self._tail_offset = handle.tell()
            self._entries[key] = entry

    def digest(self) -> str:
        """Content digest over canonicalized entries (order-independent)."""
        digest = hashlib.sha256()
        for key in sorted(self._entries):
            entry = self._entries[key]
            canonical = {
                "key": key,
                "point_id": entry.get("point_id"),
                "fingerprint": entry.get("fingerprint"),
                "result": canonical_result(entry.get("result") or {}),
            }
            digest.update(json.dumps(canonical, sort_keys=True).encode())
            digest.update(b"\n")
        return digest.hexdigest()

    # -- garbage collection --------------------------------------------------------

    def gc(self, keep_latest: int, apply: bool = False) -> GcReport:
        """Drop entries of all but the ``keep_latest`` most recent fingerprints.

        Fingerprint recency is the highest write sequence any of its entries
        carries.  The default is a dry run: nothing is touched until
        ``apply=True`` (the CLI's ``--apply``); the applied rewrite holds
        the writer lock and reloads first, so an append racing the gc is
        either kept (current fingerprint) or consciously dropped (old
        fingerprint) — never lost by the atomic rewrite.
        """
        if keep_latest < 1:
            raise ValueError("keep_latest must be >= 1")
        if apply:
            with self._locked():
                self.reload()
                return self._gc_inner(keep_latest, apply=True)
        return self._gc_inner(keep_latest, apply=False)

    def _gc_inner(self, keep_latest: int, apply: bool) -> GcReport:
        latest_seq: Dict[str, int] = {}
        for entry in self._entries.values():
            fingerprint = str(entry.get("fingerprint"))
            latest_seq[fingerprint] = max(
                latest_seq.get(fingerprint, -1), int(entry.get("seq", 0))
            )
        ordered = sorted(latest_seq, key=lambda f: latest_seq[f], reverse=True)
        kept = ordered[:keep_latest]
        dropped = ordered[keep_latest:]
        report = GcReport(
            keep_latest=keep_latest,
            applied=apply,
            kept_fingerprints=kept,
            dropped_fingerprints=dropped,
            dropped_points=sorted(
                str(entry.get("point_id"))
                for entry in self._entries.values()
                if entry.get("fingerprint") in dropped
            ),
        )
        if not apply or not dropped:
            return report
        self._entries = {
            key: entry
            for key, entry in self._entries.items()
            if entry.get("fingerprint") in kept
        }
        # Atomic rewrite: a kill mid-gc must not truncate the kept entries.
        tmp_path = self.results_path.with_suffix(".jsonl.tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            for entry in self.entries():
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        os.replace(tmp_path, self.results_path)
        self._tail_offset = self.results_path.stat().st_size
        self.flush_manifest()
        return report
