"""Grid sweeps over the scenario registry with a persistent result store.

The paper is ultimately an evaluation artifact — latency and area tables,
detection matrices — and regenerating those numbers should never mean
hand-running individual benchmarks.  This package turns "run the grid" into
infrastructure on top of the :class:`repro.api.Experiment` façade:

* :mod:`repro.sweep.spec` — :class:`SweepSpec`, a declarative grid over
  scenario × placement × seed × campaign-worker × workload/attack axes with
  include/exclude filters; it expands to :class:`SweepPoint`\\ s, each with a
  stable identity and a content hash covering the *resolved* scenario
  definition,
* :mod:`repro.sweep.store` — :class:`ResultStore`, a content-addressed
  on-disk store (append-only JSONL plus a manifest) keyed by point hash and
  code fingerprint, so interrupted sweeps resume instead of recomputing and
  stale results are invalidated when the code or a scenario definition
  changes,
* :mod:`repro.sweep.engine` — :class:`SweepRunner`, which executes only the
  missing points (serially, or sharded across processes with the same
  deterministic machinery as :func:`repro.attacks.runner.parallel_map`) and
  reports computed/cached/skipped point sets,
* :mod:`repro.sweep.paper` — one-command regeneration of every paper
  table/figure from the store (``python -m repro paper``), rendered through
  :mod:`repro.analysis.report` and :mod:`repro.analysis.compare`.

The CLI surface is ``python -m repro sweep run`` / ``sweep gc`` /
``paper``; see ``docs/reproducing-the-paper.md`` for the table-by-table map.
"""

from repro.sweep.spec import SweepPoint, SweepSpec, point_key, spec_hash
from repro.sweep.store import ResultStore, code_fingerprint, engine_fingerprint
from repro.sweep.engine import SweepReport, SweepRunner
from repro.sweep.paper import PaperReport, paper_sweep_spec, regenerate_paper

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "point_key",
    "spec_hash",
    "ResultStore",
    "code_fingerprint",
    "engine_fingerprint",
    "SweepReport",
    "SweepRunner",
    "PaperReport",
    "paper_sweep_spec",
    "regenerate_paper",
]
