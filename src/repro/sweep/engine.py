"""Sweep execution: run the missing points, serve the rest from the store.

:class:`SweepRunner` expands a :class:`~repro.sweep.spec.SweepSpec`, computes
each point's content key, and executes **only** the points the
:class:`~repro.sweep.store.ResultStore` does not already hold — an
interrupted sweep rerun from the same spec therefore resumes exactly where it
stopped, and a second invocation over a warm store computes nothing at all
(the :class:`SweepReport` says which was which).

Execution is serial by default (each point's attack campaign may itself shard
across processes via ``campaign_workers``).  ``sweep_workers > 1`` instead
shards the *points* across worker processes with
:func:`repro.attacks.runner.parallel_map` — the same deterministic
round-robin machinery the campaign runner uses — which requires every point's
own campaign to stay in-process (``multiprocessing`` workers are daemonic and
cannot spawn a nested pool).  Durability granularity differs by mode: the
serial path stores each point as it completes (a kill loses at most the
point in flight), while the sharded path stores one *batch* of
``sweep_workers`` points at a time (a kill loses at most the current batch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.api.experiment import Experiment
from repro.attacks import runner as _runner
from repro.attacks.runner import parallel_map
from repro.scenarios.spec import ScenarioSpec
from repro.staticcheck.gate import enforce
from repro.sweep.spec import SweepPoint, SweepSpec, point_key
from repro.sweep.store import ResultStore, code_fingerprint, engine_fingerprint

__all__ = ["SweepRunner", "SweepReport", "SweepJob"]

#: One store-missing grid cell ready to execute: ``(point, resolved scenario
#: spec, store key)``.  :meth:`SweepRunner.classify` returns these; the
#: ``repro serve`` daemon schedules them onto its persistent pool (with
#: in-flight dedup on the key) instead of calling :meth:`SweepRunner.run`.
SweepJob = Tuple[SweepPoint, ScenarioSpec, str]


def _execute_point(job: Tuple[SweepPoint, ScenarioSpec]) -> Dict[str, object]:
    """Run one grid point through the Experiment façade (picklable job)."""
    point, resolved = job
    experiment = (
        Experiment.from_spec(resolved)
        .protected(point.protected)
        .with_seed(point.seed)
        .campaign(point.campaign_workers)
    )
    if point.attack_mode == "none":
        experiment.no_attacks()
    return experiment.run().to_dict()


@dataclass
class SweepReport:
    """Outcome of one :meth:`SweepRunner.run` call."""

    sweep_hash: str
    fingerprint: str
    computed: List[str] = field(default_factory=list)  # point ids
    cached: List[str] = field(default_factory=list)
    skipped: List[Dict[str, str]] = field(default_factory=list)
    keys: Dict[str, str] = field(default_factory=dict)  # point id -> store key
    store_digest: str = ""

    @property
    def total(self) -> int:
        return len(self.computed) + len(self.cached)

    def to_dict(self) -> Dict[str, object]:
        return {
            "sweep_hash": self.sweep_hash,
            "fingerprint": self.fingerprint,
            "computed": list(self.computed),
            "cached": list(self.cached),
            "skipped": list(self.skipped),
            "keys": dict(self.keys),
            "store_digest": self.store_digest,
            "total": self.total,
        }


class SweepRunner:
    """Execute a sweep grid against a persistent result store.

    Parameters
    ----------
    spec:
        The grid to run.
    store:
        Where results live across invocations.
    resolver:
        Optional ``name -> ScenarioSpec`` override (defaults to the scenario
        registry); tests use it to sweep modified definitions and assert the
        spec-hash invalidation.
    fingerprint:
        Code fingerprint baked into every key; defaults to
        :func:`repro.sweep.store.code_fingerprint` (which excludes the
        engine subtree).
    engine_fp:
        Fingerprint of ``repro/engine/`` mixed into the keys of points whose
        resolved spec runs a non-object engine; defaults to
        :func:`repro.sweep.store.engine_fingerprint`.  Editing engine code
        therefore invalidates exactly the vector/auto cells.
    sweep_workers:
        ``1`` (default) runs points serially in-process; ``>1`` shards the
        missing points across processes (every point's ``campaign_workers``
        must then be 1).  Inside a daemonic worker process the sharded path
        degrades to serial execution with a once-per-process warning
        instead of crashing on the nested-pool limitation.
    point_hook:
        Called with each :class:`SweepPoint` immediately before it executes;
        exceptions propagate after everything already computed was stored —
        which is how the tests simulate a mid-sweep kill.
    """

    def __init__(
        self,
        spec: SweepSpec,
        store: ResultStore,
        *,
        resolver: Optional[Callable[[str], ScenarioSpec]] = None,
        fingerprint: Optional[str] = None,
        engine_fp: Optional[str] = None,
        sweep_workers: int = 1,
        point_hook: Optional[Callable[[SweepPoint], None]] = None,
    ) -> None:
        if sweep_workers < 1:
            raise ValueError("sweep_workers must be >= 1")
        self.spec = spec
        self.store = store
        self.resolver = resolver
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        self.engine_fp = engine_fp if engine_fp is not None else engine_fingerprint()
        self.sweep_workers = sweep_workers
        self.point_hook = point_hook

    def classify(self) -> Tuple[SweepReport, List[SweepJob]]:
        """Expand the grid and split it against the store, without executing.

        Returns the report skeleton (cached/skipped points and every point's
        store key already filled in) plus the missing points as
        :data:`SweepJob`\\ s.  :meth:`run` executes the jobs here; the
        service daemon instead schedules them itself so it can dedupe
        in-flight keys across concurrent submissions.
        """
        plan = self.spec.plan(self.resolver)
        report = SweepReport(
            sweep_hash=self.spec.sweep_hash(),
            fingerprint=self.fingerprint,
            skipped=[dict(s) for s in plan.skipped],
        )

        jobs: List[SweepJob] = []
        for point in plan.points:
            resolved = point.resolve_spec(plan.bases[point.scenario])
            # Fail-fast static verification (no-op unless the gate is on):
            # a grid cell whose resolved spec claims an unenforceable
            # protection dies here, before it burns a store slot.
            enforce(resolved, where=f"sweep point {point.point_id}")
            key = point_key(
                point,
                resolved,
                self.fingerprint,
                # Object-path results cannot depend on engine code; only
                # cells that actually run the vector/auto path key on it.
                self.engine_fp if resolved.engine.mode != "object" else None,
            )
            report.keys[point.point_id] = key
            if self.store.has(key):
                report.cached.append(point.point_id)
            else:
                jobs.append((point, resolved, key))
        return report, jobs

    def run(self) -> SweepReport:
        report, jobs = self.classify()
        try:
            if self.sweep_workers > 1:
                self._run_sharded(jobs, report)
            else:
                self._run_serial(jobs, report)
        finally:
            # results.jsonl is the source of truth; the manifest is a derived
            # index rewritten once per sweep (even an interrupted one).
            self.store.flush_manifest()

        report.store_digest = self.store.digest()
        return report

    # -- execution paths -----------------------------------------------------------

    def _run_serial(self, jobs, report: SweepReport) -> None:
        for point, resolved, key in jobs:
            if self.point_hook is not None:
                self.point_hook(point)
            result = _execute_point((point, resolved))
            self.store.put(key, point.point_id, point.scenario, self.fingerprint, result)
            report.computed.append(point.point_id)

    def _run_sharded(self, jobs, report: SweepReport) -> None:
        if _runner.in_worker_process():
            # Invoked from inside a daemonic pool worker (a daemon worker
            # running a sharded campaign, a nested sweep in a test harness):
            # spawning a nested pool would crash, so degrade to the serial
            # per-point path — identical results, per-point durability.
            from repro._deprecation import warn_once

            warn_once(
                "sweep-runner-nested-pool",
                "SweepRunner(sweep_workers > 1) invoked inside a worker "
                "process cannot spawn a nested pool; degrading to serial "
                "per-point execution (results are identical)",
                category=RuntimeWarning,
            )
            self._run_serial(jobs, report)
            return
        offenders = [p.point_id for p, _, _ in jobs if p.campaign_workers > 1]
        if offenders:
            raise ValueError(
                "sweep_workers > 1 requires campaign_workers == 1 on every point "
                "(worker processes cannot spawn nested pools); offending points: "
                + ", ".join(offenders)
            )
        # One batch of sweep_workers points at a time, stored after each
        # batch: a kill loses at most the batch in flight, so long sweeps
        # stay resumable (results are unaffected — points are independent).
        for start in range(0, len(jobs), self.sweep_workers):
            batch = jobs[start:start + self.sweep_workers]
            for point, _, _ in batch:
                if self.point_hook is not None:
                    self.point_hook(point)
            results = parallel_map(
                _execute_point,
                [(point, resolved) for point, resolved, _ in batch],
                n_workers=len(batch),
            )
            for (point, _, key), result in zip(batch, results):
                self.store.put(key, point.point_id, point.scenario, self.fingerprint, result)
                report.computed.append(point.point_id)
