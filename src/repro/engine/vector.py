"""The vector execution engine: batch drain of a workload's calendar.

The object path executes a workload as ~7 kernel events per transaction, each
a generic ``Event`` dispatch into port/bus/filter code.  The vector engine
replaces :meth:`Simulator.run` for the workload phase with a specialised loop
over *opcodes*: it lowers every processor program into parallel arrays
(:mod:`repro.engine.batch`), pre-resolves address decode for every unique
shape, front-ends every filter chain with a profile/replay table
(:mod:`repro.engine.tables`), and drains the whole stream through a mirrored
calendar heap whose entries are plain tuples keyed by a single
``time·2⁴⁴ + sequence`` integer instead of Event objects.

**The identity contract.**  The engine is a 1:1 event mirror, not an
approximation: each heap pop corresponds to exactly one object-path kernel
event, at the same cycle, with the same sequence number, performing the same
state transitions on the *real* platform objects (transactions, devices,
monitors, arbiters, firewalls).  Anything shape-independent is replayed from
tables; anything data-, time- or state-dependent — alerts, denials,
reconfiguration, ciphering, flood trips, centralized SEM queueing — runs
the real code at the right simulated time.  The differential harness
(:mod:`repro.scenarios.differential`) holds the two engines to byte-identical
fingerprints on every registered scenario.

**Hierarchical fabrics** run natively: the decode prepass resolves every
unique (address, size) shape through the fabric router once
(:func:`repro.engine.batch.fabric_route_prepass`), then the drain loop
mirrors per-segment arbitration, bridge forward latency, the bounded
posted-write buffer (with non-posted fallback and failure statistics) and
bridge-placed filter chains — the latter through the same
:class:`~repro.engine.tables.ChainTable` profile/replay front-end as the leaf
chains.  Multi-hop reply paths are modelled as nested continuation tuples, so
an event that completes on a far segment unwinds through each bridge and
segment release exactly as the object path's nested callbacks would.

**Instrumented runs** with counting-only sinks (:class:`~repro.api.events.
StatsSink`) also run natively: per-transaction event counts (``txn.*``,
``bus.granted``, replayed ``firewall.decision``\\ s, the run's ``sim.run``)
are settled in bulk at batch flush through :meth:`~repro.api.events.EventBus.
count_n`, while data-dependent events (containment, posted failures, alerts,
reconfigurations) are emitted live by the mirrored loop or the real code it
calls, at the exact cycle the object path would emit them.

**Fallback triggers.**  The engine declines (and the caller runs the object
path, observationally identical) when the platform is outside its mirrored
subset: an instrumentation event bus with payload-recording sinks (JSONL
trace, in-memory event streams), processor completion hooks, custom
interconnect/port/processor subclasses, split-transaction device slaves, or
a workload whose operations would fail transaction validation.
Per-transaction fallbacks (a shape that denies, transforms data or needs
ciphering) stay *inside* the engine as real chain calls — only
platform-level features force the object path.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.engine.batch import (
    BatchError,
    build_batch,
    decode_prepass,
    fabric_route_prepass,
)
from repro.engine.spec import EngineReport
from repro.engine.tables import ChainTable
from repro.soc.fabric.bridge import BridgeEndpoint, BusBridge
from repro.soc.fabric.fabric import InterconnectFabric
from repro.soc.fabric.segment import BusSegment
from repro.soc.ports import MasterPort, SlavePort
from repro.soc.processor import Processor
from repro.soc.system import SoCSystem
from repro.soc.transaction import BusTransaction, TransactionStatus

__all__ = ["EngineError", "eligibility", "drive_workload"]


class EngineError(RuntimeError):
    """Internal invariant violation in the vector engine (a mirroring bug —
    never a property of the scenario)."""


_EXECUTE_NEXT = Processor._execute_next
_NEW = BusTransaction.__new__

# Heap keys pack (time, sequence) into one integer so every heap comparison
# is a single int compare (sequences are unique, so ties cannot occur).
_SEQ_BITS = 44

# Opcodes of the mirrored calendar.  Each heap entry is
# ``(key, opcode, a, b)`` with ``key = time << _SEQ_BITS | sequence``.
_EXEC = 0         # processor _execute_next (start or post-compute)
_SUBMIT = 1       # bus.submit
_DELIVER = 2      # slave_port.deliver
_ACCESS = 3       # slave_port._access_device
_SRESP = 4        # slave_port._run_response_filters
_RELEASE = 5      # bus reply -> _on_slave_reply (completed path)
_SBLOCK = 6       # slave_port._reply_blocked (incl. release + master reply)
_MBLOCK = 7       # master_port._finish_blocked
_MFIN = 8         # master_port._finish_completed
_DECODE_ERR = 9   # bus._finish_decode_error
_ALIEN = 10       # any other scheduled callback (reconfiguration closures)


class _PState:
    """Per-processor engine state: the batch's parallel arrays (bound
    directly for one-hop access in the hot loop) plus deferred statistics for
    the processor and its (1:1) master port."""

    __slots__ = (
        "proc", "port", "batch", "master", "pc", "n", "mreq", "mresp",
        "kinds", "operations", "addresses", "widths", "bursts", "datas",
        "computes", "transfers", "threads", "targets", "transactions",
        "home",
        "issued", "p_blocked_requests", "p_blocked_responses",
        "p_completed", "p_terminated",
        "compute_ops", "compute_cycles", "memory_ops",
        "completed_accesses", "blocked_accesses", "access_cycles",
    )

    def __init__(self, proc: Processor, batch) -> None:
        self.proc = proc
        self.port = proc.port
        self.batch = batch
        self.home: Optional["_SegState"] = None  # fabric runs only
        self.master = batch.master
        self.pc = 0
        self.n = len(batch)
        self.mreq = ChainTable(proc.port.filters, "request")
        self.mresp = ChainTable(proc.port.filters, "response")
        self.kinds = batch.kinds
        self.operations = batch.operations
        self.addresses = batch.addresses
        self.widths = batch.widths
        self.bursts = batch.bursts
        self.datas = batch.datas
        self.computes = batch.computes
        self.transfers = batch.transfer_cycles
        self.threads = batch.thread_ids
        self.targets: List[Optional["_SState"]] = []
        self.transactions = proc.transactions
        self.issued = 0
        self.p_blocked_requests = 0
        self.p_blocked_responses = 0
        self.p_completed = 0
        self.p_terminated = 0
        self.compute_ops = 0
        self.compute_cycles = 0
        self.memory_ops = 0
        self.completed_accesses = 0
        self.blocked_accesses = 0
        self.access_cycles = 0


class _SState:
    """Per-slave-port engine state: chain tables plus deferred statistics."""

    __slots__ = ("port", "device", "access", "device_name", "slave_name",
                 "req", "resp", "delivered", "blocked_requests",
                 "blocked_responses")

    def __init__(self, slave_name: str, port: SlavePort) -> None:
        self.port = port
        self.device = port.device
        self.access = port.device.access
        self.device_name = port.device.name
        self.slave_name = slave_name
        self.req = ChainTable(port.filters, "request")
        self.resp = ChainTable(port.filters, "response")
        self.delivered = 0
        self.blocked_requests = 0
        self.blocked_responses = 0


class _BridgeHop:
    """Route-table entry for a shape that leaves its segment via a bridge."""

    __slots__ = ("bs", "side", "slave_key")

    def __init__(self, bs: "_BridgeState", side: str, slave_key: str) -> None:
        self.bs = bs
        self.side = side
        self.slave_key = slave_key  # "bridge:<name>" (the monitor's slave key)


class _SegState:
    """Per-segment engine state: mirror-local arbitration (busy flag, pending
    count), the segment's route table, its device slave states, and deferred
    statistics (stats counters + monitor per-master/per-slave counts)."""

    __slots__ = (
        "seg", "name", "stage", "ap", "dp", "waiting", "select", "add_master",
        "history_append", "busy", "pending", "route", "sstates",
        "submitted", "granted", "granted_ok", "completed", "decode_errors",
        "mon_master", "mon_slave",
    )

    def __init__(self, seg: BusSegment) -> None:
        self.seg = seg
        self.name = seg.name
        self.stage = seg.latency_stage
        self.ap = seg.address_phase_cycles
        self.dp = seg.data_phase_cycles_per_beat
        self.waiting = seg._waiting
        self.select = seg.arbiter.select
        self.add_master = seg.arbiter.add_master
        self.history_append = seg.monitor.history.append
        self.busy = False
        self.pending = 0
        # (address, size) -> _SState | _BridgeHop | None (decode error).
        self.route: Dict[Tuple[int, int], object] = {}
        self.sstates = {
            name: _SState(name, port)
            for name, port in seg._slave_ports.items()
            if type(port) is SlavePort
        }
        self.submitted = 0
        self.granted = 0
        self.granted_ok = 0
        self.completed = 0
        self.decode_errors = 0
        self.mon_master: Dict[str, int] = {}
        self.mon_slave: Dict[str, int] = {}


class _BridgeState:
    """Per-bridge engine state: chain tables over the bridge's filter chain,
    the mirrored forwarding FIFO (posted clones + ordered followers), and
    deferred statistics for every counter the object path bumps."""

    __slots__ = (
        "bridge", "name", "stage", "fwd", "posted", "depth", "req", "resp",
        "buffer", "draining", "posted_pending", "target",
        "ingress_a", "ingress_b", "blocked_requests", "blocked_responses",
        "posted_writes", "posted_stalls", "ordered_behind_posted",
        "forwarded", "posted_completed", "posted_write_failures",
    )

    def __init__(self, bridge: BusBridge, segstates: Dict[str, "_SegState"]) -> None:
        self.bridge = bridge
        self.name = bridge.name
        self.stage = f"bridge:{bridge.name}"
        self.fwd = bridge.forward_latency
        self.posted = bridge.posted_writes
        self.depth = bridge.buffer_depth
        self.req = ChainTable(bridge.filters, "request")
        self.resp = ChainTable(bridge.filters, "response")
        # Mirror of BusBridge._buffer: ("posted", clone, target _SegState) or
        # ("ordered", txn, continuation, target _SegState).
        self.buffer: deque = deque()
        self.draining = False
        self.posted_pending = 0
        self.target = {
            "a": segstates[bridge.b_segment.name],
            "b": segstates[bridge.a_segment.name],
        }
        self.ingress_a = 0
        self.ingress_b = 0
        self.blocked_requests = 0
        self.blocked_responses = 0
        self.posted_writes = 0
        self.posted_stalls = 0
        self.ordered_behind_posted = 0
        self.forwarded = 0
        self.posted_completed = 0
        self.posted_write_failures = 0


def eligibility(system: SoCSystem) -> Optional[str]:
    """Why this platform cannot run under the vector engine (None = it can).

    These are *run-level* fallback triggers; per-transaction concerns
    (alerts, ciphering, floods) are handled inside the engine by real calls.
    """
    bus = system.bus
    if isinstance(bus, BusSegment):
        if type(bus).submit is not BusSegment.submit or (
            type(bus)._try_grant is not BusSegment._try_grant
        ):
            return f"custom interconnect {type(bus).__name__} overrides arbitration"
        reason = _event_bus_reason(system)
        if reason is not None:
            return reason
        reason = _segment_ports_reason(bus, bridges_allowed=False)
        if reason is not None:
            return reason
        return _processors_reason(system)
    if type(bus) is InterconnectFabric:
        reason = _event_bus_reason(system)
        if reason is not None:
            return reason
        segments = bus.segments
        for seg_name, seg in segments.items():
            if type(seg) is not BusSegment:
                return f"custom segment {type(seg).__name__} ({seg_name})"
            reason = _segment_ports_reason(seg, bridges_allowed=True)
            if reason is not None:
                return reason
        for name, bridge in bus.bridges.items():
            if type(bridge) is not BusBridge:
                return f"custom bridge {type(bridge).__name__} ({name})"
        reason = _processors_reason(system)
        if reason is not None:
            return reason
        for proc in system.processors.values():
            if proc.port.bus is not segments.get(
                getattr(proc.port.bus, "name", None)
            ):
                return f"master {proc.name} attached outside the fabric's segments"
        return None
    return _describe_fabric_fallback(system)


def _event_bus_reason(system: SoCSystem) -> Optional[str]:
    """Counting-only buses run natively (counts settle at batch flush);
    payload-recording sinks need the per-event emission order of the object
    path."""
    event_bus = system.sim.event_bus
    if event_bus is not None and not getattr(event_bus, "count_only", False):
        return "instrumentation event bus with payload sinks attached"
    return None


def _segment_ports_reason(seg: BusSegment, bridges_allowed: bool) -> Optional[str]:
    for name, port in seg._slave_ports.items():
        if type(port) is BridgeEndpoint:
            if bridges_allowed:
                continue
            return f"slave endpoint {name} uses split transactions"
        if type(port) is not SlavePort:
            return f"custom slave port {type(port).__name__} on {name}"
        if getattr(port, "split_transactions", False):
            return f"slave endpoint {name} uses split transactions"
    return None


def _processors_reason(system: SoCSystem) -> Optional[str]:
    for proc in system.processors.values():
        if type(proc) is not Processor:
            return f"custom processor {type(proc).__name__}"
        if proc.on_finished is not None:
            return f"processor {proc.name} has a completion hook"
        if type(proc.port) is not MasterPort:
            return f"custom master port {type(proc.port).__name__}"
    return None


def _describe_fabric_fallback(system: SoCSystem) -> str:
    """Fallback reason for interconnects outside the mirrored subset (custom
    fabric/bus subclasses).  Plain BusSegment and InterconnectFabric platforms
    never reach here — both run natively — so this stays a cheap type
    description instead of the route-resolution census it once computed."""
    return (
        f"custom interconnect {type(system.bus).__name__} "
        "(not a plain BusSegment or InterconnectFabric)"
    )


def drive_workload(
    system: SoCSystem, requested: str = "vector"
) -> Tuple[Optional[int], EngineReport]:
    """Drain the started workload under the vector engine.

    Call *after* workload load / reconfiguration arming / ``start_all`` — the
    engine takes ownership of the pending calendar.  Returns
    ``(final_cycle, report)``; ``final_cycle`` is None when the engine
    declined, in which case nothing was touched and the caller must run the
    object path (``system.run()``).
    """
    reason = eligibility(system)
    if reason is not None:
        return None, EngineReport(requested=requested, used="object",
                                  fallback_reason=reason)

    bus = system.bus
    pstates: Dict[Processor, _PState] = {}
    try:
        for proc in system.processors.values():
            # proc.port.bus is the home segment in a fabric, the bus itself on
            # a flat platform; either way it carries the phase cycles the
            # object path's home-segment grant would charge.
            home = proc.port.bus
            batch = build_batch(
                proc, home.address_phase_cycles, home.data_phase_cycles_per_beat
            )
            pstates[proc] = _PState(proc, batch)
    except BatchError as exc:
        return None, EngineReport(
            requested=requested, used="object",
            fallback_reason=f"workload fails transaction validation ({exc})",
        )

    if type(bus) is InterconnectFabric:
        return _drive_fabric(system, bus, pstates, requested)

    sstates = {
        name: _SState(name, port) for name, port in bus._slave_ports.items()
    }
    shape_slaves = decode_prepass(
        bus.address_map, [ps.batch for ps in pstates.values()]
    )
    route: Dict[Tuple[int, int], Optional[_SState]] = {
        shape: (sstates.get(slave) if slave is not None else None)
        for shape, slave in shape_slaves.items()
    }
    # Per-row target slave: array indexing in the hot loop instead of a
    # (address, size) dict probe per transaction.
    for ps in pstates.values():
        batch = ps.batch
        ps.targets = [
            route[(address, size)] if kind else None
            for kind, address, size in zip(
                batch.kinds, batch.addresses, batch.sizes
            )
        ]

    final = _drain(system, pstates, sstates, route)

    tables = [t for ps in pstates.values() for t in (ps.mreq, ps.mresp)]
    tables += [t for ss in sstates.values() for t in (ss.req, ss.resp)]
    report = EngineReport(
        requested=requested,
        used="vector",
        events=final[1],
        batches=tuple(
            (ps.proc.name, ps.n) for ps in pstates.values()
        ),
        unique_shapes=len(route),
        profiles=sum(len(t.profiles) for t in tables),
        replayed=sum(t.replayed for t in tables),
        real_calls=sum(t.real_calls for t in tables),
    )
    return final[0], report


def _drive_fabric(
    system: SoCSystem,
    fabric: InterconnectFabric,
    pstates: Dict[Processor, _PState],
    requested: str,
) -> Tuple[Optional[int], EngineReport]:
    """Fabric-native drive: route prepass + the continuation-based drain."""
    segstates = {name: _SegState(seg) for name, seg in fabric.segments.items()}
    bridgestates = {
        name: _BridgeState(bridge, segstates)
        for name, bridge in fabric.bridges.items()
    }

    # One batched resolve_many per home segment, then per-hop installation
    # into each traversed segment's route table.
    streams: Dict[str, set] = {}
    for ps in pstates.values():
        home = segstates[ps.port.bus.name]
        ps.home = home
        streams.setdefault(home.name, set()).update(ps.batch.memory_shapes)
    per_segment = fabric_route_prepass(fabric, streams)
    unique_shapes = set()
    for seg_name, shape_slaves in per_segment.items():
        st = segstates[seg_name]
        seg_ports = st.seg._slave_ports
        for shape, slave in shape_slaves.items():
            unique_shapes.add(shape)
            if slave is None:
                st.route[shape] = None
            elif slave.startswith("bridge:"):
                endpoint = seg_ports[slave]
                st.route[shape] = _BridgeHop(
                    bridgestates[endpoint.device.name], endpoint.side, slave
                )
            else:
                st.route[shape] = st.sstates[slave]

    final = _drain_fabric(system, pstates, segstates, bridgestates)

    tables = [t for ps in pstates.values() for t in (ps.mreq, ps.mresp)]
    tables += [
        t for st in segstates.values()
        for ss in st.sstates.values() for t in (ss.req, ss.resp)
    ]
    tables += [t for bs in bridgestates.values() for t in (bs.req, bs.resp)]
    report = EngineReport(
        requested=requested,
        used="vector",
        events=final[1],
        batches=tuple((ps.proc.name, ps.n) for ps in pstates.values()),
        unique_shapes=len(unique_shapes),
        profiles=sum(len(t.profiles) for t in tables),
        replayed=sum(t.replayed for t in tables),
        real_calls=sum(t.real_calls for t in tables),
        extra={
            "fabric": {
                "segments": len(segstates),
                "bridges": len(bridgestates),
            }
        },
    )
    return final[0], report


def _drain(system, pstates, sstates, route) -> Tuple[int, int]:
    """The mirrored event loop.  Returns (final cycle, events executed)."""
    sim = system.sim
    bus = system.bus
    arbiter = bus.arbiter
    waiting = bus._waiting
    select = arbiter.select
    add_master = arbiter.add_master
    stage = bus.latency_stage
    monitor = bus.monitor
    history_append = monitor.history.append

    heap: List[tuple] = []
    push = heapq.heappush
    pop = heapq.heappop

    # Take over the calendar armed by start_all()/schedule_reconfigurations().
    by_proc = {ps.proc: ps for ps in pstates.values()}
    for ev in sim.drain_pending():
        key = ev.time << _SEQ_BITS | ev.sequence
        cb = ev.callback
        if getattr(cb, "__func__", None) is _EXECUTE_NEXT:
            heap.append((key, _EXEC, by_proc[cb.__self__], None))
        else:
            heap.append((key, _ALIEN, cb, ev.args))
    heapq.heapify(heap)

    seq = sim._sequence
    busy = bus._busy
    if busy:
        raise EngineError("bus busy at workload start")
    pending = 0  # waiting transactions across all masters (arbiter skip)

    bus_submitted = 0
    bus_granted = 0
    bus_completed = 0
    bus_decode_errors = 0
    mon_master: Dict[str, int] = {}
    mon_slave: Dict[str, int] = {}

    n_events = 0
    final_time = sim._now

    READ_OP = _READ
    ISSUED = TransactionStatus.ISSUED
    GRANTED = TransactionStatus.GRANTED
    COMPLETED = TransactionStatus.COMPLETED
    BLOCKED_AT_MASTER = TransactionStatus.BLOCKED_AT_MASTER
    BLOCKED_AT_SLAVE = TransactionStatus.BLOCKED_AT_SLAVE
    DECODE_ERROR = TransactionStatus.DECODE_ERROR

    def step(ps: _PState, time: int) -> None:
        """Mirror of Processor._execute_next (one operation per activation)."""
        nonlocal seq
        pc = ps.pc
        if pc >= ps.n:
            proc = ps.proc
            if proc.finished_at is None:
                proc.finished_at = time
                stats = proc.stats
                stats["finished_at"] = time
                if proc.started_at is not None:
                    stats["execution_cycles"] = time - proc.started_at
            return
        ps.pc = pc + 1
        kind = ps.kinds[pc]
        if not kind:  # COMPUTE
            cycles = ps.computes[pc]
            ps.compute_ops += 1
            ps.compute_cycles += cycles
            push(heap, ((time + cycles) << _SEQ_BITS | seq, _EXEC, ps, None))
            seq += 1
            return
        # Memory operation: mirror of MasterPort.issue, with the transaction
        # constructed inline (fields pre-validated at batch build).
        txn = _NEW(BusTransaction)
        txn.master = ps.master
        txn.operation = ps.operations[pc]
        txn.address = ps.addresses[pc]
        txn.width = ps.widths[pc]
        txn.burst_length = ps.bursts[pc]
        txn.data = ps.datas[pc]
        txn.txn_id = _next_txn_id()
        txn.status = ISSUED
        txn.issued_at = time
        txn.granted_at = -1
        txn.completed_at = -1
        txn.latency_breakdown = {}
        thread_id = ps.threads[pc]
        txn.annotations = {} if thread_id is None else {"thread_id": thread_id}
        ps.memory_ops += 1
        ps.transactions.append(txn)
        ps.issued += 1
        allowed, latency, result = ps.mreq.call(txn)
        if allowed:
            push(heap, (
                (time + latency) << _SEQ_BITS | seq, _SUBMIT, ps,
                (txn, ps.transfers[pc], ps.targets[pc]),
            ))
        else:
            ps.p_blocked_requests += 1
            push(heap, (
                (time + latency) << _SEQ_BITS | seq, _MBLOCK, ps,
                (txn, result.status or BLOCKED_AT_MASTER, result.reason),
            ))
        seq += 1

    def complete_master(ps: _PState, txn: BusTransaction, time: int) -> None:
        """Mirror of MasterPort._complete + Processor._on_transaction_done."""
        if txn.status is COMPLETED:
            ps.p_completed += 1
            ps.completed_accesses += 1
        else:
            ps.p_terminated += 1
            ps.blocked_accesses += 1
            ps.proc.blocked_transactions.append(txn)
        latency = txn.completed_at - txn.issued_at
        if latency > 0:
            ps.access_cycles += latency
        step(ps, time)

    def try_grant(time: int) -> None:
        """Mirror of BusSegment._try_grant."""
        nonlocal seq, busy, pending, bus_granted, bus_decode_errors
        if busy or not pending:
            return
        winner = select(waiting)
        if winner is None:
            return
        txn, ps, transfer, sstate = waiting[winner].popleft()
        pending -= 1
        busy = True
        txn.granted_at = time
        txn.status = GRANTED
        bus_granted += 1
        bd = txn.latency_breakdown
        bd[stage] = bd.get(stage, 0) + transfer
        if sstate is None:
            bus_decode_errors += 1
            push(heap, ((time + transfer) << _SEQ_BITS | seq,
                        _DECODE_ERR, ps, txn))
        else:
            history_append(txn)
            master = txn.master
            mon_master[master] = mon_master.get(master, 0) + 1
            slave = sstate.slave_name
            mon_slave[slave] = mon_slave.get(slave, 0) + 1
            push(heap, ((time + transfer) << _SEQ_BITS | seq,
                        _DELIVER, ps, (txn, sstate)))
        seq += 1

    while heap:
        key, op, a, b = pop(heap)
        time = key >> _SEQ_BITS
        sim._now = time
        n_events += 1

        if op == _EXEC:
            step(a, time)
        elif op == _SUBMIT:
            txn, transfer, sstate = b
            master = txn.master
            queue = waiting.get(master)
            if queue is None:
                queue = waiting[master] = deque()
                add_master(master)
            queue.append((txn, a, transfer, sstate))
            pending += 1
            bus_submitted += 1
            try_grant(time)
        elif op == _DELIVER:
            txn, sstate = b
            sstate.delivered += 1
            allowed, latency, result = sstate.req.call(txn)
            if allowed:
                push(heap, ((time + latency) << _SEQ_BITS | seq,
                            _ACCESS, a, b))
            else:
                sstate.blocked_requests += 1
                push(heap, (
                    (time + latency) << _SEQ_BITS | seq, _SBLOCK, a,
                    (txn, result.status or BLOCKED_AT_SLAVE, result.reason),
                ))
            seq += 1
        elif op == _ACCESS:
            txn, sstate = b
            latency, data = sstate.access(txn)
            bd = txn.latency_breakdown
            name = sstate.device_name
            bd[name] = bd.get(name, 0) + latency
            if data is not None and txn.operation is READ_OP:
                txn.data = data
            push(heap, ((time + latency) << _SEQ_BITS | seq, _SRESP, a, b))
            seq += 1
        elif op == _SRESP:
            txn, sstate = b
            allowed, latency, result = sstate.resp.call(txn)
            if allowed:
                push(heap, ((time + latency) << _SEQ_BITS | seq,
                            _RELEASE, a, txn))
            else:
                sstate.blocked_responses += 1
                push(heap, (
                    (time + latency) << _SEQ_BITS | seq, _SBLOCK, a,
                    (txn, result.status or BLOCKED_AT_SLAVE, result.reason),
                ))
            seq += 1
        elif op == _RELEASE:
            # _release_and_reply with the master's response path inline: the
            # master's follow-up schedules take sequence numbers *before* the
            # next grant's, exactly as the object path's synchronous reply.
            txn = b
            busy = False
            bus_completed += 1
            allowed, latency, result = a.mresp.call(txn)
            if allowed:
                push(heap, ((time + latency) << _SEQ_BITS | seq,
                            _MFIN, a, txn))
            else:
                a.p_blocked_responses += 1
                push(heap, (
                    (time + latency) << _SEQ_BITS | seq, _MBLOCK, a,
                    (txn, result.status or BLOCKED_AT_MASTER, result.reason),
                ))
            seq += 1
            try_grant(time)
        elif op == _MFIN:
            txn = b
            txn.completed_at = time
            txn.status = COMPLETED
            complete_master(a, txn, time)
        elif op == _SBLOCK:
            txn, status, reason = b
            txn.mark_blocked(time, status, reason)
            busy = False
            bus_completed += 1
            complete_master(a, txn, time)
            try_grant(time)
        elif op == _MBLOCK:
            txn, status, reason = b
            txn.mark_blocked(time, status, reason)
            complete_master(a, txn, time)
        elif op == _DECODE_ERR:
            txn = b
            txn.mark_blocked(time, DECODE_ERROR, "address decode error")
            busy = False
            bus_completed += 1
            complete_master(a, txn, time)
            try_grant(time)
        elif op == _ALIEN:
            # Run foreign callbacks (reconfiguration closures) on the real
            # simulator, then absorb anything they scheduled.
            sim._sequence = seq
            a(*b)
            if sim._queue:
                for ev in sim.drain_pending():
                    ekey = ev.time << _SEQ_BITS | ev.sequence
                    cb = ev.callback
                    if getattr(cb, "__func__", None) is _EXECUTE_NEXT:
                        push(heap, (ekey, _EXEC, by_proc[cb.__self__], None))
                    else:
                        push(heap, (ekey, _ALIEN, cb, ev.args))
            seq = sim._sequence
        else:  # pragma: no cover - unreachable
            raise EngineError(f"unknown opcode {op}")
        final_time = time

    if busy or any(waiting.values()):
        raise EngineError("transactions left in flight after drain")

    # Settle deferred state back onto the real platform objects.
    sim._sequence = seq
    sim.resync(final_time, n_events)

    for ps in pstates.values():
        _merge(ps.proc.stats, (
            ("compute_ops", ps.compute_ops),
            ("compute_cycles", ps.compute_cycles),
            ("memory_ops", ps.memory_ops),
            ("completed_accesses", ps.completed_accesses),
            ("blocked_accesses", ps.blocked_accesses),
            ("access_cycles", ps.access_cycles),
        ))
        _merge(ps.port.stats, (
            ("issued", ps.issued),
            ("blocked_requests", ps.p_blocked_requests),
            ("blocked_responses", ps.p_blocked_responses),
            ("completed", ps.p_completed),
            ("terminated", ps.p_terminated),
        ))
        ps.mreq.flush()
        ps.mresp.flush()
    for ss in sstates.values():
        _merge(ss.port.stats, (
            ("delivered", ss.delivered),
            ("blocked_requests", ss.blocked_requests),
            ("blocked_responses", ss.blocked_responses),
        ))
        ss.req.flush()
        ss.resp.flush()
    _merge(bus.stats, (
        ("submitted", bus_submitted),
        ("granted", bus_granted),
        ("completed", bus_completed),
        ("decode_errors", bus_decode_errors),
    ))
    per_master = monitor.per_master
    for master, count in mon_master.items():
        per_master[master] = per_master.get(master, 0) + count
    per_slave = monitor.per_slave
    for slave, count in mon_slave.items():
        per_slave[slave] = per_slave.get(slave, 0) + count
    request_tables = [ps.mreq for ps in pstates.values()]
    request_tables += [ss.req for ss in sstates.values()]
    _settle_event_counts(
        sim, pstates, request_tables, bus_granted - bus_decode_errors
    )

    return final_time, n_events


# Opcodes of the fabric calendar.  The fabric loop is continuation-based:
# entries carry a *continuation* mirroring the reply callable the object path
# would have closed over, so multi-hop completions unwind through nested
# bridge/segment continuations exactly as the object path's nested callbacks.
_F_EXEC = 0      # processor _execute_next
_F_ISSUE = 1     # segment.submit (scheduled by MasterPort.issue)
_F_DELIVER = 2   # slave_port.deliver
_F_ACCESS = 3    # slave_port._access_device
_F_SRESP = 4     # slave_port._run_response_filters
_F_REPLY = 5     # a scheduled `reply(txn)` -> resume the continuation
_F_BLOCKED = 6   # slave/bridge _reply_blocked (mark + resume)
_F_MFIN = 7      # master_port._finish_completed
_F_MBLOCK = 8    # master_port._finish_blocked
_F_DECODE = 9    # segment._finish_decode_error
_F_INGRESS = 10  # bridge._ingress (scheduled endpoint deliver)
_F_FORWARD = 11  # bridge._forward (non-posted submit on the far segment)
_F_DRAIN_P = 12  # bridge._drain_submit_posted
_F_DRAIN_O = 13  # bridge._drain_submit_ordered
_F_HANDOFF = 14  # segment._release_after_handoff (split release)
_F_ALIEN = 15    # any other scheduled callback (reconfiguration closures)

# Continuation tags (first element of every continuation tuple).
_C_MASTER = 0    # MasterPort._on_response
_C_RELEASE = 1   # segment._release_and_reply (busy release + inner reply)
_C_SPLIT = 2     # segment._on_split_reply (completed bump + inner reply)
_C_REMOTE = 3    # bridge._on_remote_reply (response chain + inner reply)
_C_DRAIN_P = 4   # bridge._drain_done_posted
_C_DRAIN_O = 5   # bridge._drain_done_ordered


def _drain_fabric(system, pstates, segstates, bridgestates) -> Tuple[int, int]:
    """The mirrored event loop over a bridged-segment fabric.

    Same 1:1 event contract as :func:`_drain`: one heap pop per object-path
    kernel event, same cycle, same sequence number, same state transitions.
    Returns (final cycle, events executed).
    """
    sim = system.sim
    event_bus = sim.event_bus

    heap: List[tuple] = []
    push = heapq.heappush
    pop = heapq.heappop

    by_proc = {ps.proc: ps for ps in pstates.values()}
    for ev in sim.drain_pending():
        key = ev.time << _SEQ_BITS | ev.sequence
        cb = ev.callback
        if getattr(cb, "__func__", None) is _EXECUTE_NEXT:
            heap.append((key, _F_EXEC, by_proc[cb.__self__], None))
        else:
            heap.append((key, _F_ALIEN, cb, ev.args))
    heapq.heapify(heap)

    seq = sim._sequence
    for st in segstates.values():
        if st.seg._busy:
            raise EngineError(f"segment {st.name} busy at workload start")
    for bs in bridgestates.values():
        if bs.bridge._buffer or bs.bridge._draining:
            raise EngineError(f"bridge {bs.name} draining at workload start")

    n_events = 0
    final_time = sim._now

    READ_OP = _READ
    ISSUED = TransactionStatus.ISSUED
    GRANTED = TransactionStatus.GRANTED
    COMPLETED = TransactionStatus.COMPLETED
    BLOCKED_AT_MASTER = TransactionStatus.BLOCKED_AT_MASTER
    BLOCKED_AT_SLAVE = TransactionStatus.BLOCKED_AT_SLAVE
    BLOCKED_AT_BRIDGE = TransactionStatus.BLOCKED_AT_BRIDGE
    DECODE_ERROR = TransactionStatus.DECODE_ERROR

    def step(ps: _PState, time: int) -> None:
        """Mirror of Processor._execute_next (one operation per activation)."""
        nonlocal seq
        pc = ps.pc
        if pc >= ps.n:
            proc = ps.proc
            if proc.finished_at is None:
                proc.finished_at = time
                stats = proc.stats
                stats["finished_at"] = time
                if proc.started_at is not None:
                    stats["execution_cycles"] = time - proc.started_at
            return
        ps.pc = pc + 1
        kind = ps.kinds[pc]
        if not kind:  # COMPUTE
            cycles = ps.computes[pc]
            ps.compute_ops += 1
            ps.compute_cycles += cycles
            push(heap, ((time + cycles) << _SEQ_BITS | seq, _F_EXEC, ps, None))
            seq += 1
            return
        txn = _NEW(BusTransaction)
        txn.master = ps.master
        txn.operation = ps.operations[pc]
        txn.address = ps.addresses[pc]
        txn.width = ps.widths[pc]
        txn.burst_length = ps.bursts[pc]
        txn.data = ps.datas[pc]
        txn.txn_id = _next_txn_id()
        txn.status = ISSUED
        txn.issued_at = time
        txn.granted_at = -1
        txn.completed_at = -1
        txn.latency_breakdown = {}
        thread_id = ps.threads[pc]
        txn.annotations = {} if thread_id is None else {"thread_id": thread_id}
        ps.memory_ops += 1
        ps.transactions.append(txn)
        ps.issued += 1
        allowed, latency, result = ps.mreq.call(txn)
        if allowed:
            push(heap, ((time + latency) << _SEQ_BITS | seq, _F_ISSUE, ps, txn))
        else:
            ps.p_blocked_requests += 1
            push(heap, (
                (time + latency) << _SEQ_BITS | seq, _F_MBLOCK, ps,
                (txn, result.status or BLOCKED_AT_MASTER, result.reason),
            ))
        seq += 1

    def complete_master(ps: _PState, txn: BusTransaction, time: int) -> None:
        """Mirror of MasterPort._complete + Processor._on_transaction_done."""
        if txn.status is COMPLETED:
            ps.p_completed += 1
            ps.completed_accesses += 1
        else:
            ps.p_terminated += 1
            ps.blocked_accesses += 1
            ps.proc.blocked_transactions.append(txn)
        latency = txn.completed_at - txn.issued_at
        if latency > 0:
            ps.access_cycles += latency
        step(ps, time)

    def submit(st: _SegState, txn: BusTransaction, cont: tuple, time: int) -> None:
        """Mirror of BusSegment.submit."""
        master = txn.master
        queue = st.waiting.get(master)
        if queue is None:
            queue = st.waiting[master] = deque()
            st.add_master(master)
        queue.append((txn, cont))
        st.pending += 1
        st.submitted += 1
        try_grant(st, time)

    def try_grant(st: _SegState, time: int) -> None:
        """Mirror of BusSegment._try_grant (per-segment phases, fabric routes)."""
        nonlocal seq
        if st.busy or not st.pending:
            return
        winner = st.select(st.waiting)
        if winner is None:
            return
        txn, cont = st.waiting[winner].popleft()
        st.pending -= 1
        st.busy = True
        txn.granted_at = time
        txn.status = GRANTED
        st.granted += 1
        transfer = st.ap + st.dp * txn.burst_length
        bd = txn.latency_breakdown
        stage = st.stage
        bd[stage] = bd.get(stage, 0) + transfer
        target = st.route.get((txn.address, txn.width * txn.burst_length), _NO_ROUTE)
        if target is None:
            st.decode_errors += 1
            push(heap, ((time + transfer) << _SEQ_BITS | seq,
                        _F_DECODE, st, (txn, cont)))
            seq += 1
            return
        if target is _NO_ROUTE:
            raise EngineError(
                f"unrouted shape ({txn.address:#x}, {txn.size}) on {st.name}"
            )
        st.history_append(txn)
        master = txn.master
        st.mon_master[master] = st.mon_master.get(master, 0) + 1
        st.granted_ok += 1
        if target.__class__ is _SState:
            slave = target.slave_name
            st.mon_slave[slave] = st.mon_slave.get(slave, 0) + 1
            push(heap, ((time + transfer) << _SEQ_BITS | seq, _F_DELIVER,
                        target, (txn, (_C_RELEASE, st, cont))))
            seq += 1
        else:  # _BridgeHop: split handoff — release at delivery, not at reply.
            slave = target.slave_key
            st.mon_slave[slave] = st.mon_slave.get(slave, 0) + 1
            push(heap, ((time + transfer) << _SEQ_BITS | seq, _F_INGRESS,
                        target.bs, (target.side, txn, (_C_SPLIT, st, cont))))
            seq += 1
            push(heap, ((time + transfer) << _SEQ_BITS | seq, _F_HANDOFF,
                        st, None))
            seq += 1

    def br_drain(bs: _BridgeState, time: int) -> None:
        """Mirror of BusBridge._drain (head stays buffered while in flight)."""
        nonlocal seq
        if bs.draining or not bs.buffer:
            return
        bs.draining = True
        entry = bs.buffer[0]
        if entry[0] == "posted":
            push(heap, ((time + bs.fwd) << _SEQ_BITS | seq, _F_DRAIN_P,
                        bs, (entry[1], entry[2])))
        else:
            push(heap, (time << _SEQ_BITS | seq, _F_DRAIN_O,
                        bs, (entry[1], entry[2], entry[3])))
        seq += 1

    def resume(cont: tuple, txn: BusTransaction, time: int) -> None:
        """Run one reply continuation (the object path's `reply(txn)`)."""
        nonlocal seq
        tag = cont[0]
        if tag == _C_MASTER:
            ps = cont[1]
            status = txn.status
            if status.is_terminal and status is not COMPLETED:
                complete_master(ps, txn, time)
                return
            allowed, latency, result = ps.mresp.call(txn)
            if allowed:
                push(heap, ((time + latency) << _SEQ_BITS | seq,
                            _F_MFIN, ps, txn))
            else:
                ps.p_blocked_responses += 1
                push(heap, (
                    (time + latency) << _SEQ_BITS | seq, _F_MBLOCK, ps,
                    (txn, result.status or BLOCKED_AT_MASTER, result.reason),
                ))
            seq += 1
        elif tag == _C_RELEASE:
            st = cont[1]
            st.busy = False
            st.completed += 1
            # The object path replies synchronously before re-arbitrating, so
            # the inner continuation's schedules take earlier sequence numbers
            # than the next grant's.
            resume(cont[2], txn, time)
            try_grant(st, time)
        elif tag == _C_SPLIT:
            cont[1].completed += 1
            resume(cont[2], txn, time)
        elif tag == _C_REMOTE:
            bs = cont[1]
            bs.forwarded += 1
            status = txn.status
            if status.is_terminal and status is not COMPLETED:
                resume(cont[2], txn, time)
                return
            allowed, latency, result = bs.resp.call(txn)
            if allowed:
                push(heap, ((time + latency) << _SEQ_BITS | seq,
                            _F_REPLY, cont[2], txn))
            else:
                bs.blocked_responses += 1
                push(heap, (
                    (time + latency) << _SEQ_BITS | seq, _F_BLOCKED, cont[2],
                    (txn, result.status or BLOCKED_AT_BRIDGE, result.reason),
                ))
            seq += 1
        elif tag == _C_DRAIN_P:
            bs = cont[1]
            bs.buffer.popleft()
            bs.posted_pending -= 1
            bs.draining = False
            bs.posted_completed += 1
            status = txn.status
            if status.is_terminal and status is not COMPLETED:
                # Posted-write hazard: the issuer was acknowledged long ago.
                bs.posted_write_failures += 1
                if event_bus is not None:
                    event_bus.emit(
                        "bridge.posted_failure", time, bs.name,
                        master=txn.master, address=txn.address,
                        status=status.value,
                    )
            br_drain(bs, time)
        else:  # _C_DRAIN_O
            bs = cont[1]
            bs.buffer.popleft()
            bs.draining = False
            resume((_C_REMOTE, bs, cont[2]), txn, time)
            br_drain(bs, time)

    while heap:
        key, op, a, b = pop(heap)
        time = key >> _SEQ_BITS
        sim._now = time
        n_events += 1

        if op == _F_EXEC:
            step(a, time)
        elif op == _F_ISSUE:
            submit(a.home, b, (_C_MASTER, a), time)
        elif op == _F_DELIVER:
            txn, cont = b
            a.delivered += 1
            allowed, latency, result = a.req.call(txn)
            if allowed:
                push(heap, ((time + latency) << _SEQ_BITS | seq,
                            _F_ACCESS, a, b))
            else:
                a.blocked_requests += 1
                push(heap, (
                    (time + latency) << _SEQ_BITS | seq, _F_BLOCKED, cont,
                    (txn, result.status or BLOCKED_AT_SLAVE, result.reason),
                ))
            seq += 1
        elif op == _F_ACCESS:
            txn, cont = b
            latency, data = a.access(txn)
            bd = txn.latency_breakdown
            name = a.device_name
            bd[name] = bd.get(name, 0) + latency
            if data is not None and txn.operation is READ_OP:
                txn.data = data
            push(heap, ((time + latency) << _SEQ_BITS | seq, _F_SRESP, a, b))
            seq += 1
        elif op == _F_SRESP:
            txn, cont = b
            allowed, latency, result = a.resp.call(txn)
            if allowed:
                push(heap, ((time + latency) << _SEQ_BITS | seq,
                            _F_REPLY, cont, txn))
            else:
                a.blocked_responses += 1
                push(heap, (
                    (time + latency) << _SEQ_BITS | seq, _F_BLOCKED, cont,
                    (txn, result.status or BLOCKED_AT_SLAVE, result.reason),
                ))
            seq += 1
        elif op == _F_REPLY:
            resume(a, b, time)
        elif op == _F_BLOCKED:
            txn, status, reason = b
            txn.mark_blocked(time, status, reason)
            resume(a, txn, time)
        elif op == _F_MFIN:
            txn = b
            txn.completed_at = time
            txn.status = COMPLETED
            complete_master(a, txn, time)
        elif op == _F_MBLOCK:
            txn, status, reason = b
            txn.mark_blocked(time, status, reason)
            complete_master(a, txn, time)
        elif op == _F_DECODE:
            txn, cont = b
            txn.mark_blocked(time, DECODE_ERROR, "address decode error")
            a.busy = False
            a.completed += 1
            resume(cont, txn, time)
            try_grant(a, time)
        elif op == _F_INGRESS:
            side, txn, cont = b
            bs = a
            if side == "a":
                bs.ingress_a += 1
            else:
                bs.ingress_b += 1
            allowed, latency, result = bs.req.call(txn)
            if not allowed:
                bs.blocked_requests += 1
                if event_bus is not None:
                    event_bus.emit(
                        "bridge.containment", time, bs.name,
                        master=txn.master, address=txn.address,
                        txn_id=txn.txn_id, reason=result.reason, side=side,
                    )
                push(heap, (
                    (time + latency) << _SEQ_BITS | seq, _F_BLOCKED, cont,
                    (txn, result.status or BLOCKED_AT_BRIDGE, result.reason),
                ))
                seq += 1
            else:
                bd = txn.latency_breakdown
                stage = bs.stage
                bd[stage] = bd.get(stage, 0) + bs.fwd
                target = bs.target[side]
                if (
                    txn.operation is not READ_OP
                    and bs.posted
                    and bs.posted_pending < bs.depth
                ):
                    bs.posted_writes += 1
                    clone = txn.clone_for_retry()
                    bs.buffer.append(("posted", clone, target))
                    bs.posted_pending += 1
                    push(heap, ((time + latency + bs.fwd) << _SEQ_BITS | seq,
                                _F_REPLY, cont, txn))
                    seq += 1
                    br_drain(bs, time)
                else:
                    if txn.operation is not READ_OP and bs.posted:
                        bs.posted_stalls += 1
                    if bs.buffer:
                        bs.ordered_behind_posted += 1
                        bs.buffer.append(("ordered", txn, cont, target))
                        br_drain(bs, time)
                    else:
                        push(heap, (
                            (time + latency + bs.fwd) << _SEQ_BITS | seq,
                            _F_FORWARD, bs, (txn, cont, target),
                        ))
                        seq += 1
        elif op == _F_FORWARD:
            txn, cont, target = b
            submit(target, txn, (_C_REMOTE, a, cont), time)
        elif op == _F_DRAIN_P:
            clone, target = b
            submit(target, clone, (_C_DRAIN_P, a), time)
        elif op == _F_DRAIN_O:
            txn, cont, target = b
            submit(target, txn, (_C_DRAIN_O, a, cont), time)
        elif op == _F_HANDOFF:
            a.busy = False
            try_grant(a, time)
        elif op == _F_ALIEN:
            sim._sequence = seq
            a(*b)
            if sim._queue:
                for ev in sim.drain_pending():
                    ekey = ev.time << _SEQ_BITS | ev.sequence
                    cb = ev.callback
                    if getattr(cb, "__func__", None) is _EXECUTE_NEXT:
                        push(heap, (ekey, _F_EXEC, by_proc[cb.__self__], None))
                    else:
                        push(heap, (ekey, _F_ALIEN, cb, ev.args))
            seq = sim._sequence
        else:  # pragma: no cover - unreachable
            raise EngineError(f"unknown opcode {op}")
        final_time = time

    for st in segstates.values():
        if st.busy or any(st.waiting.values()):
            raise EngineError(
                f"transactions left in flight on {st.name} after drain"
            )
    for bs in bridgestates.values():
        if bs.buffer or bs.draining:
            raise EngineError(f"bridge {bs.name} still draining after drain")

    # Settle deferred state back onto the real platform objects.
    sim._sequence = seq
    sim.resync(final_time, n_events)

    for ps in pstates.values():
        _merge(ps.proc.stats, (
            ("compute_ops", ps.compute_ops),
            ("compute_cycles", ps.compute_cycles),
            ("memory_ops", ps.memory_ops),
            ("completed_accesses", ps.completed_accesses),
            ("blocked_accesses", ps.blocked_accesses),
            ("access_cycles", ps.access_cycles),
        ))
        _merge(ps.port.stats, (
            ("issued", ps.issued),
            ("blocked_requests", ps.p_blocked_requests),
            ("blocked_responses", ps.p_blocked_responses),
            ("completed", ps.p_completed),
            ("terminated", ps.p_terminated),
        ))
        ps.mreq.flush()
        ps.mresp.flush()
    request_tables = [ps.mreq for ps in pstates.values()]
    granted_ok = 0
    for st in segstates.values():
        for ss in st.sstates.values():
            _merge(ss.port.stats, (
                ("delivered", ss.delivered),
                ("blocked_requests", ss.blocked_requests),
                ("blocked_responses", ss.blocked_responses),
            ))
            ss.req.flush()
            ss.resp.flush()
            request_tables.append(ss.req)
        _merge(st.seg.stats, (
            ("submitted", st.submitted),
            ("granted", st.granted),
            ("completed", st.completed),
            ("decode_errors", st.decode_errors),
        ))
        per_master = st.seg.monitor.per_master
        for master, count in st.mon_master.items():
            per_master[master] = per_master.get(master, 0) + count
        per_slave = st.seg.monitor.per_slave
        for slave, count in st.mon_slave.items():
            per_slave[slave] = per_slave.get(slave, 0) + count
        granted_ok += st.granted_ok
    for bs in bridgestates.values():
        _merge(bs.bridge.stats, (
            ("ingress_a", bs.ingress_a),
            ("ingress_b", bs.ingress_b),
            ("blocked_requests", bs.blocked_requests),
            ("blocked_responses", bs.blocked_responses),
            ("posted_writes", bs.posted_writes),
            ("posted_stalls", bs.posted_stalls),
            ("ordered_behind_posted", bs.ordered_behind_posted),
            ("forwarded", bs.forwarded),
            ("posted_completed", bs.posted_completed),
            ("posted_write_failures", bs.posted_write_failures),
        ))
        bs.req.flush()
        bs.resp.flush()
        request_tables.append(bs.req)
    _settle_event_counts(sim, pstates, request_tables, granted_ok)

    return final_time, n_events


_NO_ROUTE = object()


def _settle_event_counts(sim, pstates, request_tables, granted_ok) -> None:
    """Settle the per-transaction event counts of one drained workload.

    Called after every table flushed: replayed chain calls never ran the real
    firewall code, so their ``firewall.decision`` emissions (one per
    LocalFirewall per allowed request — denies always take real calls) are
    counted here in bulk; real calls emitted their own live.  Likewise the
    ``txn.*``/``bus.granted`` counts the mirrored loop deferred, and the one
    ``sim.run`` the object path's kernel drain would have published.
    """
    event_bus = sim.event_bus
    if event_bus is None:
        return
    count_n = event_bus.count_n
    count_n("txn.issued", sum(ps.issued for ps in pstates.values()))
    count_n("txn.completed", sum(ps.p_completed for ps in pstates.values()))
    count_n("txn.blocked", sum(ps.p_terminated for ps in pstates.values()))
    count_n("bus.granted", granted_ok)
    count_n(
        "firewall.decision",
        sum(t.replayed * len(t.handles) for t in request_tables),
    )
    if event_bus.active:
        count_n("sim.run", 1)


def _merge(stats: dict, items: Tuple[Tuple[str, int], ...]) -> None:
    for key, value in items:
        if value:
            stats[key] = stats.get(key, 0) + value


# Bound late to keep module import order simple.
from repro.soc import transaction as _transaction_mod  # noqa: E402

_READ = _transaction_mod.BusOperation.READ


def _next_txn_id() -> int:
    return next(_transaction_mod._txn_ids)
