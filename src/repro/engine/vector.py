"""The vector execution engine: batch drain of a workload's calendar.

The object path executes a workload as ~7 kernel events per transaction, each
a generic ``Event`` dispatch into port/bus/filter code.  The vector engine
replaces :meth:`Simulator.run` for the workload phase with a specialised loop
over *opcodes*: it lowers every processor program into parallel arrays
(:mod:`repro.engine.batch`), pre-resolves address decode for every unique
shape, front-ends every filter chain with a profile/replay table
(:mod:`repro.engine.tables`), and drains the whole stream through a mirrored
calendar heap whose entries are plain tuples keyed by a single
``time·2⁴⁴ + sequence`` integer instead of Event objects.

**The identity contract.**  The engine is a 1:1 event mirror, not an
approximation: each heap pop corresponds to exactly one object-path kernel
event, at the same cycle, with the same sequence number, performing the same
state transitions on the *real* platform objects (transactions, devices,
monitors, arbiters, firewalls).  Anything shape-independent is replayed from
tables; anything data-, time- or state-dependent — alerts, denials,
reconfiguration, ciphering, flood trips, centralized SEM queueing — runs
the real code at the right simulated time.  The differential harness
(:mod:`repro.scenarios.differential`) holds the two engines to byte-identical
fingerprints on every registered scenario.

**Fallback triggers.**  The engine declines (and the caller runs the object
path, observationally identical) when the platform is outside its mirrored
subset: hierarchical fabrics (bridges, posted-write buffering, split
transactions), an attached instrumentation event bus, processor completion
hooks, custom port/bus subclasses, or a workload whose operations would fail
transaction validation.  Per-transaction fallbacks (a shape that denies,
transforms data or needs ciphering) stay *inside* the engine as real chain
calls — only platform-level features force the object path.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.engine.batch import BatchError, build_batch, decode_prepass
from repro.engine.spec import EngineReport
from repro.engine.tables import ChainTable
from repro.soc.fabric.segment import BusSegment
from repro.soc.ports import MasterPort, SlavePort
from repro.soc.processor import Processor
from repro.soc.system import SoCSystem
from repro.soc.transaction import BusTransaction, TransactionStatus

__all__ = ["EngineError", "eligibility", "drive_workload"]


class EngineError(RuntimeError):
    """Internal invariant violation in the vector engine (a mirroring bug —
    never a property of the scenario)."""


_EXECUTE_NEXT = Processor._execute_next
_NEW = BusTransaction.__new__

# Heap keys pack (time, sequence) into one integer so every heap comparison
# is a single int compare (sequences are unique, so ties cannot occur).
_SEQ_BITS = 44

# Opcodes of the mirrored calendar.  Each heap entry is
# ``(key, opcode, a, b)`` with ``key = time << _SEQ_BITS | sequence``.
_EXEC = 0         # processor _execute_next (start or post-compute)
_SUBMIT = 1       # bus.submit
_DELIVER = 2      # slave_port.deliver
_ACCESS = 3       # slave_port._access_device
_SRESP = 4        # slave_port._run_response_filters
_RELEASE = 5      # bus reply -> _on_slave_reply (completed path)
_SBLOCK = 6       # slave_port._reply_blocked (incl. release + master reply)
_MBLOCK = 7       # master_port._finish_blocked
_MFIN = 8         # master_port._finish_completed
_DECODE_ERR = 9   # bus._finish_decode_error
_ALIEN = 10       # any other scheduled callback (reconfiguration closures)


class _PState:
    """Per-processor engine state: the batch's parallel arrays (bound
    directly for one-hop access in the hot loop) plus deferred statistics for
    the processor and its (1:1) master port."""

    __slots__ = (
        "proc", "port", "batch", "master", "pc", "n", "mreq", "mresp",
        "kinds", "operations", "addresses", "widths", "bursts", "datas",
        "computes", "transfers", "threads", "targets", "transactions",
        "issued", "p_blocked_requests", "p_blocked_responses",
        "p_completed", "p_terminated",
        "compute_ops", "compute_cycles", "memory_ops",
        "completed_accesses", "blocked_accesses", "access_cycles",
    )

    def __init__(self, proc: Processor, batch) -> None:
        self.proc = proc
        self.port = proc.port
        self.batch = batch
        self.master = batch.master
        self.pc = 0
        self.n = len(batch)
        self.mreq = ChainTable(proc.port.filters, "request")
        self.mresp = ChainTable(proc.port.filters, "response")
        self.kinds = batch.kinds
        self.operations = batch.operations
        self.addresses = batch.addresses
        self.widths = batch.widths
        self.bursts = batch.bursts
        self.datas = batch.datas
        self.computes = batch.computes
        self.transfers = batch.transfer_cycles
        self.threads = batch.thread_ids
        self.targets: List[Optional["_SState"]] = []
        self.transactions = proc.transactions
        self.issued = 0
        self.p_blocked_requests = 0
        self.p_blocked_responses = 0
        self.p_completed = 0
        self.p_terminated = 0
        self.compute_ops = 0
        self.compute_cycles = 0
        self.memory_ops = 0
        self.completed_accesses = 0
        self.blocked_accesses = 0
        self.access_cycles = 0


class _SState:
    """Per-slave-port engine state: chain tables plus deferred statistics."""

    __slots__ = ("port", "device", "access", "device_name", "slave_name",
                 "req", "resp", "delivered", "blocked_requests",
                 "blocked_responses")

    def __init__(self, slave_name: str, port: SlavePort) -> None:
        self.port = port
        self.device = port.device
        self.access = port.device.access
        self.device_name = port.device.name
        self.slave_name = slave_name
        self.req = ChainTable(port.filters, "request")
        self.resp = ChainTable(port.filters, "response")
        self.delivered = 0
        self.blocked_requests = 0
        self.blocked_responses = 0


def eligibility(system: SoCSystem) -> Optional[str]:
    """Why this platform cannot run under the vector engine (None = it can).

    These are *run-level* fallback triggers; per-transaction concerns
    (alerts, ciphering, floods) are handled inside the engine by real calls.
    """
    bus = system.bus
    if not isinstance(bus, BusSegment):
        return _describe_fabric_fallback(system)
    if type(bus).submit is not BusSegment.submit or (
        type(bus)._try_grant is not BusSegment._try_grant
    ):
        return f"custom interconnect {type(bus).__name__} overrides arbitration"
    if system.sim.event_bus is not None:
        return "instrumentation event bus attached"
    for name, port in bus._slave_ports.items():
        if type(port) is not SlavePort:
            return f"custom slave port {type(port).__name__} on {name}"
        if getattr(port, "split_transactions", False):
            return f"slave endpoint {name} uses split transactions"
    for proc in system.processors.values():
        if type(proc) is not Processor:
            return f"custom processor {type(proc).__name__}"
        if proc.on_finished is not None:
            return f"processor {proc.name} has a completion hook"
        if type(proc.port) is not MasterPort:
            return f"custom master port {type(proc.port).__name__}"
    return None


def _describe_fabric_fallback(system: SoCSystem) -> str:
    """Fallback reason for hierarchical fabrics, with a cross-segment shape
    census (how much of the stream would cross a bridge) when the fabric's
    router can answer it."""
    reason = "hierarchical fabric (bridged segments use the object path)"
    router = getattr(system.bus, "router", None)
    segment_of_master = getattr(system.bus, "segment_of_master", None)
    if router is None or segment_of_master is None:
        return reason
    crossing = 0
    shapes = 0
    for proc in system.processors.values():
        segment = segment_of_master(proc.port.name)
        if segment is None:
            continue
        seen = {
            (op.address, op.width * op.burst_length)
            for op in proc.program.operations
            if op.is_memory_access
        }
        routes = router.resolve_many(segment, sorted(seen))
        shapes += len(routes)
        crossing += sum(
            1 for route in routes.values() if route is not None and route.bridges
        )
    if shapes:
        reason += f" ({crossing}/{shapes} unique shapes cross bridges)"
    return reason


def drive_workload(
    system: SoCSystem, requested: str = "vector"
) -> Tuple[Optional[int], EngineReport]:
    """Drain the started workload under the vector engine.

    Call *after* workload load / reconfiguration arming / ``start_all`` — the
    engine takes ownership of the pending calendar.  Returns
    ``(final_cycle, report)``; ``final_cycle`` is None when the engine
    declined, in which case nothing was touched and the caller must run the
    object path (``system.run()``).
    """
    reason = eligibility(system)
    if reason is not None:
        return None, EngineReport(requested=requested, used="object",
                                  fallback_reason=reason)

    bus = system.bus
    pstates: Dict[Processor, _PState] = {}
    try:
        for proc in system.processors.values():
            batch = build_batch(
                proc, bus.address_phase_cycles, bus.data_phase_cycles_per_beat
            )
            pstates[proc] = _PState(proc, batch)
    except BatchError as exc:
        return None, EngineReport(
            requested=requested, used="object",
            fallback_reason=f"workload fails transaction validation ({exc})",
        )

    sstates = {
        name: _SState(name, port) for name, port in bus._slave_ports.items()
    }
    shape_slaves = decode_prepass(
        bus.address_map, [ps.batch for ps in pstates.values()]
    )
    route: Dict[Tuple[int, int], Optional[_SState]] = {
        shape: (sstates.get(slave) if slave is not None else None)
        for shape, slave in shape_slaves.items()
    }
    # Per-row target slave: array indexing in the hot loop instead of a
    # (address, size) dict probe per transaction.
    for ps in pstates.values():
        batch = ps.batch
        ps.targets = [
            route[(address, size)] if kind else None
            for kind, address, size in zip(
                batch.kinds, batch.addresses, batch.sizes
            )
        ]

    final = _drain(system, pstates, sstates, route)

    tables = [t for ps in pstates.values() for t in (ps.mreq, ps.mresp)]
    tables += [t for ss in sstates.values() for t in (ss.req, ss.resp)]
    report = EngineReport(
        requested=requested,
        used="vector",
        events=final[1],
        batches=tuple(
            (ps.proc.name, ps.n) for ps in pstates.values()
        ),
        unique_shapes=len(route),
        profiles=sum(len(t.profiles) for t in tables),
        replayed=sum(t.replayed for t in tables),
        real_calls=sum(t.real_calls for t in tables),
    )
    return final[0], report


def _drain(system, pstates, sstates, route) -> Tuple[int, int]:
    """The mirrored event loop.  Returns (final cycle, events executed)."""
    sim = system.sim
    bus = system.bus
    arbiter = bus.arbiter
    waiting = bus._waiting
    select = arbiter.select
    add_master = arbiter.add_master
    stage = bus.latency_stage
    monitor = bus.monitor
    history_append = monitor.history.append

    heap: List[tuple] = []
    push = heapq.heappush
    pop = heapq.heappop

    # Take over the calendar armed by start_all()/schedule_reconfigurations().
    by_proc = {ps.proc: ps for ps in pstates.values()}
    for ev in sim.drain_pending():
        key = ev.time << _SEQ_BITS | ev.sequence
        cb = ev.callback
        if getattr(cb, "__func__", None) is _EXECUTE_NEXT:
            heap.append((key, _EXEC, by_proc[cb.__self__], None))
        else:
            heap.append((key, _ALIEN, cb, ev.args))
    heapq.heapify(heap)

    seq = sim._sequence
    busy = bus._busy
    if busy:
        raise EngineError("bus busy at workload start")
    pending = 0  # waiting transactions across all masters (arbiter skip)

    bus_submitted = 0
    bus_granted = 0
    bus_completed = 0
    bus_decode_errors = 0
    mon_master: Dict[str, int] = {}
    mon_slave: Dict[str, int] = {}

    n_events = 0
    final_time = sim._now

    READ_OP = _READ
    ISSUED = TransactionStatus.ISSUED
    GRANTED = TransactionStatus.GRANTED
    COMPLETED = TransactionStatus.COMPLETED
    BLOCKED_AT_MASTER = TransactionStatus.BLOCKED_AT_MASTER
    BLOCKED_AT_SLAVE = TransactionStatus.BLOCKED_AT_SLAVE
    DECODE_ERROR = TransactionStatus.DECODE_ERROR

    def step(ps: _PState, time: int) -> None:
        """Mirror of Processor._execute_next (one operation per activation)."""
        nonlocal seq
        pc = ps.pc
        if pc >= ps.n:
            proc = ps.proc
            if proc.finished_at is None:
                proc.finished_at = time
                stats = proc.stats
                stats["finished_at"] = time
                if proc.started_at is not None:
                    stats["execution_cycles"] = time - proc.started_at
            return
        ps.pc = pc + 1
        kind = ps.kinds[pc]
        if not kind:  # COMPUTE
            cycles = ps.computes[pc]
            ps.compute_ops += 1
            ps.compute_cycles += cycles
            push(heap, ((time + cycles) << _SEQ_BITS | seq, _EXEC, ps, None))
            seq += 1
            return
        # Memory operation: mirror of MasterPort.issue, with the transaction
        # constructed inline (fields pre-validated at batch build).
        txn = _NEW(BusTransaction)
        txn.master = ps.master
        txn.operation = ps.operations[pc]
        txn.address = ps.addresses[pc]
        txn.width = ps.widths[pc]
        txn.burst_length = ps.bursts[pc]
        txn.data = ps.datas[pc]
        txn.txn_id = _next_txn_id()
        txn.status = ISSUED
        txn.issued_at = time
        txn.granted_at = -1
        txn.completed_at = -1
        txn.latency_breakdown = {}
        thread_id = ps.threads[pc]
        txn.annotations = {} if thread_id is None else {"thread_id": thread_id}
        ps.memory_ops += 1
        ps.transactions.append(txn)
        ps.issued += 1
        allowed, latency, result = ps.mreq.call(txn)
        if allowed:
            push(heap, (
                (time + latency) << _SEQ_BITS | seq, _SUBMIT, ps,
                (txn, ps.transfers[pc], ps.targets[pc]),
            ))
        else:
            ps.p_blocked_requests += 1
            push(heap, (
                (time + latency) << _SEQ_BITS | seq, _MBLOCK, ps,
                (txn, result.status or BLOCKED_AT_MASTER, result.reason),
            ))
        seq += 1

    def complete_master(ps: _PState, txn: BusTransaction, time: int) -> None:
        """Mirror of MasterPort._complete + Processor._on_transaction_done."""
        if txn.status is COMPLETED:
            ps.p_completed += 1
            ps.completed_accesses += 1
        else:
            ps.p_terminated += 1
            ps.blocked_accesses += 1
            ps.proc.blocked_transactions.append(txn)
        latency = txn.completed_at - txn.issued_at
        if latency > 0:
            ps.access_cycles += latency
        step(ps, time)

    def try_grant(time: int) -> None:
        """Mirror of BusSegment._try_grant."""
        nonlocal seq, busy, pending, bus_granted, bus_decode_errors
        if busy or not pending:
            return
        winner = select(waiting)
        if winner is None:
            return
        txn, ps, transfer, sstate = waiting[winner].popleft()
        pending -= 1
        busy = True
        txn.granted_at = time
        txn.status = GRANTED
        bus_granted += 1
        bd = txn.latency_breakdown
        bd[stage] = bd.get(stage, 0) + transfer
        if sstate is None:
            bus_decode_errors += 1
            push(heap, ((time + transfer) << _SEQ_BITS | seq,
                        _DECODE_ERR, ps, txn))
        else:
            history_append(txn)
            master = txn.master
            mon_master[master] = mon_master.get(master, 0) + 1
            slave = sstate.slave_name
            mon_slave[slave] = mon_slave.get(slave, 0) + 1
            push(heap, ((time + transfer) << _SEQ_BITS | seq,
                        _DELIVER, ps, (txn, sstate)))
        seq += 1

    while heap:
        key, op, a, b = pop(heap)
        time = key >> _SEQ_BITS
        sim._now = time
        n_events += 1

        if op == _EXEC:
            step(a, time)
        elif op == _SUBMIT:
            txn, transfer, sstate = b
            master = txn.master
            queue = waiting.get(master)
            if queue is None:
                queue = waiting[master] = deque()
                add_master(master)
            queue.append((txn, a, transfer, sstate))
            pending += 1
            bus_submitted += 1
            try_grant(time)
        elif op == _DELIVER:
            txn, sstate = b
            sstate.delivered += 1
            allowed, latency, result = sstate.req.call(txn)
            if allowed:
                push(heap, ((time + latency) << _SEQ_BITS | seq,
                            _ACCESS, a, b))
            else:
                sstate.blocked_requests += 1
                push(heap, (
                    (time + latency) << _SEQ_BITS | seq, _SBLOCK, a,
                    (txn, result.status or BLOCKED_AT_SLAVE, result.reason),
                ))
            seq += 1
        elif op == _ACCESS:
            txn, sstate = b
            latency, data = sstate.access(txn)
            bd = txn.latency_breakdown
            name = sstate.device_name
            bd[name] = bd.get(name, 0) + latency
            if data is not None and txn.operation is READ_OP:
                txn.data = data
            push(heap, ((time + latency) << _SEQ_BITS | seq, _SRESP, a, b))
            seq += 1
        elif op == _SRESP:
            txn, sstate = b
            allowed, latency, result = sstate.resp.call(txn)
            if allowed:
                push(heap, ((time + latency) << _SEQ_BITS | seq,
                            _RELEASE, a, txn))
            else:
                sstate.blocked_responses += 1
                push(heap, (
                    (time + latency) << _SEQ_BITS | seq, _SBLOCK, a,
                    (txn, result.status or BLOCKED_AT_SLAVE, result.reason),
                ))
            seq += 1
        elif op == _RELEASE:
            # _release_and_reply with the master's response path inline: the
            # master's follow-up schedules take sequence numbers *before* the
            # next grant's, exactly as the object path's synchronous reply.
            txn = b
            busy = False
            bus_completed += 1
            allowed, latency, result = a.mresp.call(txn)
            if allowed:
                push(heap, ((time + latency) << _SEQ_BITS | seq,
                            _MFIN, a, txn))
            else:
                a.p_blocked_responses += 1
                push(heap, (
                    (time + latency) << _SEQ_BITS | seq, _MBLOCK, a,
                    (txn, result.status or BLOCKED_AT_MASTER, result.reason),
                ))
            seq += 1
            try_grant(time)
        elif op == _MFIN:
            txn = b
            txn.completed_at = time
            txn.status = COMPLETED
            complete_master(a, txn, time)
        elif op == _SBLOCK:
            txn, status, reason = b
            txn.mark_blocked(time, status, reason)
            busy = False
            bus_completed += 1
            complete_master(a, txn, time)
            try_grant(time)
        elif op == _MBLOCK:
            txn, status, reason = b
            txn.mark_blocked(time, status, reason)
            complete_master(a, txn, time)
        elif op == _DECODE_ERR:
            txn = b
            txn.mark_blocked(time, DECODE_ERROR, "address decode error")
            busy = False
            bus_completed += 1
            complete_master(a, txn, time)
            try_grant(time)
        elif op == _ALIEN:
            # Run foreign callbacks (reconfiguration closures) on the real
            # simulator, then absorb anything they scheduled.
            sim._sequence = seq
            a(*b)
            if sim._queue:
                for ev in sim.drain_pending():
                    ekey = ev.time << _SEQ_BITS | ev.sequence
                    cb = ev.callback
                    if getattr(cb, "__func__", None) is _EXECUTE_NEXT:
                        push(heap, (ekey, _EXEC, by_proc[cb.__self__], None))
                    else:
                        push(heap, (ekey, _ALIEN, cb, ev.args))
            seq = sim._sequence
        else:  # pragma: no cover - unreachable
            raise EngineError(f"unknown opcode {op}")
        final_time = time

    if busy or any(waiting.values()):
        raise EngineError("transactions left in flight after drain")

    # Settle deferred state back onto the real platform objects.
    sim._sequence = seq
    sim.resync(final_time, n_events)

    for ps in pstates.values():
        _merge(ps.proc.stats, (
            ("compute_ops", ps.compute_ops),
            ("compute_cycles", ps.compute_cycles),
            ("memory_ops", ps.memory_ops),
            ("completed_accesses", ps.completed_accesses),
            ("blocked_accesses", ps.blocked_accesses),
            ("access_cycles", ps.access_cycles),
        ))
        _merge(ps.port.stats, (
            ("issued", ps.issued),
            ("blocked_requests", ps.p_blocked_requests),
            ("blocked_responses", ps.p_blocked_responses),
            ("completed", ps.p_completed),
            ("terminated", ps.p_terminated),
        ))
        ps.mreq.flush()
        ps.mresp.flush()
    for ss in sstates.values():
        _merge(ss.port.stats, (
            ("delivered", ss.delivered),
            ("blocked_requests", ss.blocked_requests),
            ("blocked_responses", ss.blocked_responses),
        ))
        ss.req.flush()
        ss.resp.flush()
    _merge(bus.stats, (
        ("submitted", bus_submitted),
        ("granted", bus_granted),
        ("completed", bus_completed),
        ("decode_errors", bus_decode_errors),
    ))
    per_master = monitor.per_master
    for master, count in mon_master.items():
        per_master[master] = per_master.get(master, 0) + count
    per_slave = monitor.per_slave
    for slave, count in mon_slave.items():
        per_slave[slave] = per_slave.get(slave, 0) + count

    return final_time, n_events


def _merge(stats: dict, items: Tuple[Tuple[str, int], ...]) -> None:
    for key, value in items:
        if value:
            stats[key] = stats.get(key, 0) + value


# Bound late to keep module import order simple.
from repro.soc import transaction as _transaction_mod  # noqa: E402

_READ = _transaction_mod.BusOperation.READ


def _next_txn_id() -> int:
    return next(_transaction_mod._txn_ids)
