"""Batch representation of a workload's transaction stream.

The vector engine does not interpret :class:`~repro.soc.processor.
MemoryOperation` objects one at a time.  At setup it lowers every processor's
program into a :class:`ProcessorBatch` — parallel arrays of the fields the
hot loop needs (operation kind, address, width, burst length, payload, bus
transfer cycles) — plus a *decode prepass* that resolves the address map for
every unique ``(address, size)`` shape in the whole stream before the first
cycle executes.  Policy evaluation is handled the same way by
:mod:`repro.engine.tables`, keyed on the decision-cache shape of
:class:`repro.core.local_firewall.SecurityBuilder`.

Programs are validated once here (the object path validates inside
``BusTransaction.__post_init__`` on every issue); a program the object path
would reject raises :class:`BatchError`, which the engine turns into a
run-level fallback so the object path reports the identical error.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.soc.address_map import AddressMap, DecodeError
from repro.soc.processor import OperationKind, Processor
from repro.soc.transaction import BusOperation, BusTransaction

__all__ = [
    "COMPUTE",
    "READ",
    "WRITE",
    "BatchError",
    "ProcessorBatch",
    "build_batch",
    "decode_prepass",
    "fabric_route_prepass",
    "make_transaction",
]


#: Operation codes of the ``kinds`` array.
COMPUTE, READ, WRITE = 0, 1, 2

_OPERATION = {READ: BusOperation.READ, WRITE: BusOperation.WRITE}


class BatchError(ValueError):
    """A program cannot be lowered to a batch (the object path would raise
    the matching error mid-run)."""


class ProcessorBatch:
    """One processor's program as parallel arrays (struct-of-arrays layout).

    ``kinds[i]`` selects the union member: COMPUTE rows use ``computes[i]``;
    READ/WRITE rows use ``operations/addresses/widths/bursts/sizes/datas/
    transfer_cycles/thread_ids``.  ``generation`` snapshots the policy
    generation visible when the batch was built (reporting only — the engine
    re-checks generations per lookup, which is what keeps mid-stream
    reconfiguration exact).
    """

    __slots__ = (
        "master",
        "kinds",
        "operations",
        "addresses",
        "widths",
        "bursts",
        "sizes",
        "datas",
        "computes",
        "transfer_cycles",
        "thread_ids",
        "generation",
    )

    def __init__(self, master: str) -> None:
        self.master = master
        self.kinds: List[int] = []
        self.operations: List[Optional[BusOperation]] = []
        self.addresses: List[int] = []
        self.widths: List[int] = []
        self.bursts: List[int] = []
        self.sizes: List[int] = []
        self.datas: List[Optional[bytes]] = []
        self.computes: List[int] = []
        self.transfer_cycles: List[int] = []
        self.thread_ids: List[Optional[int]] = []
        self.generation: int = 0

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def memory_shapes(self) -> List[Tuple[int, int]]:
        """Unique ``(address, size)`` pairs of the batch's memory accesses."""
        seen = {}
        for kind, address, size in zip(self.kinds, self.addresses, self.sizes):
            if kind != COMPUTE:
                seen[(address, size)] = None
        return list(seen)


def build_batch(
    processor: Processor,
    address_phase_cycles: int,
    data_phase_cycles_per_beat: int,
) -> ProcessorBatch:
    """Lower one processor's program into parallel arrays.

    Raises :class:`BatchError` for any operation the object path's
    ``BusTransaction`` constructor would reject, so the engine can fall back
    and let the object path produce the identical exception.
    """
    batch = ProcessorBatch(processor.name)
    append_kind = batch.kinds.append
    for op in processor.program.operations:
        if op.kind is OperationKind.COMPUTE:
            if op.compute_cycles < 0:
                raise BatchError(f"{processor.name}: negative compute burst")
            append_kind(COMPUTE)
            batch.operations.append(None)
            batch.addresses.append(0)
            batch.widths.append(0)
            batch.bursts.append(0)
            batch.sizes.append(0)
            batch.datas.append(None)
            batch.computes.append(op.compute_cycles)
            batch.transfer_cycles.append(0)
            batch.thread_ids.append(None)
            continue
        is_write = op.kind is OperationKind.WRITE
        size = op.width * op.burst_length
        if op.address < 0:
            raise BatchError(f"{processor.name}: negative address {op.address:#x}")
        if op.width not in (1, 2, 4):
            raise BatchError(f"{processor.name}: width {op.width} not in (1, 2, 4)")
        if op.burst_length < 1:
            raise BatchError(f"{processor.name}: burst_length {op.burst_length} < 1")
        if op.burst_length >= 1 << 16:
            # Keeps the chain tables' packed (address, width, burst, op)
            # shape keys collision-free.
            raise BatchError(
                f"{processor.name}: burst_length {op.burst_length} too large"
            )
        if is_write:
            if op.data is None:
                raise BatchError(f"{processor.name}: write without data")
            if len(op.data) != size:
                raise BatchError(
                    f"{processor.name}: write data length {len(op.data)} != {size}"
                )
        append_kind(WRITE if is_write else READ)
        batch.operations.append(_OPERATION[WRITE if is_write else READ])
        batch.addresses.append(op.address)
        batch.widths.append(op.width)
        batch.bursts.append(op.burst_length)
        batch.sizes.append(size)
        batch.datas.append(op.data if is_write else None)
        batch.computes.append(0)
        batch.transfer_cycles.append(
            address_phase_cycles + data_phase_cycles_per_beat * op.burst_length
        )
        batch.thread_ids.append(op.thread_id)
    return batch


def decode_prepass(
    address_map: AddressMap,
    batches: List[ProcessorBatch],
) -> Dict[Tuple[int, int], Optional[str]]:
    """Vectorized address-decode pass over every batch.

    Resolves each unique ``(address, size)`` shape of the combined stream to
    its target slave name — or ``None`` when the object path would raise a
    :class:`~repro.soc.address_map.DecodeError` (the engine then mirrors the
    bus's decode-error termination).  The returned table is the route lookup
    the hot loop uses instead of per-transaction map scans; shapes first seen
    at runtime (none, for pre-lowered batches) fall back to a live decode.
    """
    table: Dict[Tuple[int, int], Optional[str]] = {}
    decode = address_map.decode
    for batch in batches:
        for shape in batch.memory_shapes:
            if shape in table:
                continue
            try:
                region = decode(shape[0], shape[1])
            except DecodeError:
                table[shape] = None
            else:
                table[shape] = region.slave
    return table


def fabric_route_prepass(
    fabric,
    streams: Dict[str, set],
) -> Dict[str, Dict[Tuple[int, int], Optional[str]]]:
    """Resolve every unique shape of a fabric workload to its per-hop targets.

    ``streams`` maps each home segment name to the set of ``(address, size)``
    shapes issued there.  Each shape is first resolved through
    :meth:`~repro.soc.fabric.routing.FabricRouter.resolve_many` (one batched
    control-plane query per stream — an unroutable shape terminates with a
    decode error on its home segment, exactly as the object path would), then
    walked hop by hop through the *datapath* mechanism itself: each segment's
    own address map decodes the shape to either a local slave or the proxy
    region of the next-hop bridge.  Walking the maps rather than trusting
    ``Route.bridges`` keeps the prepass exact even when BFS tie-breaking and
    per-segment proxy installation could disagree on equal-length paths.

    Returns ``{segment name: {shape: slave name}}`` where the slave name is
    that segment's decode result (``"bridge:<name>"`` for a hop, the device's
    slave name at the final segment, ``None`` for a decode error).
    """
    per_segment: Dict[str, Dict[Tuple[int, int], Optional[str]]] = {
        name: {} for name in fabric.segments
    }
    segments = fabric.segments
    bridges = fabric.bridges
    max_hops = len(segments)
    for home, shapes in streams.items():
        routes = fabric.router.resolve_many(home, sorted(shapes))
        for shape, route in routes.items():
            if route is None:
                # Globally unmapped (or unroutable): the home segment's own
                # decode fails identically — proxy regions mirror the exact
                # geometry of the regions they forward to.
                per_segment[home].setdefault(shape, None)
                continue
            seg_name = home
            for _ in range(max_hops + 1):
                seg_map = per_segment[seg_name]
                slave = seg_map.get(shape, _UNRESOLVED)
                if slave is _UNRESOLVED:
                    seg = segments[seg_name]
                    try:
                        region = seg.address_map.decode(shape[0], shape[1])
                    except DecodeError:
                        seg_map[shape] = None
                        break
                    slave = region.slave
                    if slave not in seg._slave_ports:
                        # Mapped but unconnected: the segment reports a decode
                        # error (BusSegment._try_grant's second error branch).
                        seg_map[shape] = None
                        break
                    seg_map[shape] = slave
                if slave is None or not slave.startswith("bridge:"):
                    break
                seg_name = bridges[slave[7:]].other_segment(seg_name).name
            else:  # pragma: no cover - routing is loop-free by construction
                raise BatchError(f"route walk for shape {shape} did not terminate")
    return per_segment


_UNRESOLVED = object()


def make_transaction(
    master: str,
    operation: BusOperation,
    address: int,
    width: int,
    burst_length: int,
    data: Optional[bytes],
) -> BusTransaction:
    """Construct a pre-validated :class:`BusTransaction` without re-running
    the dataclass validation (the batch already performed it)."""
    return BusTransaction.blank(
        master=master,
        operation=operation,
        address=address,
        width=width,
        burst_length=burst_length,
        data=data,
    )
