"""Batch transaction engines.

Two interchangeable ways to execute a scenario's protected workload:

* the **object** engine — the event-driven kernel in :mod:`repro.soc.kernel`,
  one ``Event`` per pipeline stage per transaction; always available, always
  correct, and the reference the vector engine is held to;
* the **vector** engine (:mod:`repro.engine.vector`) — lowers each processor
  program to parallel arrays, pre-resolves address decode per unique shape,
  replays firewall verdicts from per-chain profile tables, and drains the
  whole stream through a specialised mirrored calendar.  Falls back to the
  object path (whole-run or per-call) whenever exact mirroring is not
  guaranteed.

Engine selection is a first-class experiment parameter
(:class:`~repro.engine.spec.EngineSpec`, surfaced as
``Experiment.with_engine`` / ``--engine`` / the ``engines`` sweep axis) and
never changes results — only wall-clock speed.  ``mode="auto"`` means
"vector where eligible, object otherwise".
"""

from repro.engine.batch import BatchError, ProcessorBatch, build_batch, decode_prepass
from repro.engine.spec import ENGINE_MODES, EngineReport, EngineSpec
from repro.engine.tables import ChainTable
from repro.engine.vector import EngineError, drive_workload, eligibility

__all__ = [
    "ENGINE_MODES",
    "EngineSpec",
    "EngineReport",
    "EngineError",
    "BatchError",
    "ProcessorBatch",
    "ChainTable",
    "build_batch",
    "decode_prepass",
    "eligibility",
    "drive_workload",
]
