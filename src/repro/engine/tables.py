"""Per-batch filter-chain lookup tables (the vector engine's policy pass).

The object path runs every transaction through
:func:`repro.soc.ports.apply_filter_chain` — a Python call per filter, a
policy lookup, four checking modules.  The vector engine instead *profiles*
each chain once per transaction shape and then *replays* the recorded
outcome for every later transaction of the same shape.

The shape key reuses the decision-cache semantics of
:class:`repro.core.local_firewall.SecurityBuilder`, hoisted to the
granularity a whole batch needs: a verdict is a pure function of the
*policy rule* covering the address (not the address itself), the operation,
the width and the burst length — with the rule-set generation, quarantine
flag and window signature hoisted into a *guard*.  One profile therefore
covers every address a rule spans, which is what makes replay the common
case on synthetic workloads whose working sets sweep whole regions.  The
profile records everything a real chain call does to the world:

* the verdict latency,
* the latency-breakdown writes (including zero-cycle stage entries, which
  create keys),
* the annotation writes (``secpol_req_by`` via setdefault, per-firewall SPI),
* the exact statistic deltas (LFCB/SB/FI counters, alert counts,
  configuration memory lookup counts) — applied in bulk when the run drains,
  which is sound because nothing observes firewall counters mid-workload,
* the Security Builder's own cache entry for the shape, so replays keep the
  per-address decision cache (contents, hit/miss counters, eviction) exactly
  as the object path would leave it.

Profiles are keyed by rule, but *resolved* per address-shape: the first
transaction of a given ``(address, width, burst, operation)`` pays the rule
lookup and interns the resolved profile in a flat map under a single packed
integer, so every later same-shape transaction replays after one int-keyed
probe.  A table ``version`` (bumped whenever any firewall's guard state
changes) keeps the interned map honest without per-entry guard storage.

A chain is only ever profiled when every filter is a plain
:class:`~repro.core.local_firewall.LocalFirewall` with stateless checking
modules (or a :class:`~repro.soc.ports.PassthroughFilter`): exactly the
precondition of the Security Builder's own cache.  Ciphering firewalls,
custom filters, denying shapes and data-transforming shapes always take the
real call — those are the fallback triggers (alerts, ciphering, stateful
heuristics), and the real call *is* the object path, so alert ordering and
side effects are identical by construction.  Flood-armed firewalls replay,
with the DoS heuristic's sliding window mirrored on every replayed request;
a request that would trip it takes the real call (raising the TRAFFIC_FLOOD
alert at that exact cycle).

Guard changes (reconfiguration bumping the configuration-memory generation,
quarantine flipping, window fencing) invalidate the whole table: pending
counter deltas are flushed and the next transaction of each shape takes real
calls again — reproducing the object path's cache invalidation, including
the post-reconfiguration alerts, at the exact same cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.local_firewall import _STATELESS_CHECKS, LocalFirewall
from repro.soc.ports import (
    FilterResult,
    PassthroughFilter,
    TransactionFilter,
    apply_filter_chain,
)
from repro.soc.transaction import BusOperation, BusTransaction

__all__ = ["ChainTable"]

_WRITE = BusOperation.WRITE


# Profile lifecycle.
_FRESH = 0      # never called under the current guard
_WARMED = 1     # one real call made (decision cache primed); measure next
_REPLAY = 2     # template recorded; replay while the guard holds
_REAL = 3       # shape denies/transforms/alerts: always take the real call

# Rule tokens for addresses no rule covers.
_DEFAULT_POLICY = -1
_POLICY_MISS = -2

_TRIVIAL = (True, 0, None)


class _Handle:
    """Pre-resolved attribute handles for one LocalFirewall in a chain."""

    __slots__ = ("fw", "cb", "sb", "fi", "cm", "arc", "spi_key",
                 "cache_enabled", "rule_map", "rule_gen",
                 "pend_hits", "pend_misses", "sim", "cycles",
                 "g_gen", "g_q", "g_wlen", "g_wsig")

    def __init__(self, fw: LocalFirewall) -> None:
        self.fw = fw
        self.cb = fw.communication_block
        self.sb = fw.security_builder
        self.fi = fw.firewall_interface
        self.cm = fw.security_builder.config_memory
        self.arc = fw.security_builder.address_range_check()
        self.spi_key = f"{fw.name}.spi"
        self.cache_enabled = fw.security_builder.cache_enabled
        self.sim = fw.sim
        self.cycles = fw._request_cycles
        # (address, size) -> rule token, valid for one rule-set generation.
        self.rule_map: Dict[Tuple[int, int], int] = {}
        self.rule_gen = self.cm.generation
        # Deferred decision-cache hit/miss counts settled at flush().
        self.pend_hits = 0
        self.pend_misses = 0
        self.refresh_guard()

    def refresh_guard(self) -> None:
        """Re-baseline the guard state this handle's profiles assume.

        ``g_wlen``/``g_wsig`` snapshot the address-range windows (quarantine
        fences).  Window lists are only ever *installed* or extended by the
        manager, never edited in place entry-by-entry, so a length compare is
        an exact staleness test for them.
        """
        self.g_gen = self.cm.generation
        self.g_q = self.fw.quarantined
        arc = self.arc
        if arc is None or not arc.windows:
            self.g_wlen = 0
            self.g_wsig: tuple = ()
        else:
            self.g_wlen = len(arc.windows)
            self.g_wsig = tuple(tuple(w) for w in arc.windows)

    def token(self, address: int, size: int) -> int:
        """Identity of the policy rule governing a shape (its base address),
        or a sentinel for default-policy / default-deny shapes."""
        cm = self.cm
        if self.rule_gen != cm.generation:
            self.rule_map.clear()
            self.rule_gen = cm.generation
        token = self.rule_map.get((address, size))
        if token is None:
            rule = cm.rule_for(address, size)
            if rule is not None:
                token = rule.base
            elif cm.default_policy is not None:
                token = _DEFAULT_POLICY
            else:
                token = _POLICY_MISS
            self.rule_map[(address, size)] = token
        return token


class _Profile:
    """Recorded outcome of one (chain, transaction shape) pair."""

    __slots__ = ("phase", "latency", "reply", "bd_items", "ann_ops",
                 "counter_deltas", "cache_handles", "cache_entries", "count",
                 "hit_replays")

    def __init__(self) -> None:
        self.phase = _FRESH
        self.latency = 0
        # Preallocated (allowed, latency, result) return value of a replay.
        self.reply: Tuple[bool, int, None] = (True, 0, None)
        self.bd_items: Tuple[Tuple[str, int], ...] = ()
        self.ann_ops: Tuple[Tuple[int, str, object], ...] = ()
        self.counter_deltas: Tuple[Tuple[object, str, int], ...] = ()
        # Handles whose Security Builder cache holds a verdict for this shape
        # (absent for response short-circuits and cache-disabled reference
        # runs), with the memoised payload replays install under fresh
        # addresses.
        self.cache_handles: Tuple["_Handle", ...] = ()
        self.cache_entries: Tuple[tuple, ...] = ()
        self.count = 0
        # Replays of already-primed address-shapes: each is one decision-cache
        # hit per consulted Security Builder, settled in bulk at flush time so
        # the hot path pays a single increment instead of a handle loop.
        self.hit_replays = 0


class ChainTable:
    """Profile/replay front-end for one port filter chain and direction."""

    __slots__ = ("call", "filters", "direction", "trivial", "always_real",
                 "handles", "flood_handles", "counter_pairs", "profiles",
                 "shape_map", "version", "real_calls", "replayed", "_guards")

    def __init__(self, filters: Sequence[TransactionFilter], direction: str) -> None:
        self.filters = list(filters)
        self.direction = direction
        self.trivial = not self.filters
        self.always_real = not all(self._profileable(f) for f in self.filters)
        self.handles: List[_Handle] = [
            _Handle(f) for f in self.filters if type(f) is LocalFirewall
        ]
        # Flood-armed firewalls mirror their request-cycle sliding window on
        # every replayed request (the heuristic only observes the request
        # direction).
        self.flood_handles: List[_Handle] = [
            h for h in self.handles
            if direction == "request" and h.fw.flood_threshold is not None
        ]
        # Statistic cells a chain call can touch, deduplicated (firewalls may
        # share a configuration memory).  The decision-cache hit/miss counters
        # are deliberately absent: replays settle those through the handles'
        # pend_hits/pend_misses so first-seen addresses still count as misses.
        pairs: List[Tuple[object, str]] = []
        seen = set()
        for h in self.handles:
            for obj, attr in (
                (h.cb, "secpol_requests"),
                (h.sb, "evaluations"), (h.sb, "violations"),
                (h.sb, "cycles_charged"),
                (h.fi, "passed"), (h.fi, "discarded"),
                (h.fw, "alerts_raised"),
                (h.cm, "lookup_count"), (h.cm, "miss_count"),
            ):
                if (id(obj), attr) not in seen:
                    seen.add((id(obj), attr))
                    pairs.append((obj, attr))
        self.counter_pairs = pairs
        self.profiles: Dict[tuple, _Profile] = {}
        # Packed (address, width, burst, op) -> [profile, primed]; the
        # interned steady-state view of `profiles`, cleared on guard changes.
        self.shape_map: Dict[int, list] = {}
        # Bumped whenever any handle's guard state changes.
        self.version = 0
        self.real_calls = 0
        self.replayed = 0
        self._rebuild_guards()
        # ``call`` dispatches once, at construction: the replay hot path
        # never re-tests the trivial/always-real chain classification.
        if self.trivial:
            self.call = self._call_trivial
        elif self.always_real:
            self.call = self._call_real
        else:
            self.call = self._call_replayable

    @staticmethod
    def _profileable(filt: TransactionFilter) -> bool:
        if type(filt) is PassthroughFilter:
            return True
        # Exact type: subclasses (the ciphering firewall, thread-aware
        # variants) have data- or state-dependent verdicts.
        if type(filt) is not LocalFirewall:
            return False
        return all(
            type(check) in _STATELESS_CHECKS
            for check in filt.security_builder.checks
        )

    # -- guard ----------------------------------------------------------------

    def _rebuild_guards(self) -> None:
        """Flatten each handle's guard baseline into one tuple so the hot
        path's staleness test costs single attribute loads instead of
        ``h.cm.generation``-style double hops."""
        self._guards = [
            (h.cm, h.g_gen, h.fw, h.g_q, h.arc, h.g_wlen) for h in self.handles
        ]

    def _settle_profiles(self) -> None:
        """Apply each profile's deferred statistics: counter deltas, the
        replay total, and primed-replay decision-cache hits."""
        for prof in self.profiles.values():
            count = prof.count
            if count:
                for obj, attr, delta in prof.counter_deltas:
                    setattr(obj, attr, getattr(obj, attr) + delta * count)
                self.replayed += count
                prof.count = 0
            hits = prof.hit_replays
            if hits:
                for h in prof.cache_handles:
                    h.pend_hits += hits
                prof.hit_replays = 0

    def _invalidate(self) -> None:
        """A guard changed (reconfiguration, quarantine, fencing): flush every
        profile's deferred statistics, drop the profiles and re-baseline — the
        next call of each shape takes real calls again, reproducing the object
        path's cache miss (and any fresh alert) at that exact cycle."""
        self._settle_profiles()
        self.profiles.clear()
        self.shape_map.clear()
        self.version += 1
        for h in self.handles:
            h.refresh_guard()
        self._rebuild_guards()

    def _key(self, txn: BusTransaction) -> tuple:
        """Profile key: rule identity per firewall plus the shape parameters
        the stateless checks read.  When any firewall carries address-range
        windows (a quarantine fence), the raw address joins the key — the
        window check is the one check that reads it."""
        address = txn.address
        size = txn.size
        windowed = False
        tokens = []
        for h in self.handles:
            tokens.append(h.token(address, size))
            if h.g_wlen:
                windowed = True
        return (
            txn.operation,
            txn.width,
            txn.burst_length,
            address if windowed else None,
            *tokens,
        )

    # -- hot path --------------------------------------------------------------

    def _call_trivial(self, txn: BusTransaction) -> Tuple[bool, int, None]:
        return _TRIVIAL

    def _call_real(
        self, txn: BusTransaction
    ) -> Tuple[bool, int, FilterResult]:
        self.real_calls += 1
        result = apply_filter_chain(self.filters, txn, self.direction)
        return result.allowed, result.latency, result

    def _call_replayable(
        self, txn: BusTransaction
    ) -> Tuple[bool, int, Optional[FilterResult]]:
        """Run ``txn`` through the chain, by replay when a valid profile
        exists, by real call otherwise.

        Returns ``(allowed, latency, result)``; ``result`` is the merged
        :class:`FilterResult` of a real call (needed for deny status/reason)
        and None for a replayed allow.
        """
        for cm, gen, fw, q, arc, wlen in self._guards:
            if (
                cm.generation != gen
                or fw.quarantined != q
                or (arc is not None and len(arc.windows or ()) != wlen)
            ):
                self._invalidate()
                break

        # width and burst_length are validated < 2**16 at batch build, so the
        # packed key is collision-free.
        ikey = (
            ((txn.address << 16 | txn.width) << 16 | txn.burst_length) << 1
            | (txn.operation is _WRITE)
        )
        entry = self.shape_map.get(ikey)
        if entry is not None:
            prof = entry[0]
            # Mirror the DoS heuristic's sliding window.  When this request
            # would trip it, take the real call (which raises the
            # TRAFFIC_FLOOD alert — and denies, under flood_block — at this
            # exact cycle); the profile itself stays valid.
            flood_handles = self.flood_handles
            if flood_handles:
                for h in flood_handles:
                    cycles = h.cycles
                    cutoff = h.sim._now - h.fw.flood_window
                    while cycles and cycles[0] < cutoff:
                        cycles.popleft()
                    if len(cycles) >= h.fw.flood_threshold:
                        self.real_calls += 1
                        result = apply_filter_chain(
                            self.filters, txn, self.direction
                        )
                        return result.allowed, result.latency, result
                for h in flood_handles:
                    h.cycles.append(h.sim._now)
            bd_items = prof.bd_items
            if bd_items:
                bd = txn.latency_breakdown
                for stage, delta in bd_items:
                    bd[stage] = bd.get(stage, 0) + delta
            ann_ops = prof.ann_ops
            if ann_ops:
                ann = txn.annotations
                for op, k, v in ann_ops:
                    if op or k not in ann:
                        ann[k] = v
            # Decision-cache mirror.  The first replay of an address-shape
            # probes the real cache (a fresh address is a miss that installs
            # the shape's memoised verdict, exactly as the object path's miss
            # would); after that the shape's key is resident until the next
            # guard change, so later replays only count a hit — deferred to
            # flush through the profile's ``hit_replays``.
            if entry[1]:
                prof.hit_replays += 1
            elif prof.cache_handles:
                address = txn.address
                size = txn.size
                is_write = txn.is_write
                width = txn.width
                burst = txn.burst_length
                for h, payload in zip(prof.cache_handles, prof.cache_entries):
                    cache = h.sb._cache
                    ckey = (address, size, is_write, width, burst, h.g_wsig)
                    if ckey in cache:
                        h.pend_hits += 1
                    else:
                        if len(cache) >= h.sb.CACHE_LIMIT:
                            cache.clear()
                        cache[ckey] = payload
                        h.pend_misses += 1
                entry[1] = True
            else:
                entry[1] = True
            prof.count += 1
            return prof.reply

        allowed, latency, result, prof = self._call_keyed(txn)
        if prof is not None:
            # Whichever path produced the profile (measure or first replay of
            # a fresh address), this transaction's decision-cache key is now
            # resident in every consulted Security Builder.
            self.shape_map[ikey] = [prof, True]
        return allowed, latency, result

    def _call_keyed(
        self, txn: BusTransaction
    ) -> Tuple[bool, int, Optional[FilterResult], Optional[_Profile]]:
        """Resolve a call through the shape-keyed profile store.  The guard is
        already known fresh.  Returns the profile (for row caching) when it is
        replayable."""
        key = self._key(txn)
        prof = self.profiles.get(key)
        if prof is None:
            prof = _Profile()
            self.profiles[key] = prof

        phase = prof.phase
        if phase == _REPLAY:
            # Row-cache miss on an already-replayable shape (first transaction
            # of a new row sharing a profiled shape): replay with the full
            # cache probe, and let the caller cache the profile for the row.
            allowed, latency, result = self._replay_once(prof, txn)
            return allowed, latency, result, prof

        self.real_calls += 1

        if phase == _REAL:
            result = apply_filter_chain(self.filters, txn, self.direction)
            return result.allowed, result.latency, result, None

        if phase == _WARMED:
            allowed, latency, result = self._measure(prof, txn)
            return allowed, latency, result, (prof if prof.phase == _REPLAY else None)

        # _FRESH: plain real call that primes the Security Builder's decision
        # cache for this shape.
        data_before = txn.data
        alerts_before = sum(h.fw.alerts_raised for h in self.handles)
        result = apply_filter_chain(self.filters, txn, self.direction)
        if (
            not result.allowed
            or txn.data is not data_before
            or sum(h.fw.alerts_raised for h in self.handles) != alerts_before
        ):
            prof.phase = _REAL
        else:
            prof.phase = _WARMED
        return result.allowed, result.latency, result, None

    def _replay_once(
        self, prof: _Profile, txn: BusTransaction
    ) -> Tuple[bool, int, Optional[FilterResult]]:
        """One replay outside a row cache (flood mirror + full cache probe)."""
        flood_handles = self.flood_handles
        if flood_handles:
            for h in flood_handles:
                cycles = h.cycles
                cutoff = h.sim._now - h.fw.flood_window
                while cycles and cycles[0] < cutoff:
                    cycles.popleft()
                if len(cycles) >= h.fw.flood_threshold:
                    self.real_calls += 1
                    result = apply_filter_chain(self.filters, txn, self.direction)
                    return result.allowed, result.latency, result
            for h in flood_handles:
                h.cycles.append(h.sim._now)
        bd = txn.latency_breakdown
        for stage, delta in prof.bd_items:
            bd[stage] = bd.get(stage, 0) + delta
        ann = txn.annotations
        for op, k, v in prof.ann_ops:
            if op or k not in ann:
                ann[k] = v
        if prof.cache_handles:
            address = txn.address
            size = txn.size
            is_write = txn.is_write
            width = txn.width
            burst = txn.burst_length
            for h, payload in zip(prof.cache_handles, prof.cache_entries):
                cache = h.sb._cache
                ckey = (address, size, is_write, width, burst, h.g_wsig)
                if ckey in cache:
                    h.pend_hits += 1
                else:
                    if len(cache) >= h.sb.CACHE_LIMIT:
                        cache.clear()
                    cache[ckey] = payload
                    h.pend_misses += 1
        prof.count += 1
        return prof.reply

    def _measure(
        self, prof: _Profile, txn: BusTransaction
    ) -> Tuple[bool, int, Optional[FilterResult]]:
        """Second call under an unchanged guard: the chain is in its steady
        state (decision cache primed), so this call's side effects are exactly
        what every later same-shape transaction would observe — record them."""
        pairs = self.counter_pairs
        before = [getattr(obj, attr) for obj, attr in pairs]
        cache_before = [h.sb.cache_hits + h.sb.cache_misses for h in self.handles]
        bd_before = dict(txn.latency_breakdown)
        ann_before = set(txn.annotations)
        data_before = txn.data

        result = apply_filter_chain(self.filters, txn, self.direction)

        after = [getattr(obj, attr) for obj, attr in pairs]
        alerts_changed = any(
            b != a and attr == "alerts_raised"
            for (obj, attr), b, a in zip(pairs, before, after)
        )
        if not result.allowed or txn.data is not data_before or alerts_changed:
            prof.phase = _REAL
            return result.allowed, result.latency, result

        prof.latency = result.latency
        prof.reply = (True, result.latency, None)
        prof.counter_deltas = tuple(
            (obj, attr, a - b)
            for (obj, attr), b, a in zip(pairs, before, after)
            if a != b
        )
        # The memoised verdict each firewall holds for this shape — replays
        # install it under fresh addresses exactly as a real miss would.
        cache_handles: List[_Handle] = []
        entries: List[tuple] = []
        for h, consulted_before in zip(self.handles, cache_before):
            consulted = (h.sb.cache_hits + h.sb.cache_misses) != consulted_before
            if consulted and h.cache_enabled:
                payload = h.sb._cache.get(h.sb.decision_key(txn))
                if payload is not None:
                    cache_handles.append(h)
                    entries.append(payload)
        prof.cache_handles = tuple(cache_handles)
        prof.cache_entries = tuple(entries)
        bd_after = txn.latency_breakdown
        prof.bd_items = tuple(
            (stage, cycles - bd_before.get(stage, 0))
            for stage, cycles in bd_after.items()
            if stage not in bd_before or cycles != bd_before[stage]
        )
        ops: List[Tuple[int, str, object]] = []
        if self.direction == "request":
            for h in self.handles:
                ops.append((0, "secpol_req_by", h.cb.name))
                spi = txn.annotations.get(h.spi_key)
                if spi is not None and h.spi_key not in ann_before:
                    ops.append((1, h.spi_key, spi))
        prof.ann_ops = tuple(ops)
        prof.count = 0
        prof.phase = _REPLAY
        return True, result.latency, result

    # -- deferred statistics ----------------------------------------------------

    def flush(self) -> None:
        """Apply every deferred statistic delta (end of drain)."""
        self._settle_profiles()
        for h in self.handles:
            if h.pend_hits:
                h.sb.cache_hits += h.pend_hits
                h.pend_hits = 0
            if h.pend_misses:
                h.sb.cache_misses += h.pend_misses
                h.pend_misses = 0
