"""Engine selection: which execution core drives a scenario's workload.

The simulator has two ways to execute a workload's protected transaction
stream:

* the **object** engine — the original event-at-a-time kernel loop of
  :mod:`repro.soc.kernel`, one :class:`~repro.soc.kernel.Event` per pipeline
  hop of every transaction,
* the **vector** engine (:mod:`repro.engine.vector`) — a batch execution core
  that pre-decodes each processor's program into parallel arrays, resolves
  address decode and firewall policy as memoised passes over whole batches,
  and drains matched transactions through a mirrored calendar queue in one
  pass, falling back to real firewall/device calls only where behaviour is
  data- or time-dependent (alerts, reconfiguration, ciphering).

Both engines are *required* to be observationally identical: same alerts,
same cycle counts, same ciphertexts, same structural fingerprints (the
differential harness in :mod:`repro.scenarios.differential` is the contract).
``EngineSpec`` makes the choice explicit, serialisable and sweepable — it
lives on :class:`~repro.scenarios.spec.ScenarioSpec`, is threaded through the
:class:`~repro.api.experiment.Experiment` façade and the CLI, and is part of
the sweep store's cache key for non-default engines.

This module is plain data with no intra-package imports, so every layer
(scenarios, api, sweep) can use it without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["ENGINE_MODES", "EngineSpec", "EngineReport"]


#: Selectable execution engines.  ``auto`` picks the vector engine whenever
#: the platform is eligible and silently uses the object engine otherwise;
#: ``vector`` does the same but records the fallback reason prominently in
#: the engine report (the result is identical either way — eligibility is a
#: performance property, never a correctness one).
ENGINE_MODES: Tuple[str, ...] = ("object", "vector", "auto")


@dataclass(frozen=True)
class EngineSpec:
    """Which execution engine a scenario's workload phase runs on."""

    mode: str = "object"

    def validate(self) -> None:
        if self.mode not in ENGINE_MODES:
            raise ValueError(
                f"engine mode must be one of {ENGINE_MODES}, got {self.mode!r}"
            )


@dataclass
class EngineReport:
    """What actually executed one workload phase.

    ``used`` is ``"vector"`` or ``"object"``; when a vector/auto request fell
    back to the object path, ``fallback_reason`` says why.  The batch counters
    quantify how much of the stream the vector engine served from its
    per-batch lookup tables (``replayed``) versus real firewall-chain calls
    (``real_calls`` — warm-up, alert-raising, ciphering and post-
    reconfiguration traffic).  ``extra`` carries engine-specific detail;
    fabric runs record ``extra["fabric"] = {"segments": n, "bridges": n}``
    for the topology the mirrored drain covered.
    """

    requested: str
    used: str
    fallback_reason: Optional[str] = None
    events: int = 0
    batches: Tuple[Tuple[str, int], ...] = ()  # (master, operations)
    unique_shapes: int = 0
    profiles: int = 0
    replayed: int = 0
    real_calls: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "requested": self.requested,
            "used": self.used,
            "fallback_reason": self.fallback_reason,
            "events": self.events,
            "batches": [list(entry) for entry in self.batches],
            "unique_shapes": self.unique_shapes,
            "profiles": self.profiles,
            "replayed": self.replayed,
            "real_calls": self.real_calls,
            **({"extra": dict(self.extra)} if self.extra else {}),
        }
