"""Latency and throughput of the firewall modules (Table II).

Table II of the paper reports per-module figures measured on the ML605
platform:

=====================  ==========  ==================
module                  cycles      throughput (Mb/s)
=====================  ==========  ==================
SB (LF / LCF)           12          --
CC                      11          450
IC                      20          131
=====================  ==========  ==================

In the reproduction those cycle counts are *inputs* of the behavioural model
(the firewalls charge them per operation — see :mod:`repro.core.constants`),
so the interesting measurement is the *per-operation average actually charged
on a running platform*: if the plumbing is right, a transaction through the
Security Builder pays exactly 12 cycles per evaluation, the Confidentiality
Core 11 cycles per 128-bit block and the Integrity Core 20 cycles per
protected block, no matter how transactions overlap.  ``generate_table2``
extracts those averages from live firewall instances and reports them next to
the paper values, together with two throughput figures: the paper's measured
throughput (which includes memory-subsystem effects we cannot reproduce) and
the ideal pipeline throughput implied by the cycle counts at the 100 MHz bus
clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.constants import (
    AES_BLOCK_BITS,
    BUS_CLOCK_HZ,
    CONFIDENTIALITY_CORE_CYCLES,
    CONFIDENTIALITY_CORE_THROUGHPUT_MBPS,
    INTEGRITY_BLOCK_BYTES,
    INTEGRITY_CORE_CYCLES,
    INTEGRITY_CORE_THROUGHPUT_MBPS,
    SECURITY_BUILDER_CYCLES,
)

__all__ = [
    "PAPER_TABLE2",
    "Table2Row",
    "LatencyModel",
    "generate_table2",
    "per_hop_latency",
    "aggregate_hop_latency",
    "PlacementRow",
    "placement_split",
]


#: Paper Table II, verbatim: module -> (cycles, throughput Mb/s or None).
PAPER_TABLE2: Dict[str, tuple] = {
    "SB (LF/LCF)": (SECURITY_BUILDER_CYCLES, None),
    "CC": (CONFIDENTIALITY_CORE_CYCLES, CONFIDENTIALITY_CORE_THROUGHPUT_MBPS),
    "IC": (INTEGRITY_CORE_CYCLES, INTEGRITY_CORE_THROUGHPUT_MBPS),
}


@dataclass(frozen=True)
class Table2Row:
    """One row of the regenerated Table II."""

    module: str
    measured_cycles: float
    paper_cycles: int
    ideal_throughput_mbps: Optional[float]
    paper_throughput_mbps: Optional[float]
    operations: int

    @property
    def cycles_match_paper(self) -> bool:
        """Whether the measured per-operation cycles equal the paper's figure."""
        return abs(self.measured_cycles - self.paper_cycles) < 1e-9


class LatencyModel:
    """Helpers converting cycle counts to time and throughput."""

    def __init__(self, clock_hz: float = BUS_CLOCK_HZ) -> None:
        if clock_hz <= 0:
            raise ValueError("clock frequency must be positive")
        self.clock_hz = clock_hz

    def cycles_to_us(self, cycles: float) -> float:
        """Convert cycles to microseconds at the bus clock."""
        return cycles / self.clock_hz * 1e6

    def pipeline_throughput_mbps(self, bits_per_operation: int, cycles_per_operation: float) -> float:
        """Ideal streaming throughput of a module, in Mb/s.

        One operation (``bits_per_operation`` bits) retires every
        ``cycles_per_operation`` cycles.
        """
        if cycles_per_operation <= 0:
            raise ValueError("cycles_per_operation must be positive")
        bits_per_second = bits_per_operation * self.clock_hz / cycles_per_operation
        return bits_per_second / 1e6

    def transaction_security_overhead(self, txn) -> int:
        """Security cycles charged to one transaction (SB + CC + IC stages)."""
        return txn.security_latency


def _safe_ratio(total: float, count: int) -> float:
    return total / count if count else 0.0


# ---------------------------------------------------------------------------
# Per-hop latency attribution (hierarchical fabrics)
# ---------------------------------------------------------------------------
#
# On a multi-segment fabric a transaction's latency breakdown carries one
# bucket per hop: ``"bus"`` (flat bus) or ``"bus:<segment>"`` per segment
# crossed, plus ``"bridge:<name>"`` per bridge forwarding.  Splitting those
# out — and splitting the Security Builder cycles by firewall placement —
# is what lets a Table-II-style account compare leaf-firewall cycles against
# bridge-firewall cycles on the same workload.


def per_hop_latency(txn) -> Dict[str, int]:
    """Hop-attributed cycles of one transaction.

    Keys are ``"bus"`` / ``"bus:<segment>"`` for segment transfers and
    ``"bridge:<name>"`` for bridge forwarding; everything else in the
    breakdown (device access, firewall stages) is not a hop and is excluded.
    """
    return {
        stage: cycles
        for stage, cycles in txn.latency_breakdown.items()
        if stage == "bus" or stage.startswith("bus:") or stage.startswith("bridge:")
    }


def aggregate_hop_latency(transactions) -> Dict[str, int]:
    """Sum of :func:`per_hop_latency` over a transaction collection.

    Duplicates are counted once: a fabric monitor's merged history holds one
    entry per *hop observation* (the same transaction object appears once per
    segment it crossed), while each transaction's breakdown already carries
    its whole path — summing every appearance would multiply a multi-hop
    transaction's cycles by its hop count.
    """
    totals: Dict[str, int] = {}
    seen = set()
    for txn in transactions:
        if txn.txn_id in seen:
            continue
        seen.add(txn.txn_id)
        for stage, cycles in per_hop_latency(txn).items():
            totals[stage] = totals.get(stage, 0) + cycles
    return totals


@dataclass(frozen=True)
class PlacementRow:
    """Security Builder accounting for one firewall placement class."""

    placement: str
    firewalls: int
    evaluations: int
    cycles: int

    @property
    def mean_cycles(self) -> float:
        """Average SB cycles charged per evaluation (12 when plumbed right)."""
        return _safe_ratio(self.cycles, self.evaluations)


def placement_split(security) -> List[PlacementRow]:
    """Split Security Builder work by firewall placement.

    ``security`` is a :class:`repro.core.secure.SecuredPlatform`; the rows
    cover the leaf master/slave Local Firewalls, the bridge-placed Local
    Firewalls and the Local Ciphering Firewalls, in that order.  On a flat
    platform the bridge row simply reports zero firewalls.
    """
    groups = (
        ("leaf_master", security.master_firewalls.values()),
        ("leaf_slave", security.slave_firewalls.values()),
        ("bridge", security.bridge_firewalls.values()),
        ("lcf", security.ciphering_firewalls.values()),
    )
    rows = []
    for placement, firewalls in groups:
        firewalls = list(firewalls)
        rows.append(
            PlacementRow(
                placement=placement,
                firewalls=len(firewalls),
                evaluations=sum(f.security_builder.evaluations for f in firewalls),
                cycles=sum(f.security_builder.cycles_charged for f in firewalls),
            )
        )
    return rows


def generate_table2(
    local_firewalls: List,
    ciphering_firewall,
    model: Optional[LatencyModel] = None,
) -> List[Table2Row]:
    """Regenerate Table II from live firewall instances.

    ``local_firewalls`` may include the ciphering firewall as well (its
    Security Builder counts contribute to the SB row, exactly as the paper
    reports one SB figure for LF and LCF together).
    """
    model = model or LatencyModel()

    sb_evaluations = 0
    sb_cycles = 0
    for firewall in local_firewalls:
        sb_evaluations += firewall.security_builder.evaluations
        sb_cycles += firewall.security_builder.cycles_charged
    if ciphering_firewall is not None and ciphering_firewall not in local_firewalls:
        sb_evaluations += ciphering_firewall.security_builder.evaluations
        sb_cycles += ciphering_firewall.security_builder.cycles_charged

    rows = [
        Table2Row(
            module="SB (LF/LCF)",
            measured_cycles=_safe_ratio(sb_cycles, sb_evaluations),
            paper_cycles=SECURITY_BUILDER_CYCLES,
            ideal_throughput_mbps=None,
            paper_throughput_mbps=None,
            operations=sb_evaluations,
        )
    ]

    if ciphering_firewall is not None:
        cc = ciphering_firewall.confidentiality_core
        ic = ciphering_firewall.integrity_core
        cc_cycles_per_block = _safe_ratio(cc.cycles_charged, cc.blocks_processed)
        ic_ops = ic.blocks_verified + ic.blocks_updated
        ic_cycles_per_block = _safe_ratio(ic.cycles_charged, ic_ops)

        # Streaming throughput of the Integrity Core is limited by the hash-
        # tree walk: authenticating one leaf requires hashing every level up
        # to the root, so the effective cycles per 256-bit leaf are
        # ``IC_CYCLES x (depth + 1)``.  This is what brings the paper's IC
        # figure (131 Mb/s) far below the CC figure (450 Mb/s) even though a
        # single hash is only 20 cycles.  The depth used here is the average
        # over the LCF's integrity-protected regions (fallback: 10 levels,
        # the depth of a 32 KiB region with 32-byte leaves).
        integrity_trees = [
            region.tree for region in ciphering_firewall.protected_regions if region.tree is not None
        ]
        if integrity_trees:
            average_levels = sum(tree.depth + 1 for tree in integrity_trees) / len(integrity_trees)
        else:
            average_levels = 10.0
        rows.append(
            Table2Row(
                module="CC",
                measured_cycles=cc_cycles_per_block,
                paper_cycles=CONFIDENTIALITY_CORE_CYCLES,
                ideal_throughput_mbps=model.pipeline_throughput_mbps(
                    AES_BLOCK_BITS, cc_cycles_per_block
                )
                if cc_cycles_per_block
                else None,
                paper_throughput_mbps=CONFIDENTIALITY_CORE_THROUGHPUT_MBPS,
                operations=cc.blocks_processed,
            )
        )
        rows.append(
            Table2Row(
                module="IC",
                measured_cycles=ic_cycles_per_block,
                paper_cycles=INTEGRITY_CORE_CYCLES,
                ideal_throughput_mbps=model.pipeline_throughput_mbps(
                    INTEGRITY_BLOCK_BYTES * 8, ic_cycles_per_block * average_levels
                )
                if ic_cycles_per_block
                else None,
                paper_throughput_mbps=INTEGRITY_CORE_THROUGHPUT_MBPS,
                operations=ic_ops,
            )
        )
    return rows
