"""Calibrated FPGA area model regenerating Table I.

The paper synthesised its platform with XST for a Virtex-6 XC6VLX240T and
reported, in Table I, the area of the system without and with firewalls plus
the per-component breakdown of the Local Ciphering Firewall (Security
Builder, Confidentiality Core, Integrity Core) and of a plain Local Firewall.

A Python reproduction cannot run synthesis, so this module provides a
*component cost model* built from the paper's own breakdown:

* the baseline platform cost and the per-component costs are the paper's
  numbers verbatim (:data:`PAPER_TABLE1`),
* the protected platform is baseline + N x LF + LCF + integration overhead,
  where the integration overhead (bus adapters, extra interconnect logic that
  the paper's totals contain but its per-component rows do not) is calibrated
  as the residual of the paper's own numbers for the reference configuration
  (5 Local Firewalls + 1 LCF),
* the dependence of firewall cost on the *number of security rules* — which
  the paper only discusses qualitatively ("a more aggressive security policy
  will lead to a larger cost ... this point will be further analyzed in future
  work") — is modelled as a documented linear increment per elementary rule,
  used by the E4 ablation benchmark.

Because the model is calibrated on the reference configuration, the Table I
benchmark reproduces the paper's totals exactly for that configuration and
extrapolates for any other platform (more processors, more rules, no
integrity core, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List, Optional

from repro.metrics.resources import ResourceVector

__all__ = ["PAPER_TABLE1", "AreaModel", "Table1Row", "generate_table1"]


#: Paper Table I, verbatim (XC6VLX240T synthesis results).
PAPER_TABLE1: Dict[str, ResourceVector] = {
    "generic_without_firewalls": ResourceVector(12895, 11474, 15473, 53),
    "generic_with_firewalls": ResourceVector(15833, 19554, 21530, 63),
    "lcf_security_builder": ResourceVector(0, 393, 393, 0),
    "lcf_confidentiality_core": ResourceVector(436, 986, 344, 10),
    "lcf_integrity_core": ResourceVector(1224, 1404, 1704, 0),
    "local_firewall": ResourceVector(8, 403, 403, 0),
}

#: Relative overheads the paper prints under the "with firewalls" row.
PAPER_TABLE1_OVERHEADS_PERCENT: Dict[str, float] = {
    "slice_registers": 13.43,
    "slice_luts": 34.40,
    "lut_ff_pairs": 26.50,
    "brams": 18.87,
}

#: Number of plain Local Firewalls in the paper's reference platform
#: (3 MicroBlaze + 1 internal shared memory + 1 dedicated IP).
PAPER_REFERENCE_LF_COUNT = 5

#: Elementary rules per Local Firewall assumed for the reference calibration
#: (RWA + three ADF comparators + burst bound for a single policy, times a
#: couple of address windows).
REFERENCE_RULES_PER_LF = 8


@dataclass(frozen=True)
class Table1Row:
    """One row of the regenerated Table I."""

    label: str
    resources: ResourceVector
    overhead_percent: Optional[Dict[str, float]] = None


@dataclass
class AreaModel:
    """Component-cost model for the distributed security architecture."""

    baseline: ResourceVector = PAPER_TABLE1["generic_without_firewalls"]
    local_firewall_base: ResourceVector = PAPER_TABLE1["local_firewall"]
    lcf_security_builder: ResourceVector = PAPER_TABLE1["lcf_security_builder"]
    lcf_confidentiality_core: ResourceVector = PAPER_TABLE1["lcf_confidentiality_core"]
    lcf_integrity_core: ResourceVector = PAPER_TABLE1["lcf_integrity_core"]

    #: Incremental cost of one additional elementary security rule beyond the
    #: reference count (model assumption, documented in EXPERIMENTS.md).
    per_rule_increment: ResourceVector = ResourceVector(2.0, 12.0, 10.0, 0.0)
    #: Rules per extra BRAM once a configuration memory outgrows distributed RAM.
    rules_per_bram: int = 64
    reference_rules_per_firewall: int = REFERENCE_RULES_PER_LF

    #: Per-firewall integration overhead (bus adapters / interconnect growth).
    #: Calibrated in __post_init__ as the residual of the paper's totals.
    integration_overhead_per_firewall: ResourceVector = field(default=None)  # type: ignore[assignment]
    reference_lf_count: int = PAPER_REFERENCE_LF_COUNT

    def __post_init__(self) -> None:
        if self.integration_overhead_per_firewall is None:
            delta = PAPER_TABLE1["generic_with_firewalls"] - self.baseline
            components = (
                self.local_firewall_base.scale(self.reference_lf_count)
                + self.lcf_security_builder
                + self.lcf_confidentiality_core
                + self.lcf_integrity_core
            )
            residual = delta - components
            n_firewalls = self.reference_lf_count + 1  # + the LCF
            self.integration_overhead_per_firewall = residual.scale(1.0 / n_firewalls)

    # -- per-component areas -----------------------------------------------------------

    def _rule_overhead(self, n_rules: int) -> ResourceVector:
        """Cost of the rules beyond the calibrated reference count."""
        extra = max(0, n_rules - self.reference_rules_per_firewall)
        vector = self.per_rule_increment.scale(extra)
        extra_brams = ceil(extra / self.rules_per_bram) if extra > 0 else 0
        return ResourceVector(
            vector.slice_registers, vector.slice_luts, vector.lut_ff_pairs, extra_brams
        )

    def local_firewall_area(self, n_rules: Optional[int] = None, include_integration: bool = False) -> ResourceVector:
        """Area of one Local Firewall monitoring ``n_rules`` elementary rules."""
        rules = self.reference_rules_per_firewall if n_rules is None else n_rules
        area = self.local_firewall_base + self._rule_overhead(rules)
        if include_integration:
            area = area + self.integration_overhead_per_firewall
        return area

    def ciphering_firewall_area(
        self,
        n_rules: Optional[int] = None,
        with_confidentiality: bool = True,
        with_integrity: bool = True,
        include_integration: bool = False,
    ) -> ResourceVector:
        """Area of the Local Ciphering Firewall (SB + optional CC + optional IC)."""
        rules = self.reference_rules_per_firewall if n_rules is None else n_rules
        area = self.lcf_security_builder + self._rule_overhead(rules)
        if with_confidentiality:
            area = area + self.lcf_confidentiality_core
        if with_integrity:
            area = area + self.lcf_integrity_core
        if include_integration:
            area = area + self.integration_overhead_per_firewall
        return area

    # -- platform-level areas ---------------------------------------------------------------

    def platform_without_firewalls(self) -> ResourceVector:
        """The unprotected baseline platform."""
        return self.baseline

    def platform_with_firewalls(
        self,
        n_local_firewalls: int = PAPER_REFERENCE_LF_COUNT,
        rules_per_local_firewall: Optional[int] = None,
        lcf_rules: Optional[int] = None,
        with_confidentiality: bool = True,
        with_integrity: bool = True,
    ) -> ResourceVector:
        """Area of the protected platform."""
        if n_local_firewalls < 0:
            raise ValueError("n_local_firewalls must be non-negative")
        total = self.baseline
        for _ in range(n_local_firewalls):
            total = total + self.local_firewall_area(rules_per_local_firewall)
        total = total + self.ciphering_firewall_area(
            lcf_rules, with_confidentiality=with_confidentiality, with_integrity=with_integrity
        )
        n_firewalls = n_local_firewalls + 1
        total = total + self.integration_overhead_per_firewall.scale(n_firewalls)
        return total

    def platform_area_from_secured(self, secured) -> ResourceVector:
        """Area of an actual :class:`~repro.core.secure.SecuredPlatform`.

        Counts the firewalls that were really attached and the rules each one
        monitors, so the model follows configuration changes (more CPUs,
        fewer rules, integrity disabled, ...).
        """
        total = self.baseline
        n_firewalls = 0
        for firewall in list(secured.master_firewalls.values()) + list(secured.slave_firewalls.values()):
            total = total + self.local_firewall_area(firewall.config_memory.total_rule_count())
            n_firewalls += 1
        for lcf in secured.ciphering_firewalls.values():
            has_cipher = any(r.rule.policy.needs_ciphering for r in lcf.protected_regions)
            has_integrity = any(r.rule.policy.needs_integrity for r in lcf.protected_regions)
            total = total + self.ciphering_firewall_area(
                lcf.config_memory.total_rule_count(),
                with_confidentiality=has_cipher,
                with_integrity=has_integrity,
            )
            n_firewalls += 1
        total = total + self.integration_overhead_per_firewall.scale(n_firewalls)
        return total

    # -- reporting ----------------------------------------------------------------------------

    def lcf_component_share(self) -> float:
        """Fraction of the LCF area taken by the crypto cores (CC + IC).

        The paper highlights that "about 90% of Local Ciphering Firewall area"
        is the confidentiality and integrity cores; this method lets tests and
        reports check the model preserves that property (measured on LUTs +
        registers, the columns that dominate logic area).
        """
        crypto = self.lcf_confidentiality_core + self.lcf_integrity_core
        total = self.ciphering_firewall_area()
        crypto_logic = crypto.slice_registers + crypto.slice_luts
        total_logic = total.slice_registers + total.slice_luts
        return crypto_logic / total_logic if total_logic else 0.0


def generate_table1(
    model: Optional[AreaModel] = None,
    n_local_firewalls: int = PAPER_REFERENCE_LF_COUNT,
    rules_per_local_firewall: Optional[int] = None,
) -> List[Table1Row]:
    """Regenerate Table I: baseline, protected platform, component breakdown."""
    model = model or AreaModel()
    baseline = model.platform_without_firewalls()
    protected = model.platform_with_firewalls(
        n_local_firewalls=n_local_firewalls,
        rules_per_local_firewall=rules_per_local_firewall,
    )
    overhead = {
        name: 100.0 * value
        for name, value in protected.overhead_vs(baseline).items()
    }
    return [
        Table1Row("Generic w/o firewalls", baseline.rounded()),
        Table1Row("Generic w/ firewalls", protected.rounded(), overhead_percent=overhead),
        Table1Row("Local Ciphering Firewall: SB", model.lcf_security_builder.rounded()),
        Table1Row("Local Ciphering Firewall: CC", model.lcf_confidentiality_core.rounded()),
        Table1Row("Local Ciphering Firewall: IC", model.lcf_integrity_core.rounded()),
        Table1Row(
            "Local Firewall",
            model.local_firewall_area(rules_per_local_firewall).rounded(),
        ),
    ]
