"""Execution-time overhead of the security enhancements.

Section V of the paper discusses (without a table) how the protection
mechanisms impact global execution time: "the impact of the protection
mechanisms on the global execution time depends on the percentage of
computation time versus communication time.  Furthermore the latency overhead
is also impacted by the percentage of internal communication versus external
communication."

This module turns that discussion into a measurable experiment: run the same
workload on the unprotected and on the protected platform and compare
makespans.  The comm-ratio / external-share sweeps of the E5 benchmark are
thin wrappers around :func:`measure_execution_overhead`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.secure import SecurityConfiguration, secure_reference_platform
from repro.soc.system import SoCConfig, build_reference_platform
from repro.soc.processor import ProcessorProgram

__all__ = ["WorkloadRunResult", "OverheadResult", "run_workload", "measure_execution_overhead"]


@dataclass
class WorkloadRunResult:
    """Outcome of one workload run on one platform variant."""

    protected: bool
    makespan_cycles: int
    per_cpu_cycles: Dict[str, int]
    total_transactions: int
    blocked_transactions: int
    security_cycles: int
    communication_cycles: int
    computation_cycles: int

    @property
    def communication_share(self) -> float:
        """Fraction of CPU time spent waiting on the bus."""
        total = self.communication_cycles + self.computation_cycles
        return self.communication_cycles / total if total else 0.0


@dataclass
class OverheadResult:
    """Protected-vs-unprotected comparison for one workload."""

    baseline: WorkloadRunResult
    protected: WorkloadRunResult

    @property
    def slowdown(self) -> float:
        """Protected makespan divided by baseline makespan (>= 1.0 normally)."""
        if self.baseline.makespan_cycles == 0:
            return 1.0
        return self.protected.makespan_cycles / self.baseline.makespan_cycles

    @property
    def overhead_percent(self) -> float:
        """Relative execution-time overhead in percent."""
        return (self.slowdown - 1.0) * 100.0

    @property
    def security_cycle_share(self) -> float:
        """Fraction of the protected makespan attributable to security modules.

        Computed against the sum of per-CPU busy time rather than the makespan
        so overlapping processors do not distort the share.
        """
        busy = sum(self.protected.per_cpu_cycles.values())
        return self.protected.security_cycles / busy if busy else 0.0


def run_workload(
    programs: Dict[str, ProcessorProgram],
    protected: bool,
    soc_config: Optional[SoCConfig] = None,
    security_config: Optional[SecurityConfiguration] = None,
    max_events: Optional[int] = None,
) -> WorkloadRunResult:
    """Build a fresh platform, load ``programs`` and run to completion."""
    system = build_reference_platform(soc_config)
    if protected:
        # Attaches the firewalls to the system's ports as a side effect.
        secure_reference_platform(system, security_config or SecurityConfiguration())

    system.load_programs(programs)
    system.start_all()
    system.run(max_events=max_events)

    per_cpu = {
        name: (cpu.execution_cycles or 0) for name, cpu in system.processors.items()
    }
    transactions = [t for cpu in system.processors.values() for t in cpu.transactions]
    blocked = sum(1 for t in transactions if t.status.is_blocked)
    security_cycles = sum(t.security_latency for t in transactions)
    communication = sum(cpu.communication_cycles() for cpu in system.processors.values())
    computation = sum(cpu.computation_cycles() for cpu in system.processors.values())

    return WorkloadRunResult(
        protected=protected,
        makespan_cycles=system.execution_cycles(),
        per_cpu_cycles=per_cpu,
        total_transactions=len(transactions),
        blocked_transactions=blocked,
        security_cycles=security_cycles,
        communication_cycles=communication,
        computation_cycles=computation,
    )


def measure_execution_overhead(
    programs: Dict[str, ProcessorProgram],
    soc_config: Optional[SoCConfig] = None,
    security_config: Optional[SecurityConfiguration] = None,
) -> OverheadResult:
    """Run ``programs`` on both platform variants and compare makespans.

    The same program objects are reused for both runs; they carry no mutable
    state besides what the Processor tracks per run (each run constructs new
    Processor instances), so the comparison is apples-to-apples.
    """
    baseline = run_workload(programs, protected=False, soc_config=soc_config)
    protected = run_workload(
        programs, protected=True, soc_config=soc_config, security_config=security_config
    )
    return OverheadResult(baseline=baseline, protected=protected)
