"""FPGA resource vectors.

Table I of the paper reports four resource columns for the XC6VLX240T:
slice registers, slice LUTs, fully-used LUT-FF pairs and BRAMs.
:class:`ResourceVector` is the small value type the area model does its
arithmetic with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

__all__ = ["ResourceVector"]


@dataclass(frozen=True)
class ResourceVector:
    """One row of FPGA resources (all counts, BRAMs in 36Kb blocks)."""

    slice_registers: float = 0.0
    slice_luts: float = 0.0
    lut_ff_pairs: float = 0.0
    brams: float = 0.0

    FIELDS = ("slice_registers", "slice_luts", "lut_ff_pairs", "brams")

    # -- arithmetic ---------------------------------------------------------------

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.slice_registers + other.slice_registers,
            self.slice_luts + other.slice_luts,
            self.lut_ff_pairs + other.lut_ff_pairs,
            self.brams + other.brams,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.slice_registers - other.slice_registers,
            self.slice_luts - other.slice_luts,
            self.lut_ff_pairs - other.lut_ff_pairs,
            self.brams - other.brams,
        )

    def scale(self, factor: float) -> "ResourceVector":
        """Multiply every column by ``factor``."""
        return ResourceVector(
            self.slice_registers * factor,
            self.slice_luts * factor,
            self.lut_ff_pairs * factor,
            self.brams * factor,
        )

    def __mul__(self, factor: float) -> "ResourceVector":
        return self.scale(factor)

    __rmul__ = __mul__

    # -- comparisons and reporting ---------------------------------------------------

    def overhead_vs(self, baseline: "ResourceVector") -> Dict[str, float]:
        """Relative overhead of ``self`` over ``baseline`` per column (fractions)."""
        out: Dict[str, float] = {}
        for name in self.FIELDS:
            base = getattr(baseline, name)
            this = getattr(self, name)
            out[name] = (this - base) / base if base else float("inf") if this else 0.0
        return out

    def rounded(self) -> "ResourceVector":
        """Round every column to the nearest integer (for table display)."""
        return ResourceVector(
            round(self.slice_registers),
            round(self.slice_luts),
            round(self.lut_ff_pairs),
            round(self.brams),
        )

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self.FIELDS}

    def is_nonnegative(self) -> bool:
        """All columns >= 0 (sanity invariant of the area model)."""
        return all(getattr(self, name) >= 0 for name in self.FIELDS)

    @classmethod
    def total(cls, vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        """Sum a collection of vectors."""
        result = cls()
        for vector in vectors:
            result = result + vector
        return result
