"""Transaction trace recording and replay.

Useful for two things:

* regression material -- a workload can be captured once and replayed
  bit-exactly against a modified platform (e.g. protected vs unprotected),
* post-mortem analysis -- the analysis layer can inspect a flat record of
  everything that happened on the bus without keeping the simulator alive.

Traces are plain lists of dictionaries so they serialise trivially to JSON.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional

from repro.soc.bus import SystemBus
from repro.soc.processor import MemoryOperation, ProcessorProgram
from repro.soc.transaction import BusOperation, BusTransaction

__all__ = ["TraceRecord", "TraceRecorder", "replay_program_from_trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One observed transaction, flattened for serialisation."""

    master: str
    operation: str
    address: int
    width: int
    burst_length: int
    status: str
    issued_at: int
    completed_at: int
    total_latency: int
    security_latency: int
    data_hex: Optional[str] = None

    @classmethod
    def from_transaction(cls, txn: BusTransaction, include_data: bool = False) -> "TraceRecord":
        return cls(
            master=txn.master,
            operation=txn.operation.value,
            address=txn.address,
            width=txn.width,
            burst_length=txn.burst_length,
            status=txn.status.value,
            issued_at=txn.issued_at,
            completed_at=txn.completed_at,
            total_latency=txn.total_latency,
            security_latency=txn.security_latency,
            data_hex=txn.data.hex() if (include_data and txn.data is not None) else None,
        )

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


class TraceRecorder:
    """Collects :class:`TraceRecord` objects from completed transactions."""

    def __init__(self, include_data: bool = False) -> None:
        self.include_data = include_data
        self.records: List[TraceRecord] = []

    def capture(self, txn: BusTransaction) -> None:
        """Record one transaction (typically called from a completion callback)."""
        self.records.append(TraceRecord.from_transaction(txn, self.include_data))

    def capture_all(self, transactions: Iterable[BusTransaction]) -> None:
        for txn in transactions:
            self.capture(txn)

    def capture_bus_history(self, bus: SystemBus) -> None:
        """Snapshot every transaction the bus monitor has observed."""
        self.capture_all(bus.monitor.history)

    # -- serialisation ---------------------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps([record.to_dict() for record in self.records], indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "TraceRecorder":
        recorder = cls()
        for entry in json.loads(payload):
            recorder.records.append(TraceRecord(**entry))
        return recorder

    # -- summary statistics -------------------------------------------------------------

    def count(self) -> int:
        return len(self.records)

    def blocked_count(self) -> int:
        return sum(1 for r in self.records if r.status not in ("completed",))

    def mean_latency(self) -> float:
        latencies = [r.total_latency for r in self.records if r.total_latency >= 0]
        return sum(latencies) / len(latencies) if latencies else 0.0

    def mean_security_latency(self) -> float:
        latencies = [r.security_latency for r in self.records if r.total_latency >= 0]
        return sum(latencies) / len(latencies) if latencies else 0.0


def replay_program_from_trace(
    records: Iterable[TraceRecord],
    master: str,
    fill_byte: int = 0xA5,
) -> ProcessorProgram:
    """Rebuild a processor program that re-issues the accesses of one master.

    Write payloads are reconstructed from the recorded data when available and
    filled with ``fill_byte`` otherwise.
    """
    program = ProcessorProgram(name=f"replay_{master}")
    for record in records:
        if record.master != master:
            continue
        size = record.width * record.burst_length
        if record.operation == BusOperation.WRITE.value:
            if record.data_hex is not None:
                data = bytes.fromhex(record.data_hex)[:size].ljust(size, bytes([fill_byte]))
            else:
                data = bytes([fill_byte]) * size
            program.append(
                MemoryOperation.write(record.address, data, width=record.width)
            )
        else:
            program.append(
                MemoryOperation.read(record.address, width=record.width, burst_length=record.burst_length)
            )
    return program
