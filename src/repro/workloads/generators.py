"""Synthetic workload generator with controllable communication ratios.

A generated program interleaves compute bursts and memory accesses so that

* ``communication_ratio`` ≈ (memory operations) / (memory operations +
  compute operations), and
* ``external_share`` ≈ fraction of the memory operations that target the
  external DDR rather than internal resources (BRAM / IP registers),

which are the two quantities the paper identifies as driving the overhead of
the security enhancements.  The generator is deterministic given its seed, so
every experiment sweep is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.soc.processor import MemoryOperation, ProcessorProgram
from repro.soc.system import SoCConfig

__all__ = ["SyntheticWorkloadConfig", "SyntheticWorkloadGenerator", "make_uniform_programs"]


@dataclass
class SyntheticWorkloadConfig:
    """Parameters of one synthetic program."""

    n_operations: int = 200
    communication_ratio: float = 0.5
    external_share: float = 0.3
    write_fraction: float = 0.5
    compute_burst_cycles: int = 20
    burst_length: int = 1
    width: int = 4
    #: Working-set sizes (bytes) within each target region.
    internal_working_set: int = 4096
    external_working_set: int = 4096
    #: Fraction of internal accesses aimed at the IP register file.
    ip_share_of_internal: float = 0.1
    seed: int = 1

    def validate(self) -> None:
        if self.n_operations <= 0:
            raise ValueError("n_operations must be positive")
        for name in ("communication_ratio", "external_share", "write_fraction", "ip_share_of_internal"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.width not in (1, 2, 4):
            raise ValueError("width must be 1, 2 or 4")
        if self.burst_length < 1:
            raise ValueError("burst_length must be >= 1")
        if self.compute_burst_cycles < 0:
            raise ValueError("compute_burst_cycles must be non-negative")


class SyntheticWorkloadGenerator:
    """Builds :class:`ProcessorProgram` objects from a :class:`SyntheticWorkloadConfig`."""

    def __init__(self, soc_config: Optional[SoCConfig] = None) -> None:
        self.soc_config = soc_config or SoCConfig()

    # -- address pools -------------------------------------------------------------

    def _aligned(self, base: int, working_set: int, rng: random.Random, size: int) -> int:
        """A size-aligned address within ``[base, base + working_set)``."""
        slots = max(1, working_set // size)
        return base + rng.randrange(slots) * size

    def _internal_address(self, rng: random.Random, cfg: SyntheticWorkloadConfig, size: int) -> int:
        soc = self.soc_config
        if rng.random() < cfg.ip_share_of_internal:
            # IP register file (word aligned, stays within the register bank).
            return self._aligned(soc.ip_regs_base, 4 * soc.ip_n_registers, rng, 4)
        working_set = min(cfg.internal_working_set, soc.bram_size)
        return self._aligned(soc.bram_base, working_set, rng, size)

    def _external_address(self, rng: random.Random, cfg: SyntheticWorkloadConfig, size: int) -> int:
        soc = self.soc_config
        working_set = min(cfg.external_working_set, soc.ddr_size)
        return self._aligned(soc.ddr_base, working_set, rng, size)

    # -- program generation ----------------------------------------------------------

    def generate(self, cfg: SyntheticWorkloadConfig, name: str = "synthetic") -> ProcessorProgram:
        """Generate one program according to the configuration."""
        cfg.validate()
        rng = random.Random(cfg.seed)
        program = ProcessorProgram(name=name)
        payload_size = cfg.width * cfg.burst_length

        for index in range(cfg.n_operations):
            if rng.random() >= cfg.communication_ratio:
                program.append(MemoryOperation.compute(cfg.compute_burst_cycles))
                continue

            external = rng.random() < cfg.external_share
            size = payload_size
            if external:
                address = self._external_address(rng, cfg, size)
            else:
                address = self._internal_address(rng, cfg, size)
                if address >= self.soc_config.ip_regs_base and address < self.soc_config.ddr_base:
                    # IP registers only take single-beat word accesses.
                    size = 4

            if rng.random() < cfg.write_fraction:
                data = bytes((index + i) & 0xFF for i in range(size))
                program.append(
                    MemoryOperation.write(address, data, width=4 if size % 4 == 0 else cfg.width)
                )
            else:
                if size == payload_size:
                    program.append(
                        MemoryOperation.read(address, width=cfg.width, burst_length=cfg.burst_length)
                    )
                else:
                    program.append(MemoryOperation.read(address, width=4, burst_length=1))
        return program

    def generate_per_cpu(
        self,
        base_config: SyntheticWorkloadConfig,
        cpu_names: Sequence[str],
        name_prefix: str = "synthetic",
    ) -> Dict[str, ProcessorProgram]:
        """One program per CPU, with decorrelated seeds but identical ratios."""
        programs: Dict[str, ProcessorProgram] = {}
        for index, cpu in enumerate(cpu_names):
            cfg = SyntheticWorkloadConfig(**{**base_config.__dict__, "seed": base_config.seed + 1000 * (index + 1)})
            programs[cpu] = self.generate(cfg, name=f"{name_prefix}_{cpu}")
        return programs


def make_uniform_programs(
    soc_config: SoCConfig,
    cpu_names: Sequence[str],
    n_operations: int = 200,
    communication_ratio: float = 0.5,
    external_share: float = 0.3,
    seed: int = 1,
    **kwargs,
) -> Dict[str, ProcessorProgram]:
    """Convenience helper used by the benchmarks and ablation sweeps."""
    generator = SyntheticWorkloadGenerator(soc_config)
    cfg = SyntheticWorkloadConfig(
        n_operations=n_operations,
        communication_ratio=communication_ratio,
        external_share=external_share,
        seed=seed,
        **kwargs,
    )
    return generator.generate_per_cpu(cfg, cpu_names)
