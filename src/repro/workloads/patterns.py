"""Application-shaped workload patterns.

Three named scenarios give the examples and integration tests realistic
shapes (they correspond to the motivating use cases of the paper's
introduction: multiple cooperating processors, sensitive data in external
memory, autonomous IPs moving data around):

* :func:`producer_consumer_programs` -- cpu0 produces records into a BRAM
  mailbox, cpu1 consumes them, cpu2 does background computation,
* :func:`firmware_update_program` -- a processor streams a firmware image
  into the protected external-memory window and reads it back for
  verification (the archetypal confidentiality+integrity workload),
* :func:`dma_offload_scenario` -- a processor stages a buffer in BRAM and the
  DMA engine moves it to external memory.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.soc.processor import MemoryOperation, ProcessorProgram
from repro.soc.system import SoCConfig, SoCSystem

__all__ = [
    "producer_consumer_programs",
    "firmware_update_program",
    "dma_offload_scenario",
]


def producer_consumer_programs(
    soc_config: SoCConfig,
    n_items: int = 32,
    item_size: int = 16,
    mailbox_offset: int = 0x1000,
    compute_cycles: int = 30,
) -> Dict[str, ProcessorProgram]:
    """Producer/consumer over a BRAM mailbox plus a background worker.

    cpu0 writes ``n_items`` records of ``item_size`` bytes into the mailbox
    and updates a ready-counter register in the dedicated IP; cpu1 polls the
    counter and reads records back; cpu2 interleaves computation with
    occasional accesses to the unprotected part of the external memory.
    """
    if item_size % 4 != 0:
        raise ValueError("item_size must be a multiple of 4")
    mailbox_base = soc_config.bram_base + mailbox_offset
    counter_register = soc_config.ip_regs_base + 4 * (soc_config.ip_n_registers - 1)

    producer = ProcessorProgram(name="producer")
    for index in range(n_items):
        payload = bytes(((index * 7 + offset) & 0xFF) for offset in range(item_size))
        producer.append(MemoryOperation.compute(compute_cycles))
        producer.append(MemoryOperation.write(mailbox_base + index * item_size, payload))
        producer.append(MemoryOperation.write(counter_register, (index + 1).to_bytes(4, "little")))

    consumer = ProcessorProgram(name="consumer")
    for index in range(n_items):
        consumer.append(MemoryOperation.read(counter_register))
        consumer.append(
            MemoryOperation.read(mailbox_base + index * item_size, width=4, burst_length=item_size // 4)
        )
        consumer.append(MemoryOperation.compute(compute_cycles))

    background = ProcessorProgram(name="background")
    scratch_base = soc_config.ddr_base + soc_config.ddr_size // 2  # unprotected window
    for index in range(n_items):
        background.append(MemoryOperation.compute(compute_cycles * 2))
        background.append(
            MemoryOperation.write(scratch_base + (index % 64) * 4, index.to_bytes(4, "little"))
        )

    return {"cpu0": producer, "cpu1": consumer, "cpu2": background}


def firmware_update_program(
    soc_config: SoCConfig,
    image_size: int = 1024,
    chunk_size: int = 16,
    target_offset: int = 0,
    verify: bool = True,
    seed: int = 7,
) -> Tuple[ProcessorProgram, bytes]:
    """Stream a firmware image into the protected DDR window, then re-read it.

    Returns ``(program, image)`` so the caller can check that what ends up
    being readable through the LCF equals the original image while the DDR
    backing store only ever holds ciphertext.
    """
    if chunk_size % 4 != 0 or chunk_size <= 0:
        raise ValueError("chunk_size must be a positive multiple of 4")
    if image_size % chunk_size != 0:
        raise ValueError("image_size must be a multiple of chunk_size")

    image = bytes(((seed * 131 + i * 17) ^ (i >> 3)) & 0xFF for i in range(image_size))
    target_base = soc_config.ddr_base + target_offset

    program = ProcessorProgram(name="firmware_update")
    for offset in range(0, image_size, chunk_size):
        program.append(
            MemoryOperation.write(target_base + offset, image[offset : offset + chunk_size])
        )
    if verify:
        for offset in range(0, image_size, chunk_size):
            program.append(
                MemoryOperation.read(target_base + offset, width=4, burst_length=chunk_size // 4)
            )
    return program, image


def dma_offload_scenario(
    system: SoCSystem,
    buffer_size: int = 256,
    staging_offset: int = 0x2000,
    destination_offset: int = 0x8000,
) -> Tuple[ProcessorProgram, int, int]:
    """Stage a buffer in BRAM with cpu0, then let the DMA push it to the DDR.

    Returns ``(cpu0_program, staging_address, destination_address)``.  The
    caller is responsible for kicking off the DMA once cpu0 has finished (see
    ``examples/dma_offload.py``).
    """
    if buffer_size % 4 != 0:
        raise ValueError("buffer_size must be a multiple of 4")
    soc_config = system.config
    staging = soc_config.bram_base + staging_offset
    destination = soc_config.ddr_base + destination_offset

    program = ProcessorProgram(name="dma_staging")
    for offset in range(0, buffer_size, 4):
        word = ((offset // 4) * 2654435761 & 0xFFFFFFFF).to_bytes(4, "little")
        program.append(MemoryOperation.write(staging + offset, word))
    return program, staging, destination
