"""Workload generation for the reproduction experiments.

The paper's performance discussion is parameterised by two ratios:

* the share of *communication* time versus *computation* time, and
* the share of *external* (DDR) communication versus *internal* (BRAM / IP)
  communication,

because "external communications have a larger overhead due to the
cryptography resources" (section V).  The generators here expose exactly
those knobs, plus a few named application-shaped workloads used by the
examples (producer/consumer over the shared BRAM, firmware streaming into the
protected DDR window, DMA offload).
"""

from repro.workloads.generators import (
    SyntheticWorkloadConfig,
    SyntheticWorkloadGenerator,
    make_uniform_programs,
)
from repro.workloads.patterns import (
    dma_offload_scenario,
    firmware_update_program,
    producer_consumer_programs,
)
from repro.workloads.traces import TraceRecord, TraceRecorder, replay_program_from_trace

__all__ = [
    "SyntheticWorkloadConfig",
    "SyntheticWorkloadGenerator",
    "make_uniform_programs",
    "producer_consumer_programs",
    "firmware_update_program",
    "dma_offload_scenario",
    "TraceRecord",
    "TraceRecorder",
    "replay_program_from_trace",
]
