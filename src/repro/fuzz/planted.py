"""The planted-backdoor spec: a hole the static verifier cannot see.

``planted_backdoor_spec()`` is the fuzzer's acceptance target, the dynamic
analogue of ``tests/test_staticcheck_analyzer.bypass_spec``: a scenario
that verifies *clean* statically — every master is firewalled, every
restriction enforced, zero ERROR findings — yet silently leaks secrets at
runtime, because the secure-boot sequencer was built with its debug
backdoor compiled in (``debug_unlock=True``).  The access policy authorises
the maintenance CPU to touch the boot device (that is what maintenance CPUs
do), so the three-step chain

    write DEBUG magic -> write STAGE 0 (rollback) -> read a key register

passes every firewall without an alert and restores real key material into
the readable bank.  Only a stateful, sequence-aware oracle can catch it —
which is the whole reason ``repro fuzz`` exists.

The spec is intentionally NOT registered: the registry gate requires
scenarios to be production-clean, and this one is a test fixture.
"""

from __future__ import annotations

from repro.scenarios.spec import (
    MasterSpec,
    ScenarioSpec,
    SlaveSpec,
    TopologySpec,
    WorkloadSpec,
)

__all__ = ["planted_backdoor_spec"]


def planted_backdoor_spec(*, n_steps_hint: int = 3) -> ScenarioSpec:
    """A statically-clean spec with a known 3-step dynamic key leak.

    ``n_steps_hint`` documents the minimal chain length; it does not change
    the topology.
    """
    return ScenarioSpec(
        name="planted_backdoor",
        description=(
            "secure-boot sequencer shipped with its debug backdoor compiled "
            "in; the maintenance CPU can silently roll back the boot stage "
            "and read restored key material"
        ),
        topology=TopologySpec(
            masters=(
                MasterSpec("cpu0", kind="cpu", accessible=("bram", "boot0")),
                MasterSpec("cpu1", kind="cpu", accessible=("bram",)),
            ),
            slaves=(
                SlaveSpec("bram", "bram", base=0x0, size=0x2000),
                SlaveSpec(
                    "boot0", "secure_boot", base=0x4200_0000, n_registers=8,
                    sensitive_registers=(4, 5, 6, 7),
                    debug_unlock=True,  # the planted hole
                ),
            ),
        ),
        workload=WorkloadSpec(n_operations=16),
        placement="leaf",
    )
