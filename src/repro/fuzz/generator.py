"""Seeded transaction-sequence generation and mutation.

The search space is steered, not uniform: raw random addresses almost never
spell ``unlock -> arm -> commit``, so the generator pre-computes *protocol
templates* from the scenario's own topology — the magic control writes,
doorbell rings, stage rollbacks and sensitive-register reads each stateful
device kind responds to — and mixes them with boundary accesses and plain
random traffic.  Mutation works on the same vocabulary (insert/delete/
replace/swap/retarget), so a case that almost completes a protocol is one
mutation away from completing it.

Determinism: the only randomness is ``random.Random(seed)``; templates and
address pools are built in spec declaration order.  Same seed, same call
sequence, same cases — that is what makes ``repro fuzz --seed S``
bit-reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.fuzz.case import FuzzCase, FuzzStep
from repro.scenarios.spec import ScenarioSpec, SlaveSpec
from repro.soc.devices import (
    DmaDescriptorRing,
    FirmwareUpdateIP,
    SecureBootSequencer,
)

__all__ = ["SequenceGenerator"]

#: Data words the mutation engine likes to write (protocol magics first —
#: they are the keys that open the stateful devices).
_MAGIC_WORDS = (
    FirmwareUpdateIP.UNLOCK_MAGIC,
    FirmwareUpdateIP.ARM_MAGIC,
    FirmwareUpdateIP.COMMIT_MAGIC,
    SecureBootSequencer.DEBUG_MAGIC,
    0x0000_0000,
    0x0000_0001,
    0xFFFF_FFFF,
    0xDEAD_BEEF,
)


def _word(value: int) -> bytes:
    return (value & 0xFFFF_FFFF).to_bytes(4, "little")


class SequenceGenerator:
    """Template-steered generator/mutator over one scenario's topology."""

    def __init__(self, spec: ScenarioSpec, seed: int) -> None:
        self.spec = spec
        self.seed = seed
        self.rng = random.Random(seed)
        self.masters: List[str] = [m.name for m in spec.topology.masters]
        self.slaves: List[SlaveSpec] = list(spec.topology.slaves)
        #: Interesting transfer targets: every slave's base and midpoint.
        self.target_addresses: List[int] = []
        for slave in self.slaves:
            self.target_addresses.append(slave.base)
            if slave.size >= 8:
                self.target_addresses.append(slave.base + (slave.size // 8) * 4)
        self.templates: List[FuzzStep] = self._build_templates()

    # -- template vocabulary ---------------------------------------------------------

    def _build_templates(self) -> List[FuzzStep]:
        """Protocol-aware steps, master left as a placeholder (``""``)."""
        steps: List[FuzzStep] = []

        def write(address: int, value: int) -> None:
            steps.append(FuzzStep("", "write", address, data=_word(value)))

        def read(address: int) -> None:
            steps.append(FuzzStep("", "read", address))

        for slave in self.slaves:
            base = slave.base
            if slave.kind == "firmware":
                ctrl = base + 4 * FirmwareUpdateIP.REG_CTRL
                write(ctrl, FirmwareUpdateIP.UNLOCK_MAGIC)
                write(ctrl, FirmwareUpdateIP.ARM_MAGIC)
                write(ctrl, FirmwareUpdateIP.COMMIT_MAGIC)
                write(base + 4 * FirmwareUpdateIP.STAGING_BASE, 0xBAD_F1A5)
                read(base + 4 * FirmwareUpdateIP.REG_STATUS)
            elif slave.kind == "dma_ring":
                desc = base + 4 * DmaDescriptorRing.DESC_BASE
                for target in self.target_addresses[:6]:
                    write(desc + 4, target)  # descriptor dst
                write(desc + 0, base)  # descriptor src
                write(desc + 8, 16)  # descriptor len
                write(base + 4 * DmaDescriptorRing.REG_HEAD, 0)
                write(base + 4 * DmaDescriptorRing.REG_DOORBELL, 1)
                write(base + 4 * DmaDescriptorRing.REG_STATUS, 0)
            elif slave.kind == "secure_boot":
                write(base + 4 * SecureBootSequencer.REG_DEBUG,
                      SecureBootSequencer.DEBUG_MAGIC)
                for stage in (0, 1, 3):
                    write(base + 4 * SecureBootSequencer.REG_STAGE, stage)
                read(base + 4 * SecureBootSequencer.REG_TAMPER)
                for key in range(SecureBootSequencer.KEY_BASE, slave.n_registers):
                    read(base + 4 * key)
            elif slave.is_register_kind:
                for index in slave.sensitive_registers[:4]:
                    read(base + 4 * index)
                write(base, 0xDEAD_BEEF)
            else:  # bram / ddr boundaries
                read(base)
                read(max(base, slave.end - 4))
                write(base, 0xDEAD_BEEF)
        return steps

    # -- primitive draws -------------------------------------------------------------

    def _random_master(self) -> str:
        return self.rng.choice(self.masters)

    def _template_step(self) -> FuzzStep:
        template = self.rng.choice(self.templates)
        return FuzzStep(
            master=self._random_master(),
            op=template.op,
            address=template.address,
            width=template.width,
            burst_length=template.burst_length,
            data=template.data,
        )

    def _random_step(self) -> FuzzStep:
        slave = self.rng.choice(self.slaves)
        max_word = max(1, slave.size // 4)
        address = slave.base + 4 * self.rng.randrange(max_word)
        op = self.rng.choice(("read", "write"))
        width = self.rng.choice((4, 4, 4, 1, 2))
        data: Optional[bytes] = None
        if op == "write":
            data = _word(self.rng.choice(_MAGIC_WORDS))[:width]
        return FuzzStep(self._random_master(), op, address, width=width, data=data)

    def _draw_step(self) -> FuzzStep:
        if self.templates and self.rng.random() < 0.7:
            return self._template_step()
        return self._random_step()

    # -- public API ------------------------------------------------------------------

    def generate(self, n_steps: int) -> FuzzCase:
        """A fresh case of ``n_steps`` transactions."""
        steps = tuple(self._draw_step() for _ in range(n_steps))
        return FuzzCase(scenario=self.spec.name, seed=self.seed, steps=steps)

    def mutate(self, case: FuzzCase) -> FuzzCase:
        """One to three structural mutations of an existing case."""
        steps = list(case.steps)
        for _ in range(self.rng.randint(1, 3)):
            choice = self.rng.randrange(5)
            if choice == 0 or not steps:  # insert
                index = self.rng.randint(0, len(steps))
                steps.insert(index, self._draw_step())
            elif choice == 1 and len(steps) > 1:  # delete
                steps.pop(self.rng.randrange(len(steps)))
            elif choice == 2:  # replace
                steps[self.rng.randrange(len(steps))] = self._draw_step()
            elif choice == 3 and len(steps) > 1:  # swap adjacent
                index = self.rng.randrange(len(steps) - 1)
                steps[index], steps[index + 1] = steps[index + 1], steps[index]
            else:  # retarget: same access, different master
                index = self.rng.randrange(len(steps))
                old = steps[index]
                steps[index] = FuzzStep(
                    self._random_master(), old.op, old.address,
                    width=old.width, burst_length=old.burst_length, data=old.data,
                )
        return case.with_steps(tuple(steps))
