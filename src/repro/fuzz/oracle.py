"""The bypass oracle: "no silent reach of protected memory".

A fuzz case is replayed transaction by transaction against a freshly built
*protected* platform (no synthetic workload — the case is the whole
stimulus).  After every step the oracle compares what happened against what
the scenario's policy promises:

``policy_bypass``
    A step by master M on slave S **completed** although the spec restricts
    M away from S (``accessible`` does not list it, or the access is a write
    to a ``readonly`` target) — and no firewall raised an alert for it.
    This is the paper's containment claim violated live.

``guard_leak``
    A stateful device guard tripped silently: the step grew a device's
    ``leaks`` record (e.g. the secure-boot key bank read back real key
    material) with zero new alerts.  Policy-authorized masters can trigger
    this, which is exactly why it needs a dynamic oracle — statically the
    access is legal.

Findings the static verifier already documents are excluded: a
``reaches_silently`` witness (e.g. the placement-gap of
``bridge_firewalled_centralized``) means that master/slave pair is a *known*
gap, and under centralized enforcement per-master restrictions are out of
scope by construction (the analyzer's ``centralized-enforcement`` note).
Each surviving violation is reported as a :class:`~repro.staticcheck.
findings.Witness` with ``expectation="reaches_silently"``, the same
vocabulary ``repro verify`` speaks, so a found bypass can be triaged — and
replayed — with the PR-9 confirmation machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.attacks.base import issue_sync
from repro.fuzz.case import FuzzCase, FuzzStep
from repro.scenarios.builder import ScenarioBuilder
from repro.scenarios.spec import MasterSpec, ScenarioSpec, SlaveSpec
from repro.soc.transaction import TransactionStatus
from repro.staticcheck.analyzer import _segments_along, segment_paths, verify_spec
from repro.staticcheck.findings import Witness

__all__ = ["Violation", "OracleResult", "BypassOracle"]


@dataclass(frozen=True)
class Violation:
    """One silent reach of protected state, tied to the step that caused it."""

    kind: str  # "policy_bypass" | "guard_leak"
    master: str
    target: str
    op: str
    step_index: int
    address: int
    witness: Witness
    detail: str = ""

    @property
    def identity(self) -> Tuple[str, str, str, str]:
        """Dedup/shrink key: the *hole*, independent of the step position."""
        return (self.kind, self.master, self.target, self.op)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "master": self.master,
            "target": self.target,
            "op": self.op,
            "step_index": self.step_index,
            "address": self.address,
            "witness": self.witness.to_dict(),
            "detail": self.detail,
        }


@dataclass
class OracleResult:
    """Verdict of one case replay."""

    case: FuzzCase
    violations: List[Violation] = field(default_factory=list)
    steps_run: int = 0
    alerts: int = 0
    blocked_steps: int = 0
    #: (device, counter) pairs whose statistics the case changed — the
    #: coverage signature that steers the mutation pool.
    signature: Tuple[Tuple[str, str], ...] = ()

    @property
    def clean(self) -> bool:
        return not self.violations


class BypassOracle:
    """Judge fuzz cases for one scenario spec."""

    def __init__(self, spec: ScenarioSpec) -> None:
        spec.validate()
        self.spec = spec
        self.masters: Dict[str, MasterSpec] = {m.name: m for m in spec.topology.masters}
        self._slaves = sorted(spec.topology.slaves, key=lambda s: s.base)
        self._paths = segment_paths(spec.topology)
        #: Per-master restriction exemptions the static verifier already
        #: reports as reaching silently (known gaps are not new findings).
        self.static_gaps: frozenset = self._static_gaps()
        #: Centralized enforcement cannot tell masters apart; the analyzer's
        #: `centralized-enforcement` scope note documents that, so per-master
        #: policy checks are off and only device-guard leaks are judged.
        self.centralized = spec.enforcement == "centralized"

    def _static_gaps(self) -> frozenset:
        gaps = set()
        report = verify_spec(self.spec)
        for finding in report.findings:
            witness = finding.witness
            if witness is not None and witness.expectation == "reaches_silently":
                gaps.add((witness.master, witness.target))
        return frozenset(gaps)

    # -- topology lookups ------------------------------------------------------------

    def slave_at(self, address: int) -> Optional[SlaveSpec]:
        for slave in self._slaves:
            if slave.base <= address < slave.end:
                return slave
        return None

    def _restricted(self, master: MasterSpec, slave: SlaveSpec, op: str) -> bool:
        if not master.can_access(slave.name):
            return True
        return op == "write" and slave.name in master.readonly

    def _witness(self, master: str, slave: SlaveSpec, step: FuzzStep) -> Witness:
        topology = self.spec.topology
        source = topology.segment_of(self.masters[master])
        target_segment = topology.segment_of(slave)
        bridges: Tuple[str, ...] = ()
        segments: Tuple[str, ...] = ()
        if source is not None and target_segment is not None:
            bridges = self._paths.get((source, target_segment), ())
            segments = _segments_along(topology, source, bridges)
        return Witness(
            master=master,
            address=step.address,
            op=step.op,
            width=step.width,
            target=slave.name,
            region=slave.region_name,
            expectation="reaches_silently",
            route_segments=segments,
            route_bridges=bridges,
        )

    # -- judgement -------------------------------------------------------------------

    def run(self, case: FuzzCase) -> OracleResult:
        """Replay one case on a fresh protected platform and judge it."""
        built = ScenarioBuilder(self.spec, verify=False).build(_warn=False)
        system, security = built.system, built.security
        monitor = built.monitor
        guards = {
            name: device
            for name, device in system.ips.items()
            if hasattr(device, "leaks")
        }
        stats_before = {
            name: dict(system.ips[name].stats) for name in system.ips
        }

        result = OracleResult(case=case)
        for index, step in enumerate(case.steps):
            if step.master not in self.masters:
                continue
            alerts_before = len(monitor.alerts) if monitor else 0
            leaks_before = {name: len(g.leaks) for name, g in guards.items()}
            txn = step.to_transaction()
            issue_sync(system, step.master, txn)
            result.steps_run += 1
            new_alerts = (len(monitor.alerts) if monitor else 0) - alerts_before
            if txn.status.is_blocked:
                result.blocked_steps += 1

            slave = self.slave_at(step.address)
            completed = txn.status is TransactionStatus.COMPLETED
            if (
                slave is not None
                and completed
                and new_alerts == 0
                and not self.centralized
                and (step.master, slave.name) not in self.static_gaps
                and self._restricted(self.masters[step.master], slave, step.op)
            ):
                result.violations.append(Violation(
                    kind="policy_bypass",
                    master=step.master,
                    target=slave.name,
                    op=step.op,
                    step_index=index,
                    address=step.address,
                    witness=self._witness(step.master, slave, step),
                    detail=(
                        f"{step.op} of {step.address:#010x} by {step.master} "
                        f"completed with no alert despite the policy restriction"
                    ),
                ))
            for name, guard in guards.items():
                grown = len(guard.leaks) - leaks_before[name]
                if grown > 0 and new_alerts == 0:
                    guard_slave = self.spec.topology.slave(name)
                    result.violations.append(Violation(
                        kind="guard_leak",
                        master=step.master,
                        target=name,
                        op=step.op,
                        step_index=index,
                        address=step.address,
                        witness=self._witness(step.master, guard_slave, step),
                        detail=(
                            f"device guard on {name} recorded {grown} leak(s) "
                            f"with no alert (step {index}, {step.op} by {step.master})"
                        ),
                    ))

        result.alerts = len(monitor.alerts) if monitor else 0
        signature = []
        for name in sorted(system.ips):
            before = stats_before.get(name, {})
            for counter, value in sorted(system.ips[name].stats.items()):
                if isinstance(value, int) and value != before.get(counter, 0):
                    signature.append((name, counter))
        result.signature = tuple(signature)
        return result
