"""Fuzz cases: immutable, canonically serialisable transaction sequences.

A case is pure data — scenario name, the seed that produced it, and a tuple
of single-transaction steps — so it pickles into campaign shards, survives
the JSON round-trip through the corpus store bit-identically, and hashes to
a stable digest that keys deduplication and corpus storage.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.crypto.sha256 import sha256
from repro.soc.transaction import BusOperation, BusTransaction

__all__ = ["FuzzStep", "FuzzCase"]

_OPS = ("read", "write")


@dataclass(frozen=True)
class FuzzStep:
    """One transaction of a fuzz case."""

    master: str
    op: str  # "read" | "write"
    address: int
    width: int = 4
    burst_length: int = 1
    data: Optional[bytes] = None  # writes only

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"step op must be one of {_OPS}, got {self.op!r}")
        if self.op == "write" and self.data is None:
            raise ValueError("write steps need data")

    def to_transaction(self) -> BusTransaction:
        return BusTransaction(
            master=self.master,
            operation=BusOperation.WRITE if self.op == "write" else BusOperation.READ,
            address=self.address,
            width=self.width,
            burst_length=self.burst_length,
            data=self.data,
        )

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "master": self.master,
            "op": self.op,
            "address": self.address,
            "width": self.width,
            "burst_length": self.burst_length,
        }
        if self.data is not None:
            payload["data"] = self.data.hex()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FuzzStep":
        raw = payload.get("data")
        return cls(
            master=str(payload["master"]),
            op=str(payload["op"]),
            address=int(payload["address"]),  # type: ignore[arg-type]
            width=int(payload.get("width", 4)),  # type: ignore[arg-type]
            burst_length=int(payload.get("burst_length", 1)),  # type: ignore[arg-type]
            data=bytes.fromhex(str(raw)) if raw is not None else None,
        )


@dataclass(frozen=True)
class FuzzCase:
    """A transaction sequence under judgement, tagged with its provenance."""

    scenario: str
    seed: int
    steps: Tuple[FuzzStep, ...] = field(default_factory=tuple)

    def with_steps(self, steps: Tuple[FuzzStep, ...]) -> "FuzzCase":
        return replace(self, steps=tuple(steps))

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "steps": [step.to_dict() for step in self.steps],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FuzzCase":
        return cls(
            scenario=str(payload["scenario"]),
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            steps=tuple(
                FuzzStep.from_dict(step)  # type: ignore[arg-type]
                for step in payload.get("steps", ())  # type: ignore[union-attr]
            ),
        )

    def digest(self) -> str:
        """Stable content hash (scenario + steps; the seed is provenance only)."""
        canonical = json.dumps(
            {"scenario": self.scenario, "steps": [s.to_dict() for s in self.steps]},
            sort_keys=True,
        )
        return sha256(canonical.encode("utf-8")).hex()[:16]

    def __len__(self) -> int:
        return len(self.steps)
