"""Corpus persistence: minimized bypass cases in the sweep ResultStore.

Found (and minimized) cases are results like any sweep point's: they go
through :class:`~repro.sweep.store.ResultStore`, so fuzz campaigns
accumulate a corpus across runs with the same durability, locking and
code-fingerprint bookkeeping the benchmark sweeps already rely on.  A flat
JSON export/import keeps a human-reviewable copy in the repository
(``tests/corpus/``) that CI replays as a regression gate.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Union

from repro.fuzz.case import FuzzCase
from repro.sweep.store import ResultStore, code_fingerprint

__all__ = ["Corpus", "export_cases", "load_cases"]

_SCHEMA = 1
_KEY_PREFIX = "fuzz/"


class Corpus:
    """Fuzz-case view over a :class:`ResultStore`."""

    def __init__(self, store: ResultStore) -> None:
        self.store = store

    @staticmethod
    def key_for(case: FuzzCase) -> str:
        return f"{_KEY_PREFIX}{case.scenario}/{case.digest()}"

    def add(
        self,
        case: FuzzCase,
        violation: Dict[str, object],
        engines: Optional[Dict[str, object]] = None,
    ) -> str:
        """Persist one minimized case; returns its store key."""
        key = self.key_for(case)
        self.store.put(
            key,
            point_id=case.digest(),
            scenario=case.scenario,
            fingerprint=code_fingerprint(),
            result={
                "schema": _SCHEMA,
                "case": case.to_dict(),
                "violation": violation,
                "engines": engines or {},
            },
        )
        return key

    def has(self, case: FuzzCase) -> bool:
        return self.store.has(self.key_for(case))

    def entries(self, scenario: Optional[str] = None) -> List[Dict[str, object]]:
        """All corpus entries (optionally one scenario's), in write order."""
        prefix = _KEY_PREFIX + (f"{scenario}/" if scenario else "")
        return [
            entry
            for entry in self.store.entries()
            if str(entry.get("key", "")).startswith(prefix)
        ]

    def cases(self, scenario: Optional[str] = None) -> List[FuzzCase]:
        out = []
        for entry in self.entries(scenario):
            result = entry.get("result", {})
            payload = result.get("case") if isinstance(result, dict) else None
            if isinstance(payload, dict):
                out.append(FuzzCase.from_dict(payload))
        return out


def export_cases(
    path: Union[str, pathlib.Path], entries: List[Dict[str, object]]
) -> None:
    """Write corpus entries (``{"case", "violation", "engines"}`` dicts) as
    a reviewable JSON document."""
    payload = {"schema": _SCHEMA, "cases": entries}
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_cases(path: Union[str, pathlib.Path]) -> List[Dict[str, object]]:
    """Read a JSON corpus document back into entry dicts."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if payload.get("schema") != _SCHEMA:
        raise ValueError(f"unsupported corpus schema {payload.get('schema')!r}")
    cases = payload.get("cases", [])
    if not isinstance(cases, list):
        raise ValueError("corpus document must carry a list of cases")
    return cases
