"""Seeded property-based bypass fuzzer.

The static verifier (:mod:`repro.staticcheck`) proves what the *policy*
allows; the fuzzer searches what the *platform* actually does.  It mutates
transaction sequences against a protected build and asserts the paper's
core property dynamically — "no silent reach of protected memory": every
access a master's policy forbids must end blocked or alerted, and no device
guard (e.g. the secure-boot key bank) may leak without an alert.

* :mod:`repro.fuzz.case` — the immutable, JSON-serialisable test case,
* :mod:`repro.fuzz.generator` — seeded sequence generation and mutation,
* :mod:`repro.fuzz.oracle` — replays a case, judges it with
  :mod:`repro.staticcheck` Witness semantics,
* :mod:`repro.fuzz.shrink` — deterministic delta-debugging minimizer,
* :mod:`repro.fuzz.corpus` — persists minimized cases through the sweep
  :class:`~repro.sweep.store.ResultStore`,
* :mod:`repro.fuzz.runner` — the fuzzing loop behind ``repro fuzz``,
* :mod:`repro.fuzz.planted` — the known-hole spec the regression suite
  requires the fuzzer to rediscover.

Everything is deterministic for a given (scenario, seed, budget): the only
randomness source is one ``random.Random(seed)``, and reports carry no wall
clock — the same invocation is bit-reproducible.
"""

from repro.fuzz.case import FuzzCase, FuzzStep
from repro.fuzz.corpus import Corpus, export_cases, load_cases
from repro.fuzz.generator import SequenceGenerator
from repro.fuzz.oracle import BypassOracle, OracleResult, Violation
from repro.fuzz.planted import planted_backdoor_spec
from repro.fuzz.runner import FuzzReport, fuzz_scenario, replay_case
from repro.fuzz.shrink import shrink_case

__all__ = [
    "FuzzCase",
    "FuzzStep",
    "SequenceGenerator",
    "BypassOracle",
    "OracleResult",
    "Violation",
    "shrink_case",
    "Corpus",
    "export_cases",
    "load_cases",
    "FuzzReport",
    "fuzz_scenario",
    "replay_case",
    "planted_backdoor_spec",
]
