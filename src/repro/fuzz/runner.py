"""The fuzzing loop behind ``repro fuzz``.

One run is a pure function of (scenario, seed, budget, steps-per-case): the
generator is the only randomness source, the oracle replay is deterministic
simulation, and the report carries no wall clock — the same invocation is
bit-reproducible, which is what lets CI diff two runs of the same seed.

Coverage feedback: every case whose replay produces a *novel* device-counter
signature (which protocol transitions it exercised) joins the mutation pool,
so sequences that got partway through a device protocol breed sequences that
finish it.  Every found violation is minimized with the ddmin shrinker and
then replayed under **both** transaction engines — a bypass only enters the
report (and the corpus) with its engine fingerprints attached, so a vector
divergence can never hide behind a security finding or vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attacks.base import issue_sync
from repro.fuzz.case import FuzzCase
from repro.fuzz.corpus import Corpus
from repro.fuzz.generator import SequenceGenerator
from repro.fuzz.oracle import BypassOracle, Violation
from repro.fuzz.shrink import shrink_case
from repro.scenarios.builder import ScenarioBuilder
from repro.scenarios.differential import _variant_fingerprint, diff_fingerprints
from repro.scenarios.spec import ScenarioSpec

__all__ = ["FuzzReport", "fuzz_scenario", "replay_case"]


def replay_case(
    spec: ScenarioSpec, case: FuzzCase, engine: Optional[str] = None
) -> Dict[str, object]:
    """Replay one case after a workload run under the chosen engine.

    Returns the per-step statuses/alert deltas and the full structural
    fingerprint of the final platform state — comparing two engines'
    replays with :func:`diff_fingerprints` is the fuzz analogue of the
    engine-identity differential gate.
    """
    built = ScenarioBuilder(spec, verify=False).build(_warn=False)
    built.run_workload(engine=engine)
    monitor = built.monitor
    steps: List[Dict[str, object]] = []
    for step in case.steps:
        if step.master not in built.system.master_ports:
            steps.append({"status": "skipped", "alerts": 0})
            continue
        before = len(monitor.alerts) if monitor else 0
        txn = step.to_transaction()
        issue_sync(built.system, step.master, txn)
        steps.append({
            "status": txn.status.value,
            "alerts": (len(monitor.alerts) if monitor else 0) - before,
        })
    report = built.engine_report
    return {
        "engine": engine or spec.engine.mode,
        "engine_used": getattr(report, "used", "object"),
        "fallback_reason": getattr(report, "fallback_reason", None),
        "steps": steps,
        "fingerprint": _variant_fingerprint(built, built.system.sim.now),
    }


@dataclass
class FuzzReport:
    """Outcome of one seeded fuzz run (wall-clock free, JSON-stable)."""

    scenario: str
    seed: int
    budget: int
    n_steps: int
    cases_run: int = 0
    steps_run: int = 0
    blocked_steps: int = 0
    coverage_signatures: int = 0
    #: One record per distinct violation identity:
    #: {"case", "violation", "engines", "engines_identical"}.
    findings: List[Dict[str, object]] = field(default_factory=list)
    #: Store keys of corpus entries written this run.
    corpus_keys: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        def scrub(value: object) -> object:
            # Fingerprints carry tuples (alert rows); normalise for JSON
            # equality so two runs of the same seed serialise identically.
            if isinstance(value, dict):
                return {str(k): scrub(v) for k, v in value.items()}
            if isinstance(value, (list, tuple)):
                return [scrub(v) for v in value]
            return value

        return {
            "schema": 1,
            "scenario": self.scenario,
            "seed": self.seed,
            "budget": self.budget,
            "n_steps": self.n_steps,
            "cases_run": self.cases_run,
            "steps_run": self.steps_run,
            "blocked_steps": self.blocked_steps,
            "coverage_signatures": self.coverage_signatures,
            "clean": self.clean,
            "findings": scrub(self.findings),
            "corpus_keys": list(self.corpus_keys),
        }


def _judge_violation(
    spec: ScenarioSpec,
    oracle: BypassOracle,
    case: FuzzCase,
    violation: Violation,
    engines: Sequence[str],
    do_shrink: bool,
    corpus: Optional[Corpus],
) -> Tuple[Dict[str, object], Optional[str]]:
    """Minimize, cross-engine replay and (optionally) persist one finding."""
    minimized = shrink_case(oracle, case, violation) if do_shrink else case
    replay = oracle.run(minimized)
    confirmed = next(
        (v for v in replay.violations if v.identity == violation.identity),
        violation,
    )
    engine_results = {
        engine: replay_case(spec, minimized, engine) for engine in engines
    }
    identical = True
    reference = None
    for engine in engines:
        current = engine_results[engine]
        if reference is None:
            reference = current
            continue
        if diff_fingerprints(reference["fingerprint"], current["fingerprint"]):
            identical = False
        if reference["steps"] != current["steps"]:
            identical = False
    record: Dict[str, object] = {
        "case": minimized.to_dict(),
        "violation": confirmed.to_dict(),
        "engines": {
            engine: {k: v for k, v in result.items() if k != "fingerprint"}
            for engine, result in engine_results.items()
        },
        "engines_identical": identical,
    }
    key = None
    if corpus is not None:
        key = corpus.add(minimized, confirmed.to_dict(), record["engines"])
    return record, key


def fuzz_scenario(
    spec: ScenarioSpec,
    *,
    seed: int = 0,
    budget: int = 200,
    n_steps: int = 12,
    engines: Sequence[str] = ("object", "vector"),
    shrink: bool = True,
    corpus: Optional[Corpus] = None,
    stop_on_first: bool = False,
) -> FuzzReport:
    """Search ``budget`` cases for silent reaches of protected memory."""
    generator = SequenceGenerator(spec, seed)
    oracle = BypassOracle(spec)
    report = FuzzReport(scenario=spec.name, seed=seed, budget=budget, n_steps=n_steps)
    pool: List[FuzzCase] = []
    seen_signatures: set = set()
    found: Dict[Tuple[str, str, str, str], bool] = {}

    for _ in range(budget):
        if pool and generator.rng.random() < 0.5:
            case = generator.mutate(pool[generator.rng.randrange(len(pool))])
        else:
            case = generator.generate(n_steps)
        result = oracle.run(case)
        report.cases_run += 1
        report.steps_run += result.steps_run
        report.blocked_steps += result.blocked_steps
        if result.signature and result.signature not in seen_signatures:
            seen_signatures.add(result.signature)
            pool.append(case)
        for violation in result.violations:
            if violation.identity in found:
                continue
            found[violation.identity] = True
            record, key = _judge_violation(
                spec, oracle, case, violation, engines, shrink, corpus
            )
            report.findings.append(record)
            if key is not None:
                report.corpus_keys.append(key)
        if report.findings and stop_on_first:
            break

    report.coverage_signatures = len(seen_signatures)
    return report
