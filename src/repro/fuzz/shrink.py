"""Deterministic delta-debugging minimizer for found bypass cases.

Classic ddmin over the step sequence: try dropping large chunks first, halve
the chunk size on failure, finish with a single-step sweep.  The predicate
is "the replayed case still produces a violation with the same identity"
(kind, master, target, op) — not merely *any* violation, so shrinking never
walks from one hole to a different one.  Everything is a pure function of
the input case and the oracle's deterministic replay; no randomness, no
wall clock.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from repro.fuzz.case import FuzzCase, FuzzStep
from repro.fuzz.oracle import BypassOracle, Violation

__all__ = ["shrink_case"]

Predicate = Callable[[Tuple[FuzzStep, ...]], bool]


def _ddmin(steps: Sequence[FuzzStep], predicate: Predicate) -> Tuple[FuzzStep, ...]:
    current = tuple(steps)
    chunk = max(1, len(current) // 2)
    while len(current) > 1:
        shrunk = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if candidate and predicate(candidate):
                current = candidate
                shrunk = True
                # Restart the sweep at the same granularity: indices shifted.
                start = 0
            else:
                start += chunk
        if not shrunk:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
        else:
            chunk = min(chunk, max(1, len(current) // 2))
    return current


def shrink_case(
    oracle: BypassOracle, case: FuzzCase, violation: Violation
) -> FuzzCase:
    """Minimize ``case`` while it still reproduces ``violation``'s identity."""
    identity = violation.identity

    def predicate(steps: Tuple[FuzzStep, ...]) -> bool:
        replay = oracle.run(case.with_steps(steps))
        return any(v.identity == identity for v in replay.violations)

    if not predicate(case.steps):  # flaky premise: refuse to "minimize" noise
        return case
    return case.with_steps(_ddmin(case.steps, predicate))
