"""Baseline security architectures the paper positions itself against.

The related-work section contrasts the paper's *distributed* firewalls with
*centralised* approaches, chiefly Coburn et al.'s SECA, where "each SEI
computes information from the data handled by its associated IP and sends it
to a global manager (SEM, Security Enforcement Module).  The SEM manages the
security of the system and controls all SEIs".  To make that comparison
measurable, this package implements a centralised baseline:

* one :class:`~repro.baselines.centralized.CentralizedSecurityModule` holds
  the whole platform's policy set and performs every check itself,
* thin :class:`~repro.baselines.centralized.CentralizedEnforcementInterface`
  shims on the slave ports forward each transaction to that module *after* it
  has crossed the shared bus,
* because the module is a single shared resource, concurrent checks queue up.

The ``bench_baseline_centralized`` benchmark quantifies the two consequences
the paper's distributed design avoids: malicious traffic still consumes bus
bandwidth before being rejected, and checking latency grows with contention.
"""

from repro.baselines.centralized import (
    CentralizedEnforcementInterface,
    CentralizedPlatform,
    CentralizedSecurityModule,
    secure_platform_centralized,
)

__all__ = [
    "CentralizedSecurityModule",
    "CentralizedEnforcementInterface",
    "CentralizedPlatform",
    "secure_platform_centralized",
]
