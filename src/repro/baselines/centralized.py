"""Centralised security enforcement baseline (SECA-style).

One global Security Enforcement Module (SEM) owns every policy and performs
every check.  Enforcement interfaces on the slave side forward transactions to
it, which means:

* a malicious transaction must first win bus arbitration and occupy the bus
  before the SEM can reject it — there is no containment at the infected IP's
  interface, unlike the paper's Local Firewalls;
* the SEM is a single shared resource, so simultaneous checks from different
  masters serialise and the effective check latency grows with load;
* on the plus side, the hardware cost is one checker instead of one per
  interface (the area model exposes that trade-off too).

The module reuses the same checking modules and policy representation as the
distributed design so the comparison isolates *where* enforcement happens, not
*what* is enforced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.alerts import SecurityAlert, SecurityMonitor, ViolationType
from repro.core.checks import CheckResult, SecurityCheck, default_check_suite
from repro.core.constants import SECURITY_BUILDER_CYCLES
from repro.core.policy import ConfigurationMemory, PolicyLookupError
from repro.core.secure import SecurityConfiguration, default_policies
from repro.metrics.resources import ResourceVector
from repro.soc.kernel import Component, Simulator
from repro.soc.ports import FilterResult, TransactionFilter
from repro.soc.system import SoCSystem
from repro.soc.transaction import BusTransaction

__all__ = [
    "CentralizedSecurityModule",
    "CentralizedEnforcementInterface",
    "CentralizedPlatform",
    "secure_platform_centralized",
]


class CentralizedSecurityModule(Component):
    """The global Security Enforcement Module.

    A single-ported checker: every evaluation occupies it for
    ``check_latency`` cycles, and evaluations that arrive while it is busy
    queue up (FIFO), which is how centralisation turns into latency under
    concurrent traffic.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config_memory: ConfigurationMemory,
        monitor: Optional[SecurityMonitor] = None,
        checks: Optional[List[SecurityCheck]] = None,
        check_latency: int = SECURITY_BUILDER_CYCLES,
    ) -> None:
        super().__init__(sim, name)
        self.config_memory = config_memory
        self.monitor = monitor
        self.checks = checks if checks is not None else default_check_suite()
        self.check_latency = check_latency
        self._busy_until = 0
        self.evaluations = 0
        self.violations = 0
        self.total_queue_cycles = 0

    def evaluate(self, txn: BusTransaction) -> Tuple[bool, int, str]:
        """Check a transaction; returns (allowed, total latency, reason).

        The latency includes the time the request spent waiting for the SEM
        to become free.
        """
        now = self.sim.now
        start = max(now, self._busy_until)
        queue_delay = start - now
        self._busy_until = start + self.check_latency
        total_latency = queue_delay + self.check_latency

        self.evaluations += 1
        self.total_queue_cycles += queue_delay
        self.bump("evaluations")
        if queue_delay:
            self.bump("queued_evaluations")
            self.bump("queue_cycles", queue_delay)

        try:
            policy = self.config_memory.lookup(txn.address, txn.size)
        except PolicyLookupError as exc:
            self._alert(txn, ViolationType.POLICY_MISS, str(exc))
            return False, total_latency, "policy miss"

        for check in self.checks:
            result: CheckResult = check.check(policy, txn)
            if not result.passed:
                assert result.violation is not None
                self._alert(txn, result.violation, result.detail)
                return False, total_latency, result.detail
        return True, total_latency, ""

    def _alert(self, txn: BusTransaction, violation: ViolationType, detail: str) -> None:
        self.violations += 1
        self.bump("violations")
        if self.monitor is not None:
            self.monitor.raise_alert(
                SecurityAlert.for_violation(
                    cycle=self.sim.now,
                    firewall=self.name,
                    master=txn.master,
                    violation=violation,
                    address=txn.address,
                    txn_id=txn.txn_id,
                    detail=detail,
                )
            )

    def average_queue_delay(self) -> float:
        """Average cycles an evaluation waited for the SEM (contention metric)."""
        return self.total_queue_cycles / self.evaluations if self.evaluations else 0.0


class CentralizedEnforcementInterface(TransactionFilter):
    """Slave-side shim forwarding every transaction to the central SEM."""

    name = "centralized_enforcement"

    def __init__(self, sem: CentralizedSecurityModule, label: str) -> None:
        self.sem = sem
        self.label = label

    def filter_request(self, txn: BusTransaction) -> FilterResult:
        allowed, latency, reason = self.sem.evaluate(txn)
        if allowed:
            return FilterResult.allow(latency=latency, stage="sem_check")
        return FilterResult.deny(
            reason=f"{self.label}: {reason}", latency=latency, stage="sem_check"
        )


@dataclass
class CentralizedPlatform:
    """Handle on a platform protected by the centralised baseline."""

    system: SoCSystem
    monitor: SecurityMonitor
    module: CentralizedSecurityModule
    interfaces: Dict[str, CentralizedEnforcementInterface] = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        return {
            "evaluations": self.module.evaluations,
            "violations": self.module.violations,
            "average_queue_delay": self.module.average_queue_delay(),
            "alerts": self.monitor.summary(),
        }

    def estimated_area(self) -> ResourceVector:
        """Back-of-the-envelope area: one SEM instead of N Local Firewalls.

        The SEM reuses the Local Firewall's checking logic but holds the whole
        platform's rule set; modelled as one LF sized for the union of rules.
        """
        from repro.metrics.area import AreaModel

        model = AreaModel()
        return model.platform_without_firewalls() + model.local_firewall_area(
            n_rules=self.module.config_memory.total_rule_count()
        ) + model.integration_overhead_per_firewall


def secure_platform_centralized(
    system: SoCSystem,
    config: Optional[SecurityConfiguration] = None,
) -> CentralizedPlatform:
    """Attach the centralised baseline to an unprotected platform.

    Installs the same access-control rules as
    :func:`repro.core.secure.secure_platform` (per-slave read/write, data
    format and burst rules), but evaluated by a single central module on the
    slave side of the bus.  External-memory ciphering is *not* part of this
    baseline — SECA-style architectures control communications only, which is
    exactly the gap the paper's LCF fills.
    """
    config = config or SecurityConfiguration()
    policies = default_policies()
    soc_config = system.config
    sim = system.sim

    monitor = SecurityMonitor()
    global_rules = ConfigurationMemory("cfg_sem", capacity=max(16, config.config_memory_capacity))
    global_rules.add(soc_config.bram_base, soc_config.bram_size,
                     policies["internal_full"], label="bram")
    global_rules.add(soc_config.ip_regs_base, 4 * soc_config.ip_n_registers,
                     policies["ip_registers"], label="ip0_regs")
    global_rules.add(soc_config.ddr_base, soc_config.ddr_size,
                     policies["ddr_plain"], label="ddr")

    sem = CentralizedSecurityModule(sim, "sem", global_rules, monitor=monitor)
    platform = CentralizedPlatform(system=system, monitor=monitor, module=sem)

    for slave_name, port in system.slave_ports.items():
        interface = CentralizedEnforcementInterface(sem, label=f"sem@{slave_name}")
        port.attach_filter(interface)
        platform.interfaces[slave_name] = interface
    return platform
