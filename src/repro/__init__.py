"""repro -- reproduction of "Distributed security for communications and
memories in a multiprocessor architecture" (Cotret et al., RAW/IPDPS 2011).

The package is organised bottom-up:

* :mod:`repro.crypto` -- AES-128, SHA-256, CMAC/HMAC, Merkle hash trees,
  timestamp/nonce management, key store,
* :mod:`repro.soc` -- behavioural MPSoC simulator (event kernel, shared bus,
  BRAM/DDR, MicroBlaze-like processors, DMA, register-file IP),
* :mod:`repro.core` -- the paper's contribution: security policies,
  configuration memories, Local Firewalls, the Local Ciphering Firewall,
  alerts and the reconfiguration manager,
* :mod:`repro.attacks` -- spoofing / replay / relocation / hijack / DoS
  attack injection and campaign scoring,
* :mod:`repro.scenarios` -- declarative topologies (``ScenarioSpec``), the
  scenario builder/registry and the fast-vs-reference differential harness,
* :mod:`repro.workloads` -- synthetic and application-shaped workloads,
* :mod:`repro.metrics` -- area model (Table I), latency model (Table II),
  execution-overhead analysis,
* :mod:`repro.analysis` -- tables, architecture reports, paper comparison.

* :mod:`repro.api` -- the unified experiment API: the ``Experiment`` façade
  (scenario -> build -> workload -> campaign -> ``ExperimentResult``), the
  instrumentation event bus and the ``python -m repro`` CLI,
* :mod:`repro.sweep` -- grid sweeps over the scenario registry with a
  persistent content-addressed result store and one-command regeneration of
  the paper's tables (``python -m repro paper``).

Quickstart::

    from repro.api import Experiment
    result = Experiment.from_scenario("paper_baseline").run()
    print(result.to_json())

or, for handle-level access to the reference platform::

    from repro import build_reference_platform, secure_reference_platform
    system = build_reference_platform()
    security = secure_reference_platform(system)
    # load programs, run, inspect security.monitor ...

See ``examples/quickstart.py`` for a complete walk-through.
"""

from repro.soc.system import SoCConfig, SoCSystem, build_reference_platform
from repro.core.secure import (
    SecurityConfiguration,
    SecuredPlatform,
    secure_platform,
    secure_reference_platform,
)
from repro.core.policy import (
    ConfidentialityMode,
    ConfigurationMemory,
    IntegrityMode,
    ReadWriteAccess,
    SecurityPolicy,
)
from repro.core.local_firewall import LocalFirewall
from repro.core.ciphering_firewall import LocalCipheringFirewall
from repro.core.alerts import SecurityMonitor, ViolationType
from repro.core.manager import SecurityPolicyManager

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SoCConfig",
    "SoCSystem",
    "build_reference_platform",
    "SecurityConfiguration",
    "SecuredPlatform",
    "secure_platform",
    "secure_reference_platform",
    "Experiment",
    "ExperimentResult",
    "SecurityPolicy",
    "ConfigurationMemory",
    "ReadWriteAccess",
    "ConfidentialityMode",
    "IntegrityMode",
    "LocalFirewall",
    "LocalCipheringFirewall",
    "SecurityMonitor",
    "ViolationType",
    "SecurityPolicyManager",
]


def __getattr__(name):
    # Lazy re-exports of the unified experiment API: ``repro.api`` pulls in
    # the scenario and attack layers, which would make ``import repro``
    # needlessly heavy (and cyclic) if imported eagerly here.
    if name in ("Experiment", "ExperimentResult"):
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
