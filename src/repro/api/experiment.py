"""The :class:`Experiment` façade: one pipeline from scenario to report.

Before this layer, reproducing one of the paper's claims meant hand-wiring
four entry points — ``secure_platform`` (or ``attach_security``),
``ScenarioBuilder.build``, ``CampaignRunner`` and the monitor/metrics
harvesting — and every example, benchmark and analysis script re-implemented
the plumbing.  ``Experiment`` composes the whole pipeline behind one fluent
surface::

    from repro.api import Experiment

    result = (
        Experiment.from_scenario("deep_hierarchy_3seg")
        .with_attacks(AttackSpec("replay"), AttackSpec("cross_segment_probe",
                                                       {"hijacked_master": "dma"}))
        .with_reconfig(ReconfigSpec(at_cycle=500, firewall="lf_cpu0",
                                    rule_base=0x0, action="make_readonly"))
        .protected(True)
        .campaign(n_workers=4)
        .run()
    )
    print(result.to_json())

``run()`` resolves the scenario, builds the fabric, attaches security, drives
the workload (with mid-run reconfigurations), shards the attack campaign, and
folds alerts, per-hop latency, the leaf-vs-bridge placement split, the area
model, the campaign report and run metadata into one JSON-serializable
:class:`ExperimentResult` — the uniform record the analysis layer, the
benchmarks, the examples and the ``python -m repro`` CLI all consume.

Instrumentation is opt-in: attach sinks (``with_sink``) or force a sink-less
bus (``instrumented()``); either way the simulation itself is byte-identical
to an uninstrumented run, which keeps the PR-2 differential guarantees
intact — ``reference(True)`` runs the entire experiment under
:func:`repro.scenarios.differential.reference_mode` for exactly that check.

One :class:`ExperimentResult` is also one *cacheable unit*: the sweep layer
(:mod:`repro.sweep`) keys serialized results by scenario definition and code
fingerprint in a persistent :class:`~repro.sweep.store.ResultStore`, and the
paper's tables are regenerated from those stored payloads alone — which is
why the protected run folds its Table-II module-latency averages
(``latency["table2"]``) into the record instead of leaving them on the live
firewall objects.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.api.events import EventBus, EventSink
from repro.attacks.campaign import CampaignReport
from repro.attacks.runner import CampaignRunner
from repro.core.secure import SecuredPlatform
from repro.engine import EngineSpec
from repro.metrics.area import AreaModel
from repro.metrics.latency import aggregate_hop_latency, generate_table2, placement_split
from repro.scenarios import get_scenario, list_scenarios
from repro.scenarios.builder import BuiltScenario, ScenarioBuilder
from repro.scenarios.differential import reference_mode
from repro.scenarios.spec import AttackSpec, ReconfigSpec, ScenarioSpec, WorkloadSpec

__all__ = ["Experiment", "ExperimentResult", "RESULT_SCHEMA_VERSION"]


#: Bumped whenever the shape of :meth:`ExperimentResult.to_dict` changes.
#: v2: ``latency`` gained ``table2`` (per-module firewall latency rows).
RESULT_SCHEMA_VERSION = 2


def _jsonable(value: Any) -> Any:
    """Recursively coerce a value into JSON-serializable primitives."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return value.hex()
    if hasattr(value, "value") and not isinstance(value, type):  # enums
        return _jsonable(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    return repr(value)


def _campaign_section(report: CampaignReport) -> Dict[str, Any]:
    """Uniform, serializable view of a campaign report."""
    return {
        "summary": report.summary(),
        "rows": report.as_table_rows(),
        "monitor_totals": dict(report.monitor_totals),
        "event_totals": dict(report.event_totals),
        "metrics": dict(report.metrics),
    }


@dataclass
class ExperimentResult:
    """Everything one experiment produced, as plain serializable data.

    ``to_dict()`` / ``to_json()`` are schema-stable (see
    :data:`RESULT_SCHEMA_VERSION`): consumers — ``analysis``, benchmarks,
    the CLI's ``--json`` mode, downstream tooling — can rely on the key set.
    Wall-clock timings live only under ``campaign.metrics``; every other
    field is deterministic for a fixed scenario and seed.
    """

    scenario: str
    description: str
    protected: bool
    enforcement: str
    placement: str
    seed: int
    reference: bool
    workload: Dict[str, Any]
    alerts: Optional[Dict[str, Any]]
    reactions: Optional[Dict[str, Any]]
    security: Optional[Dict[str, Any]]
    latency: Dict[str, Any]
    area: Dict[str, Any]
    campaign: Optional[Dict[str, Any]]
    events: Optional[Dict[str, int]]
    memories: Dict[str, str]
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dictionary (stable key set, sorted on dump)."""
        payload = {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}
        payload["schema_version"] = RESULT_SCHEMA_VERSION
        return _jsonable(payload)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


class Experiment:
    """Fluent builder/runner for one scenario-to-report pipeline.

    Construct with :meth:`from_scenario` (registry name, resolved fresh at
    run time) or :meth:`from_spec` (an explicit
    :class:`~repro.scenarios.spec.ScenarioSpec`).  Configuration methods
    mutate and return ``self`` so they chain; :meth:`run` executes the
    pipeline and returns an :class:`ExperimentResult`; :meth:`build` returns
    the live :class:`~repro.scenarios.builder.BuiltScenario` for callers that
    need handles on the platform (tutorial examples, custom drivers).
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        spec.validate()
        self._spec = spec
        self._protected = True
        self._reference = False
        self._run_attacks = True
        self._n_workers: Optional[int] = 1
        self._seed = 0
        self._sinks: List[EventSink] = []
        self._instrumented = False

    # -- constructors --------------------------------------------------------------

    @classmethod
    def from_scenario(cls, name: str) -> "Experiment":
        """An experiment over a registered scenario (fresh spec per call)."""
        return cls(get_scenario(name))

    @classmethod
    def from_spec(cls, spec: ScenarioSpec) -> "Experiment":
        """An experiment over an explicit scenario specification."""
        return cls(spec)

    @staticmethod
    def scenarios() -> List[str]:
        """Registered scenario names (the ``python -m repro list`` surface)."""
        return list_scenarios()

    # -- configuration -------------------------------------------------------------

    @property
    def spec(self) -> ScenarioSpec:
        """The (possibly overridden) scenario specification this will run."""
        return self._spec

    def protected(self, enabled: bool = True) -> "Experiment":
        """Attach (default) or skip the security enhancements.

        The attack campaign always scores both variants; this flag selects
        the build the *workload* phase drives and reports on.
        """
        self._protected = enabled
        return self

    def reference(self, enabled: bool = True) -> "Experiment":
        """Run the whole pipeline under forced reference implementations
        (FIPS AES, byte-wise SHA-256, uncached decisions/keystreams)."""
        self._reference = enabled
        return self

    def with_attacks(self, *attacks: AttackSpec) -> "Experiment":
        """Replace the scenario's attack mix (empty = attack-free run)."""
        self._spec = dataclasses.replace(self._spec, attacks=tuple(attacks))
        return self

    def with_reconfig(self, *reconfigs: ReconfigSpec) -> "Experiment":
        """Append mid-run reconfiguration events to the scenario."""
        self._spec = dataclasses.replace(
            self._spec, reconfigs=self._spec.reconfigs + tuple(reconfigs)
        )
        return self

    def with_workload(self, workload: Optional[WorkloadSpec]) -> "Experiment":
        """Replace the workload mix (None = attack-only experiment)."""
        self._spec = dataclasses.replace(self._spec, workload=workload)
        return self

    def with_seed(self, seed: int) -> "Experiment":
        """Base seed of the campaign's deterministic per-shard seeding."""
        self._seed = seed
        return self

    def with_engine(self, mode: str) -> "Experiment":
        """Select the execution engine for the workload phase.

        ``"object"`` (the event-driven kernel, the default), ``"vector"``
        (the batch engine — parallel-array decode and policy passes over the
        whole stream) or ``"auto"`` (vector where eligible).  Engine choice
        never changes the result — the vector engine is an exact event mirror
        and declines whole runs it cannot mirror — so every field of the
        :class:`ExperimentResult` except ``meta["engine"]`` and wall-clock
        timings is identical across modes.
        """
        engine = EngineSpec(mode=mode)
        engine.validate()
        self._spec = dataclasses.replace(self._spec, engine=engine)
        return self

    def campaign(self, n_workers: Optional[int] = None) -> "Experiment":
        """Shard the attack campaign across worker processes.

        ``None`` lets the runner pick (one worker per attack, capped); the
        default without calling this is the serial in-process path.
        """
        self._n_workers = n_workers
        return self

    def no_attacks(self) -> "Experiment":
        """Skip the attack campaign even if the scenario defines a mix."""
        self._run_attacks = False
        return self

    def with_sink(self, sink: EventSink) -> "Experiment":
        """Attach an instrumentation sink (implies an event bus)."""
        self._sinks.append(sink)
        self._instrumented = True
        return self

    def instrumented(self, enabled: bool = True) -> "Experiment":
        """Force an event bus even with zero sinks (byte-identity checks)."""
        self._instrumented = enabled
        return self

    # -- execution -----------------------------------------------------------------

    def build(self) -> BuiltScenario:
        """Construct the platform (with instrumentation, when configured).

        This is the supported replacement for direct
        ``ScenarioBuilder(spec).build()`` use: same
        :class:`BuiltScenario`, no deprecation warning, bus pre-wired.
        """
        built = ScenarioBuilder(self._spec).build(self._protected, _warn=False)
        if self._instrumented or self._sinks:
            built.attach_instrumentation(EventBus(self._sinks))
        return built

    def run(self) -> ExperimentResult:
        """Execute the pipeline and return the uniform result record."""
        context = reference_mode() if self._reference else contextlib.nullcontext()
        with context:
            return self._run_inner()

    # -- internals -----------------------------------------------------------------

    def _run_inner(self) -> ExperimentResult:
        spec = self._spec
        bus: Optional[EventBus] = None
        if self._instrumented or self._sinks:
            bus = EventBus(self._sinks)

        built = ScenarioBuilder(spec).build(self._protected, _warn=False)
        if bus is not None:
            built.attach_instrumentation(bus)
        final_cycle = built.run_workload()
        system = built.system

        workload = {
            "final_cycle": final_cycle,
            "makespan": system.execution_cycles(),
            "events_processed": system.sim.events_processed,
            "operations": None if spec.workload is None else spec.workload.n_operations,
        }

        security = built.security
        alerts = reactions = security_summary = None
        latency: Dict[str, Any] = {
            "per_hop": aggregate_hop_latency(system.bus.monitor.history),
            "placement_split": [],
            "table2": [],
        }
        if built.monitor is not None:
            alerts = built.monitor.summary()
        if isinstance(security, SecuredPlatform):
            reactions = security.manager.summary()
            security_summary = security.summary()
            latency["placement_split"] = [
                dataclasses.asdict(row) for row in placement_split(security)
            ]
            # Table-II averages measured on this run's live firewall counters,
            # serialized here so the sweep store can regenerate the paper's
            # latency table without re-simulating.
            ciphering = list(security.ciphering_firewalls.values())
            locals_ = (
                list(security.master_firewalls.values())
                + list(security.slave_firewalls.values())
                + list(security.bridge_firewalls.values())
                + ciphering[1:]
            )
            latency["table2"] = [
                dataclasses.asdict(row)
                for row in generate_table2(locals_, ciphering[0] if ciphering else None)
            ]

        area_model = AreaModel()
        if isinstance(security, SecuredPlatform):
            area_vector = area_model.platform_area_from_secured(security)
        else:
            area_vector = area_model.platform_without_firewalls()
        area = {
            "resources": area_vector.as_dict(),
            "overhead_vs_baseline": area_vector.overhead_vs(
                area_model.platform_without_firewalls()
            ),
        }

        campaign = None
        if self._run_attacks and spec.attacks:
            runner = CampaignRunner.from_spec(
                spec,
                n_workers=self._n_workers,
                base_seed=self._seed,
                collect_events=bus is not None,
            )
            campaign = _campaign_section(runner.run())

        events = self._events_section(bus)
        if bus is not None:
            # Flush, don't close: the sinks are caller-owned, and the fluent
            # builder may be run() again (or a trace sink reused elsewhere).
            bus.flush()

        return ExperimentResult(
            scenario=spec.name,
            description=spec.description,
            protected=self._protected,
            enforcement=spec.enforcement,
            placement=spec.placement,
            seed=self._seed,
            reference=self._reference,
            workload=workload,
            alerts=alerts,
            reactions=reactions,
            security=security_summary,
            latency=latency,
            area=area,
            campaign=campaign,
            events=events,
            memories=_memory_digests(system),
            meta={
                "n_workers": self._n_workers,
                "instrumented": bus is not None,
                "sinks": [type(s).__name__ for s in self._sinks],
                # Provenance only: which engine drained the workload phase.
                # Results are engine-invariant, so this never feeds a cache
                # key or a fingerprint comparison.
                "engine": (
                    built.engine_report.to_dict()
                    if built.engine_report is not None
                    else {"requested": spec.engine.mode, "used": "object",
                          "fallback_reason": None}
                ),
            },
        )

    def _events_section(self, bus: Optional[EventBus]) -> Optional[Dict[str, int]]:
        """Per-kind counts of the run's single event stream.

        Every sink observed the same stream, so the first counting-capable
        sink's tallies *are* the stream's tallies — summing across sinks
        would multiply them by the sink count.
        """
        if bus is None:
            return None
        for sink in bus.sinks:
            counts = getattr(sink, "counts", None)
            if counts is not None:
                return dict(counts)
        return {}


def _memory_digests(system) -> Dict[str, str]:
    """Digest every memory/IP image (the byte-identity observable).

    Imported lazily from the differential harness to keep one definition of
    "the ciphertexts the external attacker sees".
    """
    from repro.scenarios.differential import _memory_digests as digests

    return digests(system)


def run_experiment(
    name: str,
    protected: bool = True,
    n_workers: Optional[int] = 1,
    seed: int = 0,
    sinks: Sequence[EventSink] = (),
) -> ExperimentResult:
    """One-call convenience wrapper: ``Experiment.from_scenario(name)...run()``."""
    experiment = Experiment.from_scenario(name).protected(protected).with_seed(seed)
    experiment.campaign(n_workers)
    for sink in sinks:
        experiment.with_sink(sink)
    return experiment.run()
