"""Typed instrumentation event bus.

Observability used to be wired by hand: examples poked
``security.monitor.alerts``, benchmarks read firewall counters, the campaign
runner summarised monitors inside each worker — every consumer re-implemented
its own harvesting.  This module replaces that with one publish/subscribe
surface:

* **publishers** — the simulation kernel, bus segments, bridges, master
  ports, firewalls, the security monitor and the policy manager — emit
  structured events through an optional bus handle (``sim.event_bus`` /
  ``monitor.event_bus``).  Publishers never import this module; they emit
  through the attribute with plain keyword data, so the substrate stays free
  of API-layer dependencies,
* **sinks** subscribe to the bus: an in-memory aggregator for programmatic
  inspection, a JSONL trace writer for offline analysis, and a counting-only
  stats sink cheap enough to leave on during benchmarks,
* the **zero-sink fast path**: with no bus attached (the default) publishers
  pay a single ``is None`` check; with a bus but no sinks, ``emit`` returns
  before building the event object.  Emission never schedules kernel events
  or charges latency, so instrumented and uninstrumented runs are
  byte-identical — the PR-2 differential guarantees and the PR-1/PR-3
  performance are preserved by construction.

Event vocabulary (``kind`` strings; ``EVENT_KINDS`` is the closed set):

==========================  ====================================================
kind                        emitted when
==========================  ====================================================
``txn.issued``              a master port accepts a transaction
``txn.completed``           a transaction completes at its master port
``txn.blocked``             a transaction terminates blocked/errored
``bus.granted``             a segment's arbiter grants a transaction
``bridge.containment``      a bridge-placed filter chain denies a transaction
``bridge.posted_failure``   a posted write fails downstream after its ack
``firewall.decision``       a Local (Ciphering) Firewall allows/denies a request
``security.alert``          the security monitor records an alert
``security.reconfiguration``  the manager rewrites a policy rule
``security.reaction``       any other countermeasure (quarantine, zeroise, ...)
``sim.run``                 one ``Simulator.run`` drain completes
==========================  ====================================================

Consumers: ``python -m repro run --trace FILE`` streams the vocabulary to a
JSONL file through :class:`JsonlTraceSink`; the sharded campaign runner
attaches a :class:`StatsSink` per worker and merges the per-kind counts into
``CampaignReport.event_totals``; sweep results (:mod:`repro.sweep`) persist
whatever counts the experiment collected as part of the stored record.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Union

__all__ = [
    "EVENT_KINDS",
    "TXN_ISSUED",
    "TXN_COMPLETED",
    "TXN_BLOCKED",
    "BUS_GRANTED",
    "BRIDGE_CONTAINMENT",
    "BRIDGE_POSTED_FAILURE",
    "FIREWALL_DECISION",
    "SECURITY_ALERT",
    "SECURITY_RECONFIGURATION",
    "SECURITY_REACTION",
    "SIM_RUN",
    "InstrumentationEvent",
    "EventSink",
    "EventBus",
    "InMemorySink",
    "StatsSink",
    "JsonlTraceSink",
    "attach_instrumentation",
]


TXN_ISSUED = "txn.issued"
TXN_COMPLETED = "txn.completed"
TXN_BLOCKED = "txn.blocked"
BUS_GRANTED = "bus.granted"
BRIDGE_CONTAINMENT = "bridge.containment"
BRIDGE_POSTED_FAILURE = "bridge.posted_failure"
FIREWALL_DECISION = "firewall.decision"
SECURITY_ALERT = "security.alert"
SECURITY_RECONFIGURATION = "security.reconfiguration"
SECURITY_REACTION = "security.reaction"
SIM_RUN = "sim.run"

#: The closed vocabulary of event kinds (publishers emit these exact strings).
EVENT_KINDS = frozenset(
    {
        TXN_ISSUED,
        TXN_COMPLETED,
        TXN_BLOCKED,
        BUS_GRANTED,
        BRIDGE_CONTAINMENT,
        BRIDGE_POSTED_FAILURE,
        FIREWALL_DECISION,
        SECURITY_ALERT,
        SECURITY_RECONFIGURATION,
        SECURITY_REACTION,
        SIM_RUN,
    }
)


@dataclass(frozen=True)
class InstrumentationEvent:
    """One structured event published on the bus.

    ``cycle`` is the simulation cycle at emission time, ``source`` the name
    of the emitting component, and ``data`` the kind-specific payload
    (master, address, verdicts, ...).  Events are emitted synchronously in
    kernel callback order, so two runs with identical seeds produce identical
    event streams (modulo the process-global ``txn_id`` counter).
    """

    kind: str
    cycle: int
    source: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the JSONL trace schema)."""
        return {"kind": self.kind, "cycle": self.cycle, "source": self.source, "data": dict(self.data)}


class EventSink:
    """Base class for event consumers.

    Subclasses override :meth:`handle`.  A sink that only needs per-kind
    counts can set ``counts_only = True`` and implement :meth:`record_kind`;
    when *every* sink on a bus is counting-only, ``emit`` skips constructing
    the event object entirely, which is what keeps an always-on stats sink
    within noise on the benchmarks.
    """

    counts_only = False

    def handle(self, event: InstrumentationEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def record_kind(self, kind: str) -> None:
        """Counting-only fast path; default builds nothing and does nothing."""

    def record_kind_n(self, kind: str, n: int) -> None:
        """Batch counting: record ``n`` occurrences of ``kind`` at once.

        The vector engine settles whole batches of per-transaction events in
        one call at flush time instead of emitting them one by one; the
        default delegates to :meth:`record_kind` ``n`` times so any existing
        counting sink stays correct, while :class:`StatsSink` overrides it
        with a single dict update.
        """
        for _ in range(n):
            self.record_kind(kind)

    def flush(self) -> None:
        """Push buffered output to its destination; default is a no-op."""

    def close(self) -> None:
        """Flush/release resources (JSONL writer); default is a no-op."""


class EventBus:
    """Dispatches published events to every registered sink.

    The bus itself is passive plumbing: publishers call
    ``bus.emit(kind, cycle, source, **data)`` and the bus fans out to sinks.
    With zero sinks ``emit`` is a guarded early return; with counting-only
    sinks no event object is built.
    """

    __slots__ = ("_sinks", "count_only")

    def __init__(self, sinks: Optional[List[EventSink]] = None) -> None:
        self._sinks: List[EventSink] = []
        #: True while every attached sink is counting-only (or none is
        #: attached).  Hot publishers check this and call :meth:`count`
        #: instead of :meth:`emit`, skipping payload construction entirely —
        #: that is what keeps an always-on stats sink within the <5% budget
        #: the benchmark suite asserts.
        self.count_only = True
        for sink in sinks or []:
            self.subscribe(sink)

    @property
    def active(self) -> bool:
        """Whether any sink is attached (publishers may pre-check this)."""
        return bool(self._sinks)

    @property
    def sinks(self) -> List[EventSink]:
        return list(self._sinks)

    def subscribe(self, sink: EventSink) -> EventSink:
        """Register a sink; returns it for chaining."""
        self._sinks.append(sink)
        self.count_only = all(getattr(s, "counts_only", False) for s in self._sinks)
        return sink

    def count(self, kind: str) -> None:
        """Payload-free publication: bump every sink's counter for ``kind``.

        Only valid while :attr:`count_only` is True (callers check); a
        full-event sink would otherwise miss the event.
        """
        for sink in self._sinks:
            sink.record_kind(kind)

    def count_n(self, kind: str, n: int) -> None:
        """Batch publication: ``n`` occurrences of ``kind`` in one call.

        Same :attr:`count_only` contract as :meth:`count`.  The vector engine
        uses this to settle per-transaction event counts once per drained
        batch rather than once per transaction.
        """
        if n <= 0:
            return
        for sink in self._sinks:
            sink.record_kind_n(kind, n)

    def emit(self, kind: str, cycle: int, source: str, **data: Any) -> None:
        """Publish one event (no-op without sinks)."""
        sinks = self._sinks
        if not sinks:
            return
        if self.count_only:
            for sink in sinks:
                sink.record_kind(kind)
            return
        event = InstrumentationEvent(kind=kind, cycle=cycle, source=source, data=data)
        for sink in sinks:
            sink.handle(event)

    def flush(self) -> None:
        """Flush every sink without releasing it (safe between runs)."""
        for sink in self._sinks:
            sink.flush()

    def close(self) -> None:
        """Close every sink (flushes trace writers)."""
        for sink in self._sinks:
            sink.close()


class InMemorySink(EventSink):
    """Aggregating sink: keeps the full event stream plus per-kind counts."""

    def __init__(self) -> None:
        self.events: List[InstrumentationEvent] = []
        self.counts: Dict[str, int] = {}

    def handle(self, event: InstrumentationEvent) -> None:
        self.events.append(event)
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1

    def of_kind(self, kind: str) -> List[InstrumentationEvent]:
        """All recorded events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]


class StatsSink(EventSink):
    """Counting-only sink: per-kind counters, no event objects, no payloads."""

    counts_only = True

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def record_kind(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def record_kind_n(self, kind: str, n: int) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + n

    def handle(self, event: InstrumentationEvent) -> None:
        # Mixed-bus fallback (another sink forced full event construction).
        self.record_kind(event.kind)

    def total(self) -> int:
        return sum(self.counts.values())


class JsonlTraceSink(EventSink):
    """Writes one JSON object per event to a file or stream.

    Each line follows :meth:`InstrumentationEvent.to_dict`:
    ``{"kind": ..., "cycle": ..., "source": ..., "data": {...}}``.

    Path-opened sinks flush after every line by default (``line_flush``),
    so a crashed or killed run leaves a trace complete up to its last event
    and a live ``tail -f``/subscriber sees events as they happen rather
    than only at close.  ``append=True`` reopens an existing trace path
    without truncating prior events (a restarted daemon keeps one
    continuous trace).  Caller-owned streams default to buffered writes —
    pass ``line_flush=True`` to stream through e.g. a pipe.
    """

    def __init__(
        self,
        target: Union[str, IO[str]],
        *,
        append: bool = False,
        line_flush: Optional[bool] = None,
    ) -> None:
        if isinstance(target, str):
            self._stream: IO[str] = open(target, "a" if append else "w", encoding="utf-8")
            self._owns_stream = True
            self._line_flush = True if line_flush is None else line_flush
        else:
            self._stream = target
            self._owns_stream = False
            self._line_flush = False if line_flush is None else line_flush
        self.events_written = 0

    def handle(self, event: InstrumentationEvent) -> None:
        self._stream.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self.events_written += 1
        if self._line_flush:
            self._stream.flush()

    def flush(self) -> None:
        self._stream.flush()

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


def attach_instrumentation(system, security=None, bus: Optional[EventBus] = None) -> EventBus:
    """Wire an event bus into a built platform.

    Sets ``sim.event_bus`` (kernel, ports, segments, bridges and firewalls
    publish through it) and, when a security layer is present,
    ``monitor.event_bus`` so alerts are published too.  Returns the bus
    (a fresh empty one when none is given).
    """
    bus = bus or EventBus()
    system.sim.event_bus = bus
    if security is not None:
        monitor = getattr(security, "monitor", None)
        if monitor is not None:
            monitor.event_bus = bus
    return bus
