"""``python -m repro`` / ``repro``: the experiment pipeline from a shell.

Subcommands:

* ``repro list [--json]`` — registered scenarios with their descriptions,
* ``repro run SCENARIO [--json] [--trace FILE] [--unprotected] [--reference]
  [--no-attacks] [--workers N] [--seed N]`` — one full experiment; human
  report by default, the schema-stable :class:`ExperimentResult` JSON with
  ``--json``, a JSONL instrumentation trace with ``--trace``,
* ``repro campaign SCENARIO [--json] [--workers N] [--seed N]`` — the
  scenario's attack campaign only (sharded), printed as a detection matrix.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.api.events import JsonlTraceSink, StatsSink
from repro.api.experiment import Experiment
from repro.analysis.report import render_experiment
from repro.analysis.tables import format_table
from repro.scenarios import get_scenario, list_scenarios

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed-firewall MPSoC reproduction: run experiments from the shell.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list registered scenarios")
    list_cmd.add_argument("--json", action="store_true", help="machine-readable output")

    run_cmd = sub.add_parser("run", help="run one scenario end to end")
    run_cmd.add_argument("scenario", help="registered scenario name")
    run_cmd.add_argument("--json", action="store_true", help="emit the ExperimentResult as JSON")
    run_cmd.add_argument("--trace", metavar="FILE", default=None,
                         help="write a JSONL instrumentation trace to FILE")
    run_cmd.add_argument("--unprotected", action="store_true",
                         help="drive the workload on the unprotected build")
    run_cmd.add_argument("--reference", action="store_true",
                         help="force the reference implementations (differential mode)")
    run_cmd.add_argument("--no-attacks", action="store_true",
                         help="skip the scenario's attack campaign")
    run_cmd.add_argument("--workers", type=int, default=1, metavar="N",
                         help="campaign worker processes (default: 1, serial)")
    run_cmd.add_argument("--seed", type=int, default=0, help="campaign base seed")

    campaign_cmd = sub.add_parser("campaign", help="run only the scenario's attack campaign")
    campaign_cmd.add_argument("scenario", help="registered scenario name")
    campaign_cmd.add_argument("--json", action="store_true", help="machine-readable output")
    campaign_cmd.add_argument("--workers", type=int, default=None, metavar="N",
                              help="worker processes (default: one per attack, capped)")
    campaign_cmd.add_argument("--seed", type=int, default=0, help="campaign base seed")

    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    names = list_scenarios()
    if args.json:
        payload = [
            {"name": name, "description": get_scenario(name).description} for name in names
        ]
        print(json.dumps(payload, indent=2))
        return 0
    for name in names:
        print(f"{name:32s} {get_scenario(name).description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    experiment = (
        Experiment.from_scenario(args.scenario)
        .protected(not args.unprotected)
        .reference(args.reference)
        .with_seed(args.seed)
        .campaign(args.workers)
    )
    if args.no_attacks:
        experiment.no_attacks()
    trace_sink = None
    if args.trace:
        trace_sink = JsonlTraceSink(args.trace)
        experiment.with_sink(trace_sink)
        experiment.with_sink(StatsSink())

    result = experiment.run()
    if trace_sink is not None:
        trace_sink.close()   # the CLI opened the file, so the CLI closes it

    if args.json:
        print(result.to_json())
    else:
        print(render_experiment(result.to_dict()))
        if trace_sink is not None:
            print(f"\ntrace: {trace_sink.events_written} events -> {args.trace}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    result = (
        Experiment.from_scenario(args.scenario)
        .with_seed(args.seed)
        .campaign(args.workers)
        .with_workload(None)
        .run()
    )
    campaign = result.campaign
    if campaign is None:
        print(f"scenario {args.scenario!r} has no attack mix", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(campaign, indent=2, sort_keys=True))
        return 0
    rows = [
        [row["attack"], row["unprotected"], row["protected"], row["detected"],
         row["contained_at_if"], row["detection_cycle"]]
        for row in campaign["rows"]
    ]
    print(format_table(
        ["attack", "unprotected", "protected", "detected", "contained", "detection cycle"],
        rows,
        title=f"Attack campaign -- {args.scenario}",
    ))
    summary = campaign["summary"]
    print(f"\nattacks={summary['attacks']} prevented={summary['prevented']} "
          f"detected={summary['detected']} "
          f"workers={campaign['metrics'].get('n_workers', 1)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_campaign(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
