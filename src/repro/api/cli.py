"""``python -m repro`` / ``repro``: the experiment pipeline from a shell.

Subcommands:

* ``repro list [--json]`` — registered scenarios with their topology,
  placement/enforcement and description (the same metadata that generates
  ``docs/scenario-catalog.md``),
* ``repro run SCENARIO [--json] [--trace FILE] [--unprotected] [--reference]
  [--no-attacks] [--workers N] [--seed N]`` — one full experiment; human
  report by default, the schema-stable :class:`ExperimentResult` JSON with
  ``--json``, a JSONL instrumentation trace with ``--trace``,
* ``repro campaign SCENARIO [--json] [--workers N] [--seed N]`` — the
  scenario's attack campaign only (sharded), printed as a detection matrix,
* ``repro sweep run [--scenario PATTERN ...] [--placement P ...]
  [--seed N ...] [--store DIR] ...`` — a grid sweep into the persistent
  result store (cached points are skipped, interrupted sweeps resume),
* ``repro sweep gc --keep-latest N [--apply] [--store DIR]`` — drop stored
  results from old code fingerprints (dry run unless ``--apply``),
* ``repro paper [--fast] [--store DIR] [--out DIR]`` — regenerate every
  paper table/figure from the store (see ``docs/reproducing-the-paper.md``),
* ``repro verify [SCENARIO ...|--all] [--json] [--confirm] [--engine E]`` —
  static policy/fabric verification: address-map defects, unguarded paths,
  dead rules and bridge hazards, each with a concrete witness; ``--confirm``
  replays every witness as a probe attack under the simulator (exit 1 on
  any ERROR finding or failed confirmation),
* ``repro fuzz SCENARIO [--seed N] [--budget N] [--steps N] [--engine E]
  [--store DIR] [--replay FILE] [--json]`` — the seeded property-based
  bypass fuzzer: search for transaction sequences that silently reach
  protected state, minimize each find and replay it under both engines
  (exit 1 on any finding; ``--replay`` re-checks a committed corpus file),
* ``repro catalog [--write PATH] [--check]`` — render the scenario catalog
  markdown page from the registry,
* ``repro serve [--socket PATH] [--store DIR] [--workers N] [--http PORT]
  [--trace FILE]`` — the long-running experiment daemon: one shared result
  store, a warm worker pool, concurrent submissions deduped in flight
  (see ``docs/service.md``),
* ``repro submit [--scenario PATTERN ...] [--seed N ...] ... [--socket PATH]
  [--no-wait]`` — send a sweep grid to a running daemon (same axes as
  ``sweep run``); with the default ``--wait`` streams progress events and
  prints the final per-point statuses,
* ``repro status [--socket PATH] [--json]`` — jobs, in-flight points and
  store summary of a running daemon.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.api.events import JsonlTraceSink, StatsSink
from repro.api.experiment import Experiment
from repro.analysis.report import render_experiment
from repro.analysis.tables import format_table
from repro.scenarios import list_scenarios
from repro.scenarios.catalog import render_catalog, scenario_summaries, summary_line

__all__ = ["main", "build_parser", "DEFAULT_STORE_DIR"]


#: Default location of the persistent sweep result store.
DEFAULT_STORE_DIR = ".repro-store"

#: Default output directory of ``repro paper``.
DEFAULT_PAPER_OUT = "paper-artifacts"

#: Default location of the generated scenario catalog page.
DEFAULT_CATALOG_PATH = "docs/scenario-catalog.md"

#: Default unix socket of the ``repro serve`` daemon.
DEFAULT_SOCKET_PATH = ".repro-serve.sock"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed-firewall MPSoC reproduction: run experiments from the shell.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list registered scenarios")
    list_cmd.add_argument("--json", action="store_true", help="machine-readable output")

    run_cmd = sub.add_parser("run", help="run one scenario end to end")
    run_cmd.add_argument("scenario", help="registered scenario name")
    run_cmd.add_argument("--json", action="store_true", help="emit the ExperimentResult as JSON")
    run_cmd.add_argument("--trace", metavar="FILE", default=None,
                         help="write a JSONL instrumentation trace to FILE")
    run_cmd.add_argument("--unprotected", action="store_true",
                         help="drive the workload on the unprotected build")
    run_cmd.add_argument("--reference", action="store_true",
                         help="force the reference implementations (differential mode)")
    run_cmd.add_argument("--no-attacks", action="store_true",
                         help="skip the scenario's attack campaign")
    run_cmd.add_argument("--workers", type=int, default=1, metavar="N",
                         help="campaign worker processes (default: 1, serial)")
    run_cmd.add_argument("--seed", type=int, default=0, help="campaign base seed")
    run_cmd.add_argument("--engine", default=None,
                         choices=["object", "vector", "auto"],
                         help="workload execution engine (default: the scenario's "
                              "own; results are identical across engines)")

    campaign_cmd = sub.add_parser("campaign", help="run only the scenario's attack campaign")
    campaign_cmd.add_argument("scenario", help="registered scenario name")
    campaign_cmd.add_argument("--json", action="store_true", help="machine-readable output")
    campaign_cmd.add_argument("--workers", type=int, default=None, metavar="N",
                              help="worker processes (default: one per attack, capped)")
    campaign_cmd.add_argument("--seed", type=int, default=0, help="campaign base seed")
    campaign_cmd.add_argument("--engine", default=None,
                              choices=["object", "vector", "auto"],
                              help="workload execution engine threaded into the "
                                   "shipped scenario spec (results are identical)")

    sweep_cmd = sub.add_parser("sweep", help="grid sweeps with a persistent result store")
    sweep_sub = sweep_cmd.add_subparsers(dest="sweep_command", required=True)

    sweep_run = sweep_sub.add_parser("run", help="run a sweep grid (cached points are reused)")
    sweep_run.add_argument("--scenario", action="append", default=None, metavar="PATTERN",
                           help="scenario name or fnmatch pattern (repeatable; default: all)")
    sweep_run.add_argument("--placement", action="append", default=None, metavar="P",
                           choices=["default", "leaf", "bridge", "both"],
                           help="placement axis value (repeatable; 'default' keeps the "
                                "scenario's own placement)")
    sweep_run.add_argument("--seed", action="append", type=int, default=None, metavar="N",
                           help="campaign seed axis value (repeatable; default: 0)")
    sweep_run.add_argument("--campaign-workers", action="append", type=int, default=None,
                           metavar="N", help="campaign worker-count axis value (repeatable)")
    sweep_run.add_argument("--engine", action="append", default=None, metavar="E",
                           choices=["default", "object", "vector", "auto"],
                           help="engine axis value (repeatable; 'default' keeps the "
                                "scenario's own engine)")
    sweep_run.add_argument("--unprotected", action="store_true",
                           help="add the unprotected build to the protection axis")
    sweep_run.add_argument("--no-attacks", action="store_true",
                           help="add the attack-free mode to the attack axis")
    sweep_run.add_argument("--exclude", action="append", default=None, metavar="PATTERN",
                           help="exclude scenarios/point ids matching this pattern")
    sweep_run.add_argument("--sweep-workers", type=int, default=1, metavar="N",
                           help="processes sharding the sweep's points (default: 1)")
    sweep_run.add_argument("--store", default=DEFAULT_STORE_DIR, metavar="DIR",
                           help=f"result store directory (default: {DEFAULT_STORE_DIR})")
    sweep_run.add_argument("--json", action="store_true", help="machine-readable report")

    sweep_gc = sweep_sub.add_parser("gc", help="garbage-collect old code-fingerprint results")
    sweep_gc.add_argument("--keep-latest", type=int, required=True, metavar="N",
                          help="number of most recent code fingerprints to keep")
    sweep_gc.add_argument("--apply", action="store_true",
                          help="actually delete (default is a dry run)")
    sweep_gc.add_argument("--store", default=DEFAULT_STORE_DIR, metavar="DIR",
                          help=f"result store directory (default: {DEFAULT_STORE_DIR})")
    sweep_gc.add_argument("--json", action="store_true", help="machine-readable report")

    paper_cmd = sub.add_parser(
        "paper", help="regenerate every paper table/figure from the result store"
    )
    paper_cmd.add_argument("--fast", action="store_true",
                           help="three-scenario subset (the CI smoke bundle)")
    paper_cmd.add_argument("--store", default=DEFAULT_STORE_DIR, metavar="DIR",
                           help=f"result store directory (default: {DEFAULT_STORE_DIR})")
    paper_cmd.add_argument("--out", default=DEFAULT_PAPER_OUT, metavar="DIR",
                           help=f"artifact output directory (default: {DEFAULT_PAPER_OUT})")
    paper_cmd.add_argument("--sweep-workers", type=int, default=1, metavar="N",
                           help="processes sharding the sweep's points (default: 1)")
    paper_cmd.add_argument("--json", action="store_true", help="machine-readable report")

    serve_cmd = sub.add_parser(
        "serve", help="run the experiment daemon (shared store, warm worker pool)"
    )
    serve_cmd.add_argument("--socket", default=DEFAULT_SOCKET_PATH, metavar="PATH",
                           help=f"unix socket to listen on (default: {DEFAULT_SOCKET_PATH})")
    serve_cmd.add_argument("--store", default=DEFAULT_STORE_DIR, metavar="DIR",
                           help=f"shared result store directory (default: {DEFAULT_STORE_DIR})")
    serve_cmd.add_argument("--workers", type=int, default=2, metavar="N",
                           help="persistent worker pool size (default: 2)")
    serve_cmd.add_argument("--http", type=int, default=None, metavar="PORT",
                           help="also serve local HTTP on 127.0.0.1:PORT (0 picks a free port)")
    serve_cmd.add_argument("--trace", metavar="FILE", default=None,
                           help="append daemon events to a JSONL trace file")

    submit_cmd = sub.add_parser(
        "submit", help="submit a sweep grid to a running daemon"
    )
    submit_cmd.add_argument("--scenario", action="append", default=None, metavar="PATTERN",
                            help="scenario name or fnmatch pattern (repeatable; default: all)")
    submit_cmd.add_argument("--placement", action="append", default=None, metavar="P",
                            choices=["default", "leaf", "bridge", "both"],
                            help="placement axis value (repeatable)")
    submit_cmd.add_argument("--seed", action="append", type=int, default=None, metavar="N",
                            help="campaign seed axis value (repeatable; default: 0)")
    submit_cmd.add_argument("--campaign-workers", action="append", type=int, default=None,
                            metavar="N", help="campaign worker-count axis value (repeatable)")
    submit_cmd.add_argument("--engine", action="append", default=None, metavar="E",
                            choices=["default", "object", "vector", "auto"],
                            help="engine axis value (repeatable)")
    submit_cmd.add_argument("--unprotected", action="store_true",
                            help="add the unprotected build to the protection axis")
    submit_cmd.add_argument("--no-attacks", action="store_true",
                            help="add the attack-free mode to the attack axis")
    submit_cmd.add_argument("--exclude", action="append", default=None, metavar="PATTERN",
                            help="exclude scenarios/point ids matching this pattern")
    submit_cmd.add_argument("--fast", action="store_true",
                            help="shorthand for the one-point smoke grid "
                                 "(--scenario minimal_1x1)")
    submit_cmd.add_argument("--socket", default=DEFAULT_SOCKET_PATH, metavar="PATH",
                            help=f"daemon socket (default: {DEFAULT_SOCKET_PATH})")
    submit_cmd.add_argument("--no-wait", dest="wait", action="store_false",
                            help="return after the daemon accepts the job "
                                 "(default: stream progress until it finishes)")
    submit_cmd.add_argument("--json", action="store_true", help="machine-readable output")

    status_cmd = sub.add_parser("status", help="query a running daemon")
    status_cmd.add_argument("--socket", default=DEFAULT_SOCKET_PATH, metavar="PATH",
                            help=f"daemon socket (default: {DEFAULT_SOCKET_PATH})")
    status_cmd.add_argument("--json", action="store_true", help="machine-readable output")

    verify_cmd = sub.add_parser(
        "verify", help="statically verify scenario policy/fabric coverage"
    )
    verify_cmd.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                            help="registered scenario names (default: --all)")
    verify_cmd.add_argument("--all", action="store_true", dest="all_scenarios",
                            help="verify every registered scenario")
    verify_cmd.add_argument("--json", action="store_true", help="machine-readable output")
    verify_cmd.add_argument("--confirm", action="store_true",
                            help="replay every witness as a probe attack under "
                                 "the simulator (differential honesty check)")
    verify_cmd.add_argument("--engine", default=None,
                            choices=["object", "vector", "auto"],
                            help="engine for --confirm warm-up workloads")

    fuzz_cmd = sub.add_parser(
        "fuzz", help="seeded property-based search for silent firewall bypasses"
    )
    fuzz_cmd.add_argument("scenario",
                          help="registered scenario name (or 'planted_backdoor', "
                               "the built-in acceptance fixture)")
    fuzz_cmd.add_argument("--seed", type=int, default=0,
                          help="generator seed; the whole run is a pure function "
                               "of (scenario, seed, budget, steps)")
    fuzz_cmd.add_argument("--budget", type=int, default=200, metavar="N",
                          help="number of generated cases to try (default: 200)")
    fuzz_cmd.add_argument("--steps", type=int, default=12, metavar="N",
                          help="steps per generated case (default: 12)")
    fuzz_cmd.add_argument("--engine", action="append", default=None, metavar="E",
                          choices=["object", "vector"],
                          help="engine for finding replays (repeatable; "
                               "default: both object and vector)")
    fuzz_cmd.add_argument("--store", default=None, metavar="DIR",
                          help="persist minimized finds into this result store "
                               f"(e.g. {DEFAULT_STORE_DIR}; default: no store)")
    fuzz_cmd.add_argument("--replay", metavar="FILE", default=None,
                          help="skip the search; replay the corpus file's cases "
                               "under every engine and re-check each verdict")
    fuzz_cmd.add_argument("--json", action="store_true", help="machine-readable report")

    catalog_cmd = sub.add_parser(
        "catalog", help="render docs/scenario-catalog.md from the scenario registry"
    )
    catalog_cmd.add_argument("--write", metavar="PATH", default=None,
                             help=f"write the page to PATH (e.g. {DEFAULT_CATALOG_PATH})")
    catalog_cmd.add_argument("--check", metavar="PATH", nargs="?", default=False,
                             const=DEFAULT_CATALOG_PATH,
                             help="fail if the page at PATH is out of date "
                                  f"(default: {DEFAULT_CATALOG_PATH})")

    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    summaries = scenario_summaries()
    if args.json:
        print(json.dumps(summaries, indent=2))
        return 0
    for summary in summaries:
        print(summary_line(summary))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    experiment = (
        Experiment.from_scenario(args.scenario)
        .protected(not args.unprotected)
        .reference(args.reference)
        .with_seed(args.seed)
        .campaign(args.workers)
    )
    if args.engine:
        experiment.with_engine(args.engine)
    if args.no_attacks:
        experiment.no_attacks()
    trace_sink = None
    if args.trace:
        trace_sink = JsonlTraceSink(args.trace)
        experiment.with_sink(trace_sink)
        experiment.with_sink(StatsSink())

    result = experiment.run()
    if trace_sink is not None:
        trace_sink.close()   # the CLI opened the file, so the CLI closes it

    if args.json:
        print(result.to_json())
    else:
        print(render_experiment(result.to_dict()))
        if trace_sink is not None:
            print(f"\ntrace: {trace_sink.events_written} events -> {args.trace}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    experiment = (
        Experiment.from_scenario(args.scenario)
        .with_seed(args.seed)
        .campaign(args.workers)
        .with_workload(None)
    )
    if args.engine:
        experiment.with_engine(args.engine)
    result = experiment.run()
    campaign = result.campaign
    if campaign is None:
        print(f"scenario {args.scenario!r} has no attack mix", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(campaign, indent=2, sort_keys=True))
        return 0
    rows = [
        [row["attack"], row["unprotected"], row["protected"], row["detected"],
         row["contained_at_if"], row["detection_cycle"]]
        for row in campaign["rows"]
    ]
    print(format_table(
        ["attack", "unprotected", "protected", "detected", "contained", "detection cycle"],
        rows,
        title=f"Attack campaign -- {args.scenario}",
    ))
    summary = campaign["summary"]
    print(f"\nattacks={summary['attacks']} prevented={summary['prevented']} "
          f"detected={summary['detected']} "
          f"workers={campaign['metrics'].get('n_workers', 1)}")
    return 0


def _match_scenarios(patterns: Optional[List[str]]) -> tuple:
    """Expand ``--scenario`` patterns against the registry (order-preserving)."""
    import fnmatch

    if not patterns:
        return ()
    names = list_scenarios()
    selected: List[str] = []
    for pattern in patterns:
        matched = [name for name in names if fnmatch.fnmatch(name, pattern)]
        if not matched:
            raise SystemExit(f"repro sweep: no scenario matches {pattern!r}")
        for name in matched:
            if name not in selected:
                selected.append(name)
    return tuple(selected)


def _sweep_spec_from_args(args: argparse.Namespace):
    """Build the sweep grid shared by ``sweep run`` and ``submit``."""
    from repro.sweep import SweepSpec

    placements = tuple(
        None if p == "default" else p for p in (args.placement or ["default"])
    )
    engines = tuple(
        None if e == "default" else e for e in (args.engine or ["default"])
    )
    return SweepSpec(
        scenarios=_match_scenarios(args.scenario),
        placements=placements,
        seeds=tuple(args.seed or [0]),
        campaign_workers=tuple(args.campaign_workers or [1]),
        protected=(True, False) if args.unprotected else (True,),
        attack_modes=("scenario", "none") if args.no_attacks else ("scenario",),
        engines=engines,
        exclude=tuple(args.exclude or ()),
    )


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    from repro.sweep import ResultStore, SweepRunner

    spec = _sweep_spec_from_args(args)
    store = ResultStore(args.store)
    report = SweepRunner(spec, store, sweep_workers=args.sweep_workers).run()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"sweep {report.sweep_hash} over store {args.store} "
          f"(code fingerprint {report.fingerprint})")
    print(f"  computed : {len(report.computed)}")
    print(f"  cached   : {len(report.cached)}")
    print(f"  skipped  : {len(report.skipped)}")
    for item in report.skipped:
        print(f"    {item['point_id']}: {item['reason']}")
    print(f"  store    : {len(store)} results, digest {report.store_digest[:16]}")
    return 0


def _cmd_sweep_gc(args: argparse.Namespace) -> int:
    from repro.sweep import ResultStore

    # Refuse to "collect" a store that does not exist: opening would create
    # an empty one and report success against nothing (mistyped --store).
    if not (pathlib.Path(args.store) / ResultStore.RESULTS_NAME).exists():
        print(f"repro sweep gc: no result store at {args.store!r}", file=sys.stderr)
        return 1
    store = ResultStore(args.store)
    report = store.gc(keep_latest=args.keep_latest, apply=args.apply)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    mode = "applied" if report.applied else "dry run (pass --apply to delete)"
    print(f"sweep gc over {args.store}: keep latest {report.keep_latest} fingerprints -- {mode}")
    print(f"  kept fingerprints    : {', '.join(report.kept_fingerprints) or '(none)'}")
    print(f"  dropped fingerprints : {', '.join(report.dropped_fingerprints) or '(none)'}")
    print(f"  dropped results      : {len(report.dropped_points)}")
    for point in report.dropped_points:
        print(f"    {point}")
    return 0


def _cmd_paper(args: argparse.Namespace) -> int:
    from repro.sweep import regenerate_paper

    report = regenerate_paper(
        args.store, args.out, fast=args.fast, sweep_workers=args.sweep_workers
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    sweep = report.sweep
    print(f"paper artifacts -> {report.out_dir} "
          f"({'fast subset' if report.fast else 'full registry'})")
    print(f"  sweep    : {len(sweep.computed)} computed, {len(sweep.cached)} cached "
          f"(store digest {sweep.store_digest[:16]})")
    for name in sorted(report.artifacts):
        print(f"  artifact : {report.artifacts[name]}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service import ReproDaemon

    daemon = ReproDaemon(
        args.store,
        args.socket,
        http_port=args.http,
        workers=args.workers,
        trace_path=args.trace,
    )

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, daemon.request_shutdown)
        task = asyncio.ensure_future(daemon.run())
        # Give run() a beat to bind before announcing the endpoints.
        await asyncio.sleep(0)
        endpoints = f"socket {args.socket}"
        if daemon.http_port is not None:
            endpoints += f", http://127.0.0.1:{daemon.http_port}"
        print(f"repro serve: store {args.store}, {args.workers} workers, {endpoints}",
              flush=True)
        await task

    asyncio.run(_serve())
    print("repro serve: stopped")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError
    from repro.service.protocol import sweep_spec_to_dict

    if args.fast and not args.scenario:
        args.scenario = ["minimal_1x1"]
    spec = _sweep_spec_from_args(args)
    client = ServiceClient(args.socket)

    def _print_event(event):
        data = event.get("data", {})
        label = data.get("point_id", data.get("job_id", ""))
        extra = data.get("status") or data.get("error") or ""
        print(f"  {event['kind']:<14} {label}" + (f" ({extra})" if extra else ""),
              flush=True)

    try:
        outcome = client.submit(
            sweep=sweep_spec_to_dict(spec),
            wait=args.wait,
            on_event=None if (args.json or not args.wait) else _print_event,
        )
    except (ServiceError, OSError) as exc:
        print(f"repro submit: {exc} (is `repro serve` running on {args.socket}?)",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(outcome, indent=2, sort_keys=True))
        return 0 if (not args.wait or outcome["job"]["state"] == "done") else 1
    if not args.wait:
        accepted = outcome["accepted"]
        print(f"accepted {outcome['job_id']}: {accepted['missing']} to compute, "
              f"{accepted['cached']} cached, {accepted['skipped']} skipped")
        return 0
    job = outcome["job"]
    counts = job["counts"]
    print(f"{job['job_id']} {job['state']}: "
          f"computed={counts['computed']} coalesced={counts['coalesced']} "
          f"cached={counts['cached']} failed={counts['failed']}")
    print(f"store digest {job['store_digest'][:16]}")
    return 0 if job["state"] == "done" else 1


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    try:
        status = ServiceClient(args.socket).status()
    except (ServiceError, OSError) as exc:
        print(f"repro status: {exc} (is `repro serve` running on {args.socket}?)",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    store = status["store"]
    print(f"store: {store['entries']} results, digest {store['digest'][:16]}")
    print(f"in-flight points: {status['inflight']}")
    if not status["jobs"]:
        print("jobs: (none)")
    for job in status["jobs"]:
        counts = job["counts"]
        print(f"  {job['job_id']} {job['state']}: {job['total']} points "
              f"(computed={counts['computed']} coalesced={counts['coalesced']} "
              f"cached={counts['cached']} failed={counts['failed']})")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_verification
    from repro.staticcheck import confirm_report, verify_scenario

    names = list(args.scenarios)
    if args.all_scenarios or not names:
        names = list_scenarios()
    else:
        known = set(list_scenarios())
        for name in names:
            if name not in known:
                print(f"repro verify: no scenario named {name!r}", file=sys.stderr)
                return 1

    reports = [verify_scenario(name) for name in names]
    confirmations = {}
    if args.confirm:
        confirmations = {
            report.scenario: confirm_report(report, engine=args.engine)
            for report in reports
        }

    errors = sum(len(report.errors) for report in reports)
    failed_confirms = sum(
        1
        for results in confirmations.values()
        for result in results
        if not result.confirmed
    )
    payload = {
        "schema": 1,
        "errors": errors,
        "reports": [report.to_dict() for report in reports],
    }
    if args.confirm:
        payload["confirmations"] = {
            scenario: [result.to_dict() for result in results]
            for scenario, results in confirmations.items()
        }
        payload["failed_confirmations"] = failed_confirms
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_verification(payload))
    return 1 if (errors or failed_confirms) else 0


def _fuzz_spec(name: str):
    """Resolve a fuzz target: the registry, or the planted acceptance fixture."""
    from repro.fuzz import planted_backdoor_spec
    from repro.scenarios import get_scenario

    if name == "planted_backdoor":
        return planted_backdoor_spec()
    if name not in list_scenarios():
        raise SystemExit(f"repro fuzz: no scenario named {name!r}")
    return get_scenario(name)


def _cmd_fuzz_replay(args: argparse.Namespace) -> int:
    """Re-check a committed corpus file: every case must still reproduce its
    recorded violation identity, under identical engine behaviour."""
    from repro.fuzz import BypassOracle, FuzzCase, load_cases, replay_case
    from repro.scenarios.differential import diff_fingerprints

    engines = tuple(args.engine or ("object", "vector"))
    entries = load_cases(args.replay)
    results = []
    failures = 0
    for entry in entries:
        case = FuzzCase.from_dict(entry["case"])
        spec = _fuzz_spec(case.scenario)
        oracle = BypassOracle(spec)
        outcome = oracle.run(case)
        want = entry.get("violation", {})
        identity = (want.get("kind"), want.get("master"), want.get("target"), want.get("op"))
        reproduced = any(v.identity == identity for v in outcome.violations)
        replays = {engine: replay_case(spec, case, engine) for engine in engines}
        reference = replays[engines[0]]
        identical = all(
            not diff_fingerprints(reference["fingerprint"], replays[e]["fingerprint"])
            and reference["steps"] == replays[e]["steps"]
            for e in engines[1:]
        )
        ok = reproduced and identical
        failures += 0 if ok else 1
        results.append({
            "scenario": case.scenario,
            "digest": case.digest(),
            "steps": len(case),
            "reproduced": reproduced,
            "engines_identical": identical,
        })
    if args.json:
        print(json.dumps(
            {"schema": 1, "replayed": len(results), "failures": failures,
             "cases": results},
            indent=2, sort_keys=True,
        ))
        return 1 if failures else 0
    for row in results:
        verdict = "ok" if (row["reproduced"] and row["engines_identical"]) else "FAIL"
        print(f"  {row['scenario']}/{row['digest']} ({row['steps']} steps): {verdict}")
    print(f"replayed {len(results)} corpus case(s), {failures} failure(s)")
    return 1 if failures else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import Corpus, fuzz_scenario
    from repro.sweep import ResultStore

    if args.replay:
        return _cmd_fuzz_replay(args)

    spec = _fuzz_spec(args.scenario)
    corpus = Corpus(ResultStore(args.store)) if args.store else None
    report = fuzz_scenario(
        spec,
        seed=args.seed,
        budget=args.budget,
        n_steps=args.steps,
        engines=tuple(args.engine or ("object", "vector")),
        corpus=corpus,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0 if report.clean else 1
    print(f"fuzz {report.scenario}: seed={report.seed} budget={report.budget} "
          f"steps/case={report.n_steps}")
    print(f"  cases    : {report.cases_run} ({report.steps_run} steps, "
          f"{report.blocked_steps} blocked)")
    print(f"  coverage : {report.coverage_signatures} distinct protocol signatures")
    if report.clean:
        print("  verdict  : clean -- no silent reach of protected state")
        return 0
    for finding in report.findings:
        violation = finding["violation"]
        case = finding["case"]
        identical = finding["engines_identical"]
        print(f"  FINDING  : {violation['kind']} {violation['master']} -> "
              f"{violation['target']} ({violation['op']}) in "
              f"{len(case['steps'])} step(s), engines identical: {identical}")
        for index, step in enumerate(case["steps"]):
            print(f"      step {index}: {step['master']} {step['op']} "
                  f"0x{step['address']:08x}")
    if report.corpus_keys:
        print(f"  corpus   : {len(report.corpus_keys)} case(s) -> {args.store}")
    print(f"  verdict  : {len(report.findings)} silent bypass(es) found")
    return 1


def _cmd_catalog(args: argparse.Namespace) -> int:
    rendered = render_catalog()
    if args.check is not False:
        path = pathlib.Path(args.check)
        if not path.exists():
            print(f"repro catalog: {path} does not exist", file=sys.stderr)
            return 1
        if path.read_text(encoding="utf-8") != rendered:
            print(
                f"repro catalog: {path} is out of date; regenerate with "
                f"`python -m repro catalog --write {path}`",
                file=sys.stderr,
            )
            return 1
        print(f"{path} is up to date")
        return 0
    if args.write:
        path = pathlib.Path(args.write)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered, encoding="utf-8")
        print(f"wrote {path}")
        return 0
    print(rendered, end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "sweep":
        if args.sweep_command == "run":
            return _cmd_sweep_run(args)
        return _cmd_sweep_gc(args)
    if args.command == "paper":
        return _cmd_paper(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    return _cmd_catalog(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
