"""Unified experiment API: one façade from scenario to report.

* :mod:`repro.api.experiment` — the :class:`Experiment` façade composing
  scenario resolution → fabric build → security attach → workload/attack
  execution → campaign sharding → metrics into one pipeline, returning a
  uniform JSON-serializable :class:`ExperimentResult`,
* :mod:`repro.api.events` — the typed instrumentation event bus the
  substrate publishes on (transactions, grants, firewall decisions, alerts,
  reconfigurations, bridge containment) and the stock sinks (in-memory
  aggregator, JSONL trace writer, counting-only stats),
* :mod:`repro.api.cli` — the ``python -m repro`` / ``repro`` command line
  (``run``, ``list``, ``campaign``, ``sweep run``/``sweep gc``, ``paper``,
  ``catalog``).

API stability: ``Experiment`` / ``ExperimentResult`` and the event-bus
surface are **stable**; the CLI flag set is **provisional**;
``secure_platform``, direct ``ScenarioBuilder.build`` use and
``CampaignRunner.from_scenario`` are **deprecated** shims over this layer.
"""

from repro.api.events import (
    EVENT_KINDS,
    EventBus,
    EventSink,
    InMemorySink,
    InstrumentationEvent,
    JsonlTraceSink,
    StatsSink,
    attach_instrumentation,
)
from repro.api.experiment import (
    RESULT_SCHEMA_VERSION,
    Experiment,
    ExperimentResult,
    run_experiment,
)

__all__ = [
    "EVENT_KINDS",
    "EventBus",
    "EventSink",
    "InMemorySink",
    "InstrumentationEvent",
    "JsonlTraceSink",
    "StatsSink",
    "attach_instrumentation",
    "RESULT_SCHEMA_VERSION",
    "Experiment",
    "ExperimentResult",
    "run_experiment",
]
