"""Once-per-process warnings (deprecations and degraded-mode notices).

The unified experiment API (:mod:`repro.api`) supersedes several standalone
entry points (``secure_platform``, direct ``ScenarioBuilder.build`` use,
``CampaignRunner.from_scenario``).  Those remain fully functional as thin
shims over the new layer, but each announces itself exactly once per process
— loud enough to steer new code, quiet enough not to spam a campaign that
calls the shim thousands of times.

The same dedup machinery also serves runtime degradations that would
otherwise spam (``category=RuntimeWarning``): e.g. a sharded sweep invoked
inside a daemon worker process falling back to serial execution.

This module has no intra-package imports so every layer can use it without
creating cycles.
"""

from __future__ import annotations

import warnings
from typing import Set

__all__ = ["warn_once", "reset", "already_warned"]

_SEEN: Set[str] = set()


def warn_once(
    key: str,
    message: str,
    stacklevel: int = 3,
    category: type = DeprecationWarning,
) -> bool:
    """Emit a warning for ``key`` the first time it is seen.

    Returns True when the warning was actually emitted.  Deduplication is
    keyed on ``key`` (not on the caller's location, as the :mod:`warnings`
    registry would be), so a shim warns exactly once per process no matter
    how many distinct call sites hit it.
    """
    if key in _SEEN:
        return False
    _SEEN.add(key)
    warnings.warn(message, category, stacklevel=stacklevel)
    return True


def already_warned(key: str) -> bool:
    """Whether ``key``'s warning has fired in this process."""
    return key in _SEEN


def reset() -> None:
    """Forget every emitted warning (test isolation only)."""
    _SEEN.clear()
