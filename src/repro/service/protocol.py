"""Wire protocol of the ``repro serve`` daemon.

Everything on the wire is **newline-delimited JSON** — one object per line,
UTF-8, in both directions — over a unix domain socket (and mirrored over a
minimal local-HTTP shim, see :mod:`repro.service.daemon`).  A connection
carries exactly one request line; the daemon answers with one response line,
optionally followed by a stream of *event* lines (a watched submission, a
subscription).

Requests (``op`` selects the handler)::

    {"op": "ping"}
    {"op": "status"}                          # jobs + store summary
    {"op": "submit", "sweep": {...SweepSpec fields...}, "wait": true}
    {"op": "submit", "experiment": {"scenario": "minimal_1x1", ...}}
    {"op": "subscribe"}                       # stream every daemon event
    {"op": "shutdown"}

Responses carry ``"ok": true`` (plus op-specific payload) or ``"ok": false``
with an ``"error"`` string.  A watched submission then streams events and
terminates with one final ``{"ok": true, "done": true, "job": {...}}`` line.

Event lines reuse the :class:`~repro.api.events.JsonlTraceSink` wire schema
— ``{"kind": ..., "cycle": ..., "source": ..., "data": {...}}`` — with the
daemon's monotonically increasing event sequence number in the ``cycle``
slot and ``"repro-daemon"`` as the source, so the daemon's trace file and
its live subscription stream are the *same* format the instrumentation
layer already emits and every existing JSONL consumer can read.  Service
vocabulary (``SERVICE_EVENT_KINDS``):

==================  =======================================================
kind                emitted when
==================  =======================================================
``job.accepted``    a submission was parsed and classified against the store
``job.started``     its missing points were scheduled on the worker pool
``point.done``      one point finished computing (``status``:
                    ``computed`` — this job scheduled it — or
                    ``coalesced`` — another in-flight job computed it)
``point.cached``    a point was served from the store without touching the
                    pool
``point.failed``    a point's worker raised (``error`` carries the message)
``job.done``        every point of the job is accounted for
``job.failed``      at least one point failed
==================  =======================================================

An ``ExperimentSpec`` submission is the one-point special case of a sweep:
:func:`submission_to_sweep_spec` normalizes both shapes into a
:class:`~repro.sweep.spec.SweepSpec`, so a single experiment and a grid
flow through the same scheduling, dedup and caching machinery.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional, Tuple

from repro.sweep.spec import SweepSpec

__all__ = [
    "PROTOCOL_VERSION",
    "JOB_ACCEPTED",
    "JOB_STARTED",
    "JOB_DONE",
    "JOB_FAILED",
    "POINT_DONE",
    "POINT_CACHED",
    "POINT_FAILED",
    "SERVICE_EVENT_KINDS",
    "OPS",
    "ProtocolError",
    "encode_line",
    "decode_line",
    "make_event",
    "parse_request",
    "sweep_spec_to_dict",
    "sweep_spec_from_dict",
    "experiment_to_sweep_spec",
    "submission_to_sweep_spec",
]


#: Bumped on incompatible wire changes; ``ping`` reports it.
PROTOCOL_VERSION = 1

#: The daemon's event-line source field.
EVENT_SOURCE = "repro-daemon"

JOB_ACCEPTED = "job.accepted"
JOB_STARTED = "job.started"
JOB_DONE = "job.done"
JOB_FAILED = "job.failed"
POINT_DONE = "point.done"
POINT_CACHED = "point.cached"
POINT_FAILED = "point.failed"

#: Closed vocabulary of service event kinds (mirrors ``EVENT_KINDS`` for the
#: instrumentation bus; the two sets are disjoint by prefix).
SERVICE_EVENT_KINDS = frozenset(
    {
        JOB_ACCEPTED,
        JOB_STARTED,
        JOB_DONE,
        JOB_FAILED,
        POINT_DONE,
        POINT_CACHED,
        POINT_FAILED,
    }
)

#: Request operations the daemon understands.
OPS = ("ping", "status", "submit", "subscribe", "shutdown")


class ProtocolError(ValueError):
    """A malformed request/submission (reported to the client, not fatal)."""


def encode_line(payload: Dict[str, Any]) -> bytes:
    """One wire line: compact JSON + newline, UTF-8."""
    return (json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(raw: bytes) -> Dict[str, Any]:
    """Parse one wire line into a JSON object (``ProtocolError`` otherwise)."""
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"not a JSON line: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("expected a JSON object per line")
    return payload


def make_event(kind: str, seq: int, **data: Any) -> Dict[str, Any]:
    """One event line in the JsonlTraceSink wire schema."""
    if kind not in SERVICE_EVENT_KINDS:
        raise ValueError(f"unknown service event kind {kind!r}")
    return {"kind": kind, "cycle": seq, "source": EVENT_SOURCE, "data": data}


def parse_request(raw: bytes) -> Dict[str, Any]:
    """Decode and validate one request line."""
    request = decode_line(raw)
    op = request.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {', '.join(OPS)}")
    return request


# ---------------------------------------------------------------------------
# Spec (de)serialization
# ---------------------------------------------------------------------------


def _tupled(value: Any) -> Tuple[Any, ...]:
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


def sweep_spec_to_dict(spec: SweepSpec) -> Dict[str, Any]:
    """JSON-shaped form of a sweep spec (tuples become lists)."""
    return {
        field.name: list(getattr(spec, field.name))
        for field in dataclasses.fields(spec)
    }


def sweep_spec_from_dict(payload: Dict[str, Any]) -> SweepSpec:
    """Build a :class:`SweepSpec` from its JSON form.

    Unknown fields are rejected loudly — a typo'd axis name silently
    sweeping the default grid is exactly the bug a daemon must not hide.
    Axis values arrive as JSON lists (or bare scalars, promoted to
    one-element axes); :class:`SweepSpec` itself validates the contents.
    """
    known = {field.name for field in dataclasses.fields(SweepSpec)}
    unknown = set(payload) - known
    if unknown:
        raise ProtocolError(
            f"unknown sweep field(s) {sorted(unknown)}; expected a subset of "
            f"{sorted(known)}"
        )
    kwargs = {name: _tupled(value) for name, value in payload.items()}
    try:
        return SweepSpec(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid sweep spec: {exc}") from None


#: Fields accepted in an ``experiment`` submission and their defaults.
_EXPERIMENT_FIELDS = {
    "scenario": None,  # required
    "placement": None,
    "seed": 0,
    "campaign_workers": 1,
    "protected": True,
    "workload_ops": None,
    "attack_mode": "scenario",
    "engine": None,
}


def experiment_to_sweep_spec(payload: Dict[str, Any]) -> SweepSpec:
    """An experiment submission as the one-point sweep it is.

    ``{"scenario": "minimal_1x1", "seed": 3}`` selects one grid cell; every
    omitted field keeps the scenario's own default, exactly like the
    corresponding sweep axis entry.
    """
    unknown = set(payload) - set(_EXPERIMENT_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown experiment field(s) {sorted(unknown)}; expected a "
            f"subset of {sorted(_EXPERIMENT_FIELDS)}"
        )
    scenario = payload.get("scenario")
    if not isinstance(scenario, str) or not scenario:
        raise ProtocolError("experiment submission needs a 'scenario' name")
    merged = {**_EXPERIMENT_FIELDS, **payload}
    try:
        return SweepSpec(
            scenarios=(scenario,),
            placements=(merged["placement"],),
            seeds=(int(merged["seed"]),),
            campaign_workers=(int(merged["campaign_workers"]),),
            protected=(bool(merged["protected"]),),
            workload_ops=(
                None if merged["workload_ops"] is None else int(merged["workload_ops"]),
            ),
            attack_modes=(merged["attack_mode"],),
            engines=(merged["engine"],),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid experiment submission: {exc}") from None


def submission_to_sweep_spec(request: Dict[str, Any]) -> SweepSpec:
    """Normalize a submit request (sweep or experiment shape) to a spec."""
    sweep: Optional[Dict[str, Any]] = request.get("sweep")
    experiment: Optional[Dict[str, Any]] = request.get("experiment")
    if (sweep is None) == (experiment is None):
        raise ProtocolError(
            "a submit request carries exactly one of 'sweep' or 'experiment'"
        )
    if sweep is not None:
        if not isinstance(sweep, dict):
            raise ProtocolError("'sweep' must be an object of SweepSpec fields")
        return sweep_spec_from_dict(sweep)
    if not isinstance(experiment, dict):
        raise ProtocolError("'experiment' must be an object")
    return experiment_to_sweep_spec(experiment)
