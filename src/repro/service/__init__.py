"""Experiment service: the ``repro serve`` daemon and its client.

The service layer turns the sweep fabric into a long-running process:
:class:`ReproDaemon` fronts one shared
:class:`~repro.sweep.store.ResultStore` and a warm worker pool behind a
JSON-lines protocol (unix socket + optional local HTTP), deduplicating
concurrent submissions both against the store (``cached``) and against
work still in flight (``coalesced``).  :class:`ServiceClient` is the
synchronous stdlib-only counterpart the CLI and tests use.  See
:mod:`repro.service.protocol` for the wire format and ``docs/service.md``
for the full contract.
"""

from repro.service.client import ServiceClient, ServiceError, wait_for_socket
from repro.service.daemon import Job, ReproDaemon
from repro.service.protocol import PROTOCOL_VERSION, ProtocolError

__all__ = [
    "ReproDaemon",
    "Job",
    "ServiceClient",
    "ServiceError",
    "wait_for_socket",
    "PROTOCOL_VERSION",
    "ProtocolError",
]
