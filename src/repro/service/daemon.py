"""The ``repro serve`` daemon: a long-running experiment job server.

One :class:`ReproDaemon` owns

* a single shared :class:`~repro.sweep.store.ResultStore` — every
  submission is classified against it, so results computed for one client
  are served from cache to every later client,
* a warm :class:`~repro.attacks.runner.PersistentPool` of worker processes
  — submissions pay no pool startup, and points execute off the event loop,
* an **in-flight dedup map** ``key -> Future`` — two clients submitting the
  same *missing* point while it is still computing share one execution: the
  first job schedules it (``computed``), the second merely awaits the same
  future (``coalesced``).  Combined with the content-addressed store this
  gives the fabric its core invariant: *each point key is computed at most
  once per daemon lifetime, no matter how many clients ask for it.*

Submissions arrive as JSON over a unix domain socket (newline-delimited,
see :mod:`repro.service.protocol`) or over a minimal local-HTTP shim bound
to ``127.0.0.1``.  Progress streams to watching clients and ``subscribe``
connections as :class:`~repro.api.events.JsonlTraceSink`-schema event
lines; the same events append to the daemon's own trace file
(``JsonlTraceSink(..., append=True)``), so a restarted daemon keeps one
continuous, line-flushed trace.

Durability mirrors the sweep engine: every completed point is
:meth:`~repro.sweep.store.ResultStore.put` (one locked, flushed JSONL
append) the moment its worker returns, and the manifest is rewritten once
per job.  ``SIGKILL`` the daemon mid-sweep and the store keeps every
completed point; a restarted daemon serves those from cache and computes
only the remainder — the final store digest is identical to an
uninterrupted run, the property the service tests assert.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api.events import InstrumentationEvent, JsonlTraceSink
from repro.attacks.runner import PersistentPool
from repro.service import protocol
from repro.sweep.engine import SweepJob, SweepReport, SweepRunner, _execute_point
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.sweep.store import ResultStore, code_fingerprint, engine_fingerprint

__all__ = ["ReproDaemon", "Job"]


@dataclass
class Job:
    """One accepted submission and its progress."""

    job_id: str
    spec: SweepSpec
    report: SweepReport
    pending: List[SweepJob]
    state: str = "running"  # running | done | failed
    #: point_id -> computed | coalesced | cached | failed
    points: Dict[str, str] = field(default_factory=dict)
    failed_points: List[str] = field(default_factory=list)
    store_digest: str = ""
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def counts(self) -> Dict[str, int]:
        tally = {"computed": 0, "coalesced": 0, "cached": 0, "failed": 0}
        for status in self.points.values():
            tally[status] += 1
        return tally

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "state": self.state,
            "sweep_hash": self.report.sweep_hash,
            "points": dict(self.points),
            "counts": self.counts(),
            "skipped": list(self.report.skipped),
            "keys": dict(self.report.keys),
            "store_digest": self.store_digest,
        }

    def summary(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "state": self.state,
            "sweep_hash": self.report.sweep_hash,
            "counts": self.counts(),
            "total": len(self.points),
        }


class ReproDaemon:
    """The experiment service (see module docstring for the architecture).

    Parameters
    ----------
    store_dir:
        The shared result store directory (created on first write).
    socket_path:
        Unix domain socket to listen on; a stale socket file from a killed
        daemon is replaced.
    http_host / http_port:
        When ``http_port`` is not ``None``, also serve the protocol over
        local HTTP (``0`` picks a free port, readable from
        :attr:`http_port` after :meth:`run` starts).  The HTTP shim covers
        ``GET /ping``, ``GET /status`` and ``POST /submit`` — request/
        response only, no event streaming (use the socket to watch).
    workers:
        Size of the persistent worker pool.
    trace_path:
        Optional JSONL trace file; opened in append mode with per-line
        flushing so restarts extend one continuous trace.
    fingerprint / engine_fp:
        Key-fingerprint overrides, passed straight to
        :class:`~repro.sweep.engine.SweepRunner` (tests pin them; the
        defaults hash the installed package).
    """

    def __init__(
        self,
        store_dir: os.PathLike,
        socket_path: os.PathLike,
        *,
        http_host: str = "127.0.0.1",
        http_port: Optional[int] = None,
        workers: int = 2,
        trace_path: Optional[os.PathLike] = None,
        fingerprint: Optional[str] = None,
        engine_fp: Optional[str] = None,
    ) -> None:
        self.store = ResultStore(store_dir)
        self.socket_path = pathlib.Path(socket_path)
        self.http_host = http_host
        self.http_port = http_port
        self.workers = workers
        # Resolved once: classify() and put() must agree on the fingerprint.
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        self.engine_fp = engine_fp if engine_fp is not None else engine_fingerprint()
        self._trace = (
            JsonlTraceSink(str(trace_path), append=True) if trace_path else None
        )

        self.pool: Optional[PersistentPool] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._unix_server: Optional[asyncio.AbstractServer] = None
        self._http_server: Optional[asyncio.AbstractServer] = None

        self._seq = 0
        self._job_counter = 0
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, asyncio.Future] = {}
        self._watchers: Dict[str, List[asyncio.Queue]] = {}
        self._subscribers: List[asyncio.Queue] = []
        self._tasks: set = set()

    # -- lifecycle -----------------------------------------------------------------

    async def run(self) -> None:
        """Serve until :meth:`request_shutdown` (or a ``shutdown`` request)."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.pool = PersistentPool(self.workers)
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()  # stale socket from a killed daemon
        self._unix_server = await asyncio.start_unix_server(
            self._serve_unix, path=str(self.socket_path)
        )
        if self.http_port is not None:
            self._http_server = await asyncio.start_server(
                self._serve_http, host=self.http_host, port=self.http_port
            )
            self.http_port = self._http_server.sockets[0].getsockname()[1]
        try:
            await self._stop.wait()
        finally:
            await self._shutdown()

    def request_shutdown(self) -> None:
        """Ask the daemon to stop (signal handlers and the shutdown op)."""
        if self._stop is not None and not self._stop.is_set():
            self._stop.set()

    async def _shutdown(self) -> None:
        for server in (self._unix_server, self._http_server):
            if server is not None:
                server.close()
                with contextlib.suppress(Exception):
                    await server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        for queue in self._subscribers:
            queue.put_nowait(None)
        if self.pool is not None:
            # Idle pool: release the workers cleanly (close/join) —
            # ``terminate`` is reserved for abandoning in-flight points,
            # where racing the result-handler thread is unavoidable.
            if self._inflight:
                self.pool.terminate()
            else:
                self.pool.close()
            self.pool = None
        if self._trace is not None:
            self._trace.close()
        with contextlib.suppress(OSError):
            self.socket_path.unlink()

    # -- events --------------------------------------------------------------------

    def _emit(self, kind: str, job_id: str, **data: Any) -> Dict[str, Any]:
        """Publish one event: trace file, job watchers, global subscribers."""
        self._seq += 1
        data = {"job_id": job_id, **data}
        payload = protocol.make_event(kind, self._seq, **data)
        if self._trace is not None:
            self._trace.handle(
                InstrumentationEvent(
                    kind=kind, cycle=self._seq, source=protocol.EVENT_SOURCE, data=data
                )
            )
        for queue in self._watchers.get(job_id, []):
            queue.put_nowait(payload)
        for queue in self._subscribers:
            queue.put_nowait(payload)
        return payload

    # -- submission + scheduling ---------------------------------------------------

    def _accept(self, request: Dict[str, Any]) -> Job:
        """Parse a submit request and classify it against the shared store."""
        spec = protocol.submission_to_sweep_spec(request)
        self.store.reload()  # pick up points other processes stored
        runner = SweepRunner(
            spec, self.store,
            fingerprint=self.fingerprint, engine_fp=self.engine_fp,
        )
        report, pending = runner.classify()
        self._job_counter += 1
        job = Job(
            job_id=f"job-{self._job_counter:04d}",
            spec=spec, report=report, pending=pending,
        )
        self._jobs[job.job_id] = job
        return job

    def _start(self, job: Job) -> "asyncio.Task":
        task = self._loop.create_task(self._drive(job))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    def _schedule(self, point: SweepPoint, resolved, key: str) -> asyncio.Future:
        """Put one missing point on the pool; its future resolves on the loop."""
        loop = self._loop
        future: asyncio.Future = loop.create_future()
        # A job whose drive task is cancelled at shutdown may abandon the
        # future; retrieve the exception so the loop stays quiet.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._inflight[key] = future

        def on_result(result: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(self._point_finished, point, key, result, None)

        def on_error(error: BaseException) -> None:
            loop.call_soon_threadsafe(self._point_finished, point, key, None, error)

        self.pool.submit(
            _execute_point, (point, resolved),
            base_seed=point.seed,
            callback=on_result, error_callback=on_error,
        )
        return future

    def _point_finished(
        self,
        point: SweepPoint,
        key: str,
        result: Optional[Dict[str, Any]],
        error: Optional[BaseException],
    ) -> None:
        """Loop-side completion: store the result, resolve the shared future."""
        future = self._inflight.pop(key, None)
        if future is None or future.done():
            return
        if error is not None:
            future.set_exception(error)
            return
        self.store.put(key, point.point_id, point.scenario, self.fingerprint, result)
        future.set_result(result)

    async def _drive(self, job: Job) -> None:
        """Run one accepted job to completion, emitting progress events."""
        report = job.report
        try:
            self._emit(
                protocol.JOB_ACCEPTED, job.job_id,
                sweep_hash=report.sweep_hash,
                cached=len(report.cached), missing=len(job.pending),
                skipped=len(report.skipped),
            )
            for point_id in report.cached:
                job.points[point_id] = "cached"
                self._emit(
                    protocol.POINT_CACHED, job.job_id,
                    point_id=point_id, key=report.keys[point_id],
                )

            waits: List[Tuple[SweepPoint, str, asyncio.Future, str]] = []
            for point, resolved, key in job.pending:
                if self.store.has(key):
                    # Raced: an earlier job finished this key after classify.
                    job.points[point.point_id] = "cached"
                    report.cached.append(point.point_id)
                    self._emit(
                        protocol.POINT_CACHED, job.job_id,
                        point_id=point.point_id, key=key,
                    )
                    continue
                future = self._inflight.get(key)
                if future is not None:
                    waits.append((point, key, future, "coalesced"))
                else:
                    waits.append((point, key, self._schedule(point, resolved, key),
                                  "computed"))
            scheduled = sum(1 for w in waits if w[3] == "computed")
            if waits:
                self._emit(
                    protocol.JOB_STARTED, job.job_id,
                    scheduled=scheduled, coalesced=len(waits) - scheduled,
                )

            for point, key, future, status in waits:
                try:
                    await asyncio.shield(future)
                except asyncio.CancelledError:
                    raise
                except BaseException as exc:
                    job.points[point.point_id] = "failed"
                    job.failed_points.append(point.point_id)
                    self._emit(
                        protocol.POINT_FAILED, job.job_id,
                        point_id=point.point_id, key=key, error=str(exc),
                    )
                    continue
                job.points[point.point_id] = status
                if status == "computed":
                    report.computed.append(point.point_id)
                self._emit(
                    protocol.POINT_DONE, job.job_id,
                    point_id=point.point_id, key=key, status=status,
                )

            self.store.flush_manifest()
            job.store_digest = report.store_digest = self.store.digest()
            if job.failed_points:
                job.state = "failed"
                self._emit(
                    protocol.JOB_FAILED, job.job_id,
                    failed=list(job.failed_points), counts=job.counts(),
                    store_digest=job.store_digest,
                )
            else:
                job.state = "done"
                self._emit(
                    protocol.JOB_DONE, job.job_id,
                    counts=job.counts(), store_digest=job.store_digest,
                )
        finally:
            job.done.set()
            for queue in self._watchers.pop(job.job_id, []):
                queue.put_nowait(None)  # end-of-stream sentinel

    # -- unix socket protocol --------------------------------------------------------

    async def _serve_unix(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            raw = await reader.readline()
            if not raw:
                return
            try:
                request = protocol.parse_request(raw)
            except protocol.ProtocolError as exc:
                await self._reply(writer, {"ok": False, "error": str(exc)})
                return
            await self._dispatch(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _reply(self, writer: asyncio.StreamWriter,
                     payload: Dict[str, Any]) -> None:
        writer.write(protocol.encode_line(payload))
        await writer.drain()

    async def _dispatch(self, request: Dict[str, Any],
                        writer: asyncio.StreamWriter) -> None:
        op = request["op"]
        if op == "ping":
            await self._reply(writer, {"ok": True, "op": "ping", **self._ping()})
        elif op == "status":
            await self._reply(writer, {"ok": True, "op": "status", **self._status()})
        elif op == "shutdown":
            await self._reply(writer, {"ok": True, "op": "shutdown"})
            self.request_shutdown()
        elif op == "subscribe":
            queue: asyncio.Queue = asyncio.Queue()
            self._subscribers.append(queue)
            try:
                await self._reply(writer, {"ok": True, "op": "subscribe"})
                while (event := await queue.get()) is not None:
                    await self._reply(writer, event)
            finally:
                with contextlib.suppress(ValueError):
                    self._subscribers.remove(queue)
        elif op == "submit":
            await self._handle_submit(request, writer)

    async def _handle_submit(self, request: Dict[str, Any],
                             writer: asyncio.StreamWriter) -> None:
        try:
            job = self._accept(request)
        except protocol.ProtocolError as exc:
            await self._reply(writer, {"ok": False, "error": str(exc)})
            return
        wait = bool(request.get("wait", True))
        queue: Optional[asyncio.Queue] = None
        if wait:
            # Register before the drive task starts so no event is missed.
            queue = asyncio.Queue()
            self._watchers.setdefault(job.job_id, []).append(queue)
        self._start(job)
        await self._reply(writer, {
            "ok": True, "op": "submit", "job_id": job.job_id,
            "accepted": {
                "sweep_hash": job.report.sweep_hash,
                "cached": len(job.report.cached),
                "missing": len(job.pending),
                "skipped": len(job.report.skipped),
            },
        })
        if queue is not None:
            while (event := await queue.get()) is not None:
                await self._reply(writer, event)
            await self._reply(writer, {"ok": True, "done": True,
                                       "job": job.to_dict()})

    def _ping(self) -> Dict[str, Any]:
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
            "workers": self.workers,
            "store": str(self.store.root),
        }

    def _status(self) -> Dict[str, Any]:
        return {
            "jobs": [job.summary() for job in self._jobs.values()],
            "inflight": len(self._inflight),
            "store": {"entries": len(self.store), "digest": self.store.digest()},
        }

    # -- local HTTP shim -------------------------------------------------------------

    async def _serve_http(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._http_exchange(reader)
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            writer.write(
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n".encode("ascii") + body
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _http_exchange(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            return "400 Bad Request", {"ok": False, "error": "malformed request line"}
        method, path, _ = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length:
            body = await reader.readexactly(length)

        if method == "GET" and path == "/ping":
            return "200 OK", {"ok": True, **self._ping()}
        if method == "GET" and path == "/status":
            return "200 OK", {"ok": True, **self._status()}
        if method == "POST" and path == "/submit":
            try:
                request = protocol.decode_line(body)
                request["op"] = "submit"
                job = self._accept(request)
            except protocol.ProtocolError as exc:
                return "400 Bad Request", {"ok": False, "error": str(exc)}
            self._start(job)
            if bool(request.get("wait", True)):
                await job.done.wait()
                return "200 OK", {"ok": True, "job": job.to_dict()}
            return "202 Accepted", {"ok": True, "job_id": job.job_id}
        return "404 Not Found", {"ok": False, "error": f"no route {method} {path}"}
