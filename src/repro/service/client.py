"""Synchronous client for the ``repro serve`` daemon.

:class:`ServiceClient` speaks the newline-delimited JSON protocol of
:mod:`repro.service.protocol` over the daemon's unix domain socket.  It is
deliberately synchronous and stdlib-only: the CLI, tests and ad-hoc scripts
call it without touching asyncio.  One request per connection — exactly the
shape the daemon serves — so a client instance is cheap and carries no open
socket between calls.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Any, Callable, Dict, List, Optional

from repro.service import protocol

__all__ = ["ServiceClient", "ServiceError", "wait_for_socket"]


class ServiceError(RuntimeError):
    """The daemon refused a request (its ``error`` string is the message)."""


class ServiceClient:
    """Talk to a running daemon at ``socket_path``.

    ``timeout`` bounds each blocking socket operation — one read of one
    line, not a whole submission: a watched sweep may stream for longer
    than the timeout as long as events keep arriving.
    """

    def __init__(self, socket_path: os.PathLike, *, timeout: float = 120.0) -> None:
        self.socket_path = os.fspath(socket_path)
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.socket_path)
        return sock

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request, one response line (``ServiceError`` on refusal)."""
        with self._connect() as sock:
            sock.sendall(protocol.encode_line(payload))
            with sock.makefile("rb") as stream:
                return self._response(stream.readline())

    @staticmethod
    def _response(raw: bytes) -> Dict[str, Any]:
        if not raw:
            raise ServiceError("daemon closed the connection without replying")
        reply = protocol.decode_line(raw)
        if not reply.get("ok", False):
            raise ServiceError(reply.get("error", "daemon refused the request"))
        return reply

    # -- operations ----------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def status(self) -> Dict[str, Any]:
        return self.request({"op": "status"})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})

    def submit(
        self,
        *,
        sweep: Optional[Dict[str, Any]] = None,
        experiment: Optional[Dict[str, Any]] = None,
        wait: bool = True,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Submit a sweep or experiment (exactly one of the two).

        With ``wait`` (the default) the call blocks until the job finishes
        and returns ``{"job_id", "accepted", "events", "job"}`` — ``job``
        is the daemon's final record (state, per-point statuses, counts,
        store digest) and ``events`` every streamed progress line, each of
        which was also passed to ``on_event`` as it arrived.  With
        ``wait=False`` it returns as soon as the daemon accepted the job.
        """
        request: Dict[str, Any] = {"op": "submit", "wait": wait}
        if sweep is not None:
            request["sweep"] = sweep
        if experiment is not None:
            request["experiment"] = experiment
        with self._connect() as sock:
            sock.sendall(protocol.encode_line(request))
            with sock.makefile("rb") as stream:
                accepted = self._response(stream.readline())
                if not wait:
                    return accepted
                events: List[Dict[str, Any]] = []
                while True:
                    raw = stream.readline()
                    if not raw:
                        raise ServiceError(
                            "daemon connection dropped before the job finished"
                        )
                    payload = protocol.decode_line(raw)
                    if payload.get("done"):
                        return {
                            "job_id": accepted["job_id"],
                            "accepted": accepted["accepted"],
                            "events": events,
                            "job": payload["job"],
                        }
                    events.append(payload)
                    if on_event is not None:
                        on_event(payload)


def wait_for_socket(socket_path: os.PathLike, *, timeout: float = 15.0) -> None:
    """Block until a daemon answers ``ping`` at ``socket_path``.

    Polls (the daemon creates its socket asynchronously at startup) and
    raises ``TimeoutError`` when the deadline passes — the error any test
    or script wants instead of a raw ``ConnectionRefusedError`` race.
    """
    client = ServiceClient(socket_path, timeout=min(timeout, 5.0))
    deadline = time.monotonic() + timeout
    while True:
        if os.path.exists(client.socket_path):
            try:
                client.ping()
                return
            except (OSError, ServiceError):
                pass
        if time.monotonic() > deadline:
            raise TimeoutError(f"no daemon answering at {client.socket_path}")
        time.sleep(0.05)
