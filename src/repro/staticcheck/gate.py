"""Optional fail-fast gate on ERROR-severity static findings.

Spec/plan construction sites (the scenario builder, the registry
decorator, sweep classification) call :func:`enforce` at the moment a spec
becomes a build.  The gate is **off by default** — enabling it makes every
construction site raise :class:`StaticCheckError` the instant a spec with
an unenforceable protection is about to be built, instead of letting the
defect surface (or worse, not surface) cycles later in a simulation.

The analyzer itself constructs builders while verifying, so everything it
touches passes ``verify=False`` explicitly; the gate additionally holds a
re-entrancy latch so a verification pass can never recurse into itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.scenarios.spec import ScenarioSpec
    from repro.staticcheck.findings import VerificationReport

__all__ = ["StaticCheckError", "set_fail_fast", "fail_fast_enabled", "enforce"]


_FAIL_FAST = False
_IN_PROGRESS = False


class StaticCheckError(ValueError):
    """A spec failed static verification at a fail-fast construction site."""

    def __init__(self, report: "VerificationReport", where: str) -> None:
        self.report = report
        self.where = where
        errors = report.errors
        lines = [
            f"static verification of {report.scenario!r} failed at {where}: "
            f"{len(errors)} error finding(s)"
        ]
        for finding in errors:
            lines.append(f"  [{finding.code}] {finding.subject}: {finding.message}")
        super().__init__("\n".join(lines))


def set_fail_fast(enabled: bool) -> bool:
    """Turn the gate on/off globally; returns the previous setting."""
    global _FAIL_FAST
    previous = _FAIL_FAST
    _FAIL_FAST = enabled
    return previous


def fail_fast_enabled() -> bool:
    return _FAIL_FAST


def enforce(spec: "ScenarioSpec", *, where: str = "build") -> Optional["VerificationReport"]:
    """Verify ``spec`` and raise on ERROR findings when the gate is on.

    Returns the report (None when the gate is off or re-entered) so callers
    can attach it to their own diagnostics.
    """
    global _IN_PROGRESS
    if not _FAIL_FAST or _IN_PROGRESS:
        return None
    from repro.staticcheck.analyzer import verify_spec

    _IN_PROGRESS = True
    try:
        report = verify_spec(spec)
    finally:
        _IN_PROGRESS = False
    if report.has_errors:
        raise StaticCheckError(report, where)
    return report
